// dpclustx_convert — offline CSV ↔ DPXCOL conversion and verification.
//
// The service's csv ingest path is gated (--max-csv-bytes) because parsing
// a full-scale file inside a serving process is the wrong place for that
// work. This tool is the right place: convert the CSV to a DPXCOL file once,
// then serve it with {"op":"load_dataset","source":"dpxcol"} — the server
// mmaps it in milliseconds instead of re-parsing gigabytes of text.
//
//   dpclustx_convert to-dpxcol IN.csv OUT.dpxcol [--capacity-rows N]
//                    [--max-csv-bytes N] [--verify]
//   dpclustx_convert to-csv IN.dpxcol OUT.csv
//   dpclustx_convert verify FILE.dpxcol
//
//   to-dpxcol   Parses the CSV (schema inferred: each column's domain is its
//               distinct values in order of first appearance) and writes a
//               DPXCOL file atomically. --capacity-rows reserves append
//               space so later append_rows commits in place; --verify
//               reopens the written file with a full data-CRC pass.
//   to-csv      Maps the DPXCOL file and writes its rows back out as labels.
//               to-dpxcol → to-csv round-trips a well-formed CSV byte for
//               byte (scripts/check.sh relies on this).
//   verify      Full O(data) integrity pass on an existing file: header
//               structure, per-column CRCs, max-code rescan. Run this on
//               any file of doubtful provenance before serving it
//               (DESIGN.md §13 trust model).
//
// Exit status: 0 on success, 1 on any conversion/verification error, 2 on
// usage errors.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/columnar_format.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "obs/build_info.h"

namespace {

using dpclustx::ColumnarOpenOptions;
using dpclustx::ColumnarWriteOptions;
using dpclustx::CsvReadOptions;
using dpclustx::Dataset;
using dpclustx::MappedColumnar;
using dpclustx::Status;
using dpclustx::StatusCodeName;
using dpclustx::StatusOr;

constexpr const char kUsage[] =
    "usage: dpclustx_convert <mode> [flags]\n"
    "\n"
    "  to-dpxcol IN.csv OUT.dpxcol   CSV -> DPXCOL (schema inferred)\n"
    "      --capacity-rows N         reserve space for appends (default:\n"
    "                                exactly the CSV's row count)\n"
    "      --max-csv-bytes N         refuse CSVs larger than N bytes\n"
    "                                (default 0 = no limit)\n"
    "      --verify                  reopen the written file with a full\n"
    "                                data-CRC verification pass\n"
    "  to-csv IN.dpxcol OUT.csv      DPXCOL -> CSV (cells as labels)\n"
    "  verify FILE.dpxcol            full integrity pass on an existing file\n"
    "  --version                     print build provenance and exit\n"
    "  --help                        print this table and exit\n";

int Fail(const Status& status, const std::string& context) {
  std::cerr << context << ": " << StatusCodeName(status.code()) << ": "
            << status.message() << "\n";
  return 1;
}

int ToDpxcol(const std::string& in, const std::string& out,
             size_t capacity_rows, size_t max_csv_bytes, bool verify) {
  CsvReadOptions read_options;
  read_options.max_bytes = max_csv_bytes;
  StatusOr<Dataset> dataset = dpclustx::ReadCsv(in, read_options);
  if (!dataset.ok()) return Fail(dataset.status(), "reading '" + in + "'");

  ColumnarWriteOptions write_options;
  write_options.capacity_rows = capacity_rows;
  const Status written =
      dpclustx::WriteColumnarFile(*dataset, out, write_options);
  if (!written.ok()) return Fail(written, "writing '" + out + "'");

  ColumnarOpenOptions open_options;
  open_options.verify_data = verify;
  StatusOr<std::shared_ptr<const MappedColumnar>> mapped =
      MappedColumnar::Open(out, open_options);
  if (!mapped.ok()) return Fail(mapped.status(), "reopening '" + out + "'");

  std::cerr << "wrote '" << out << "': " << (*mapped)->num_rows() << " rows x "
            << (*mapped)->schema().num_attributes() << " attributes, capacity "
            << (*mapped)->capacity_rows() << " rows, file uid "
            << (*mapped)->file_uid() << (verify ? ", data verified" : "")
            << "\n";
  return 0;
}

int ToCsv(const std::string& in, const std::string& out) {
  StatusOr<std::shared_ptr<const MappedColumnar>> mapped =
      MappedColumnar::Open(in);
  if (!mapped.ok()) return Fail(mapped.status(), "opening '" + in + "'");
  StatusOr<Dataset> dataset = Dataset::FromMapped(std::move(*mapped));
  if (!dataset.ok()) return Fail(dataset.status(), "mapping '" + in + "'");
  const Status written = dpclustx::WriteCsv(*dataset, out);
  if (!written.ok()) return Fail(written, "writing '" + out + "'");
  std::cerr << "wrote '" << out << "': " << dataset->num_rows() << " rows x "
            << dataset->num_attributes() << " attributes\n";
  return 0;
}

int Verify(const std::string& path) {
  // Open without verify_data first so a structural error is reported as
  // such, then run the full pass explicitly.
  StatusOr<std::shared_ptr<const MappedColumnar>> mapped =
      MappedColumnar::Open(path);
  if (!mapped.ok()) return Fail(mapped.status(), "opening '" + path + "'");
  const Status verified = (*mapped)->VerifyData();
  if (!verified.ok()) return Fail(verified, "verifying '" + path + "'");
  std::cerr << "'" << path << "' verified: " << (*mapped)->num_rows()
            << " rows x " << (*mapped)->schema().num_attributes()
            << " attributes, file uid " << (*mapped)->file_uid() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::vector<std::string> positional;
  size_t capacity_rows = 0;
  size_t max_csv_bytes = 0;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::cout << dpclustx::obs::BuildInfoVersionLine()
                << ", dpxcol-format v" << dpclustx::kColumnarFormatVersion
                << "\n";
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << kUsage;
      return 0;
    }
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
      continue;
    }
    if (std::strcmp(argv[i], "--capacity-rows") == 0 ||
        std::strcmp(argv[i], "--max-csv-bytes") == 0) {
      if (i + 1 >= argc) {
        std::cerr << argv[i] << " needs a value\n";
        return 2;
      }
      size_t* out = std::strcmp(argv[i], "--capacity-rows") == 0
                        ? &capacity_rows
                        : &max_csv_bytes;
      *out = static_cast<size_t>(std::stoull(argv[++i]));
      continue;
    }
    if (argv[i][0] == '-') {
      std::cerr << "unknown flag '" << argv[i] << "'\n" << kUsage;
      return 2;
    }
    if (mode.empty()) {
      mode = argv[i];
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (mode == "to-dpxcol" && positional.size() == 2) {
    return ToDpxcol(positional[0], positional[1], capacity_rows,
                    max_csv_bytes, verify);
  }
  if (mode == "to-csv" && positional.size() == 2) {
    return ToCsv(positional[0], positional[1]);
  }
  if (mode == "verify" && positional.size() == 1) {
    return Verify(positional[0]);
  }
  std::cerr << kUsage;
  return 2;
}
