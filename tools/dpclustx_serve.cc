// dpclustx_serve — JSON line-protocol explanation server on stdin/stdout.
//
// Reads one JSON request per line, dispatches it to the service engine's
// worker pool, and writes one JSON response per line. Responses can arrive
// out of order relative to requests; clients that care pass an "id" field,
// which is echoed back verbatim. When the request queue is full the request
// is answered immediately with a ResourceExhausted error instead of
// blocking the reader (backpressure is explicit, never silent).
//
// Usage:
//   dpclustx_serve [--threads N] [--queue N] [--cache N] [--deadline-ms N]
//                  [--sync] [--trace-all] [--metrics-dump FILE]
//                  [--metrics-interval-ms N] [--version]
//
//   --threads N      worker threads (default 4)
//   --queue N        pending-request bound (default 256)
//   --cache N        explanation-cache entries (default 1024)
//   --deadline-ms N  default per-request deadline in milliseconds, counted
//                    from enqueue; requests may override with their own
//                    "deadline_ms" field (default 0 = none)
//   --sync           serve each request on the reader thread, in order
//                    (for deterministic scripted sessions)
//   --trace-all      trace every request into the engine's trace ring
//                    (retrieve with the "trace" op)
//   --metrics-dump FILE
//                    periodically write the Prometheus text exposition to
//                    FILE (atomic tmp+rename, so a scraper never sees a
//                    partial file); also written once at shutdown
//   --metrics-interval-ms N
//                    dump period in milliseconds (default 5000)
//   --version        print build provenance and exit
//
// On EOF the server drains queued requests, writes a final metrics dump,
// flushes, and exits 0. See README.md for a quickstart transcript.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/build_info.h"
#include "service/service_engine.h"

namespace {

using dpclustx::Status;
using dpclustx::service::ServiceEngine;
using dpclustx::service::ServiceEngineOptions;

std::mutex stdout_mutex;

void WriteLine(const std::string& response) {
  std::lock_guard<std::mutex> lock(stdout_mutex);
  std::cout << response << "\n";
  std::cout.flush();
}

bool ParseSizeFlag(int argc, char** argv, int* i, const char* name,
                   size_t* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = static_cast<size_t>(std::stoull(argv[++*i]));
  return true;
}

bool ParseStringFlag(int argc, char** argv, int* i, const char* name,
                     std::string* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

// Writes the Prometheus exposition atomically: scrapers that read `path`
// see either the previous complete dump or the new one, never a torn file.
void DumpMetrics(dpclustx::service::ServiceEngine& engine,
                 const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write metrics dump '" << tmp << "'\n";
      return;
    }
    out << engine.metrics().PrometheusText();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "cannot rename metrics dump to '" << path << "'\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServiceEngineOptions options;
  bool sync = false;
  size_t deadline_ms = 0;
  std::string metrics_dump;
  size_t metrics_interval_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    if (ParseSizeFlag(argc, argv, &i, "--threads", &options.num_threads) ||
        ParseSizeFlag(argc, argv, &i, "--queue", &options.queue_capacity) ||
        ParseSizeFlag(argc, argv, &i, "--cache", &options.cache_capacity) ||
        ParseSizeFlag(argc, argv, &i, "--deadline-ms", &deadline_ms) ||
        ParseSizeFlag(argc, argv, &i, "--metrics-interval-ms",
                      &metrics_interval_ms) ||
        ParseStringFlag(argc, argv, &i, "--metrics-dump", &metrics_dump)) {
      continue;
    }
    if (std::strcmp(argv[i], "--sync") == 0) {
      sync = true;
      continue;
    }
    if (std::strcmp(argv[i], "--trace-all") == 0) {
      options.trace_all = true;
      continue;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::cout << dpclustx::obs::BuildInfoVersionLine() << "\n";
      return 0;
    }
    std::cerr << "unknown flag '" << argv[i]
              << "' (usage: dpclustx_serve [--threads N] [--queue N] "
                 "[--cache N] [--deadline-ms N] [--sync] [--trace-all] "
                 "[--metrics-dump FILE] [--metrics-interval-ms N] "
                 "[--version])\n";
    return 2;
  }
  options.default_deadline_ms = static_cast<int64_t>(deadline_ms);
  if (metrics_interval_ms == 0) metrics_interval_ms = 5000;

  ServiceEngine engine(options);

  // Periodic metrics writer: a plain thread parked on a condition variable
  // so shutdown is immediate instead of waiting out the interval.
  std::thread metrics_writer;
  std::mutex writer_mutex;
  std::condition_variable writer_cv;
  bool writer_stop = false;
  if (!metrics_dump.empty()) {
    metrics_writer = std::thread([&] {
      std::unique_lock<std::mutex> lock(writer_mutex);
      while (!writer_stop) {
        lock.unlock();
        DumpMetrics(engine, metrics_dump);
        lock.lock();
        writer_cv.wait_for(lock,
                           std::chrono::milliseconds(metrics_interval_ms),
                           [&] { return writer_stop; });
      }
    });
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (sync) {
      WriteLine(engine.Handle(line));
      continue;
    }
    const Status submitted =
        engine.HandleAsync(line, [](std::string response) {
          WriteLine(response);
        });
    if (!submitted.ok()) {
      WriteLine(ServiceEngine::RejectionResponse(line, submitted,
                                                 options.retry_after_ms));
    }
  }
  engine.Shutdown();  // drain queued requests before exiting
  if (!metrics_dump.empty()) {
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      writer_stop = true;
    }
    writer_cv.notify_all();
    metrics_writer.join();
    DumpMetrics(engine, metrics_dump);  // final post-drain snapshot
  }
  return 0;
}
