// dpclustx_serve — JSON line-protocol explanation server on stdin/stdout.
//
// Reads one JSON request per line, dispatches it to the service engine's
// worker pool, and writes one JSON response per line. Responses can arrive
// out of order relative to requests; clients that care pass an "id" field,
// which is echoed back verbatim. When the request queue is full the request
// is answered immediately with a ResourceExhausted error instead of
// blocking the reader (backpressure is explicit, never silent).
//
// Usage:
//   dpclustx_serve [--threads N] [--queue N] [--cache N] [--deadline-ms N]
//                  [--sync]
//
//   --threads N      worker threads (default 4)
//   --queue N        pending-request bound (default 256)
//   --cache N        explanation-cache entries (default 1024)
//   --deadline-ms N  default per-request deadline in milliseconds, counted
//                    from enqueue; requests may override with their own
//                    "deadline_ms" field (default 0 = none)
//   --sync           serve each request on the reader thread, in order
//                    (for deterministic scripted sessions)
//
// On EOF the server drains queued requests, flushes, and exits 0. See
// README.md for a quickstart transcript.

#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "service/service_engine.h"

namespace {

using dpclustx::Status;
using dpclustx::service::ServiceEngine;
using dpclustx::service::ServiceEngineOptions;

std::mutex stdout_mutex;

void WriteLine(const std::string& response) {
  std::lock_guard<std::mutex> lock(stdout_mutex);
  std::cout << response << "\n";
  std::cout.flush();
}

bool ParseSizeFlag(int argc, char** argv, int* i, const char* name,
                   size_t* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = static_cast<size_t>(std::stoull(argv[++*i]));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceEngineOptions options;
  bool sync = false;
  size_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (ParseSizeFlag(argc, argv, &i, "--threads", &options.num_threads) ||
        ParseSizeFlag(argc, argv, &i, "--queue", &options.queue_capacity) ||
        ParseSizeFlag(argc, argv, &i, "--cache", &options.cache_capacity) ||
        ParseSizeFlag(argc, argv, &i, "--deadline-ms", &deadline_ms)) {
      continue;
    }
    if (std::strcmp(argv[i], "--sync") == 0) {
      sync = true;
      continue;
    }
    std::cerr << "unknown flag '" << argv[i]
              << "' (usage: dpclustx_serve [--threads N] [--queue N] "
                 "[--cache N] [--deadline-ms N] [--sync])\n";
    return 2;
  }
  options.default_deadline_ms = static_cast<int64_t>(deadline_ms);

  ServiceEngine engine(options);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (sync) {
      WriteLine(engine.Handle(line));
      continue;
    }
    const Status submitted =
        engine.HandleAsync(line, [](std::string response) {
          WriteLine(response);
        });
    if (!submitted.ok()) {
      WriteLine(ServiceEngine::RejectionResponse(line, submitted,
                                                 options.retry_after_ms));
    }
  }
  engine.Shutdown();  // drain queued requests before exiting
  return 0;
}
