// dpclustx_serve — JSON line-protocol explanation server on stdin/stdout.
//
// Reads one JSON request per line, dispatches it to the service engine's
// worker pool, and writes one JSON response per line. Responses can arrive
// out of order relative to requests; clients that care pass an "id" field,
// which is echoed back verbatim. When the request queue is full the request
// is answered immediately with a ResourceExhausted error instead of
// blocking the reader (backpressure is explicit, never silent).
//
// Durability (DESIGN.md §11): with --snapshot the worker restores its hot
// state (datasets, session ledgers, release cache, audit cursor) at startup
// and saves it periodically and at shutdown; with --audit-journal every ε
// charge/denial is appended and flushed to a JSONL write-ahead log before
// its response leaves the process, so restore + journal replay puts every
// observable charge back exactly once after a SIGKILL. A restore error
// other than "no snapshot yet" refuses to serve — wrong ledgers are worse
// than downtime.
//
// With --listen the same engine also serves socket clients (unix:/path or
// tcp:[host:]port, src/service/transport.h): many concurrent connections,
// newline framing identical to stdin, per-connection backpressure, and
// requests shed with ResourceExhausted + retry_after_ms once a client's
// response backlog passes the transport's hard write limit. stdin remains
// the lifecycle handle — EOF drains and shuts down.
//
// The same --listen sockets also answer plain HTTP GETs (DESIGN.md §15):
// GET /metrics returns the Prometheus text exposition of the process-wide
// registry (engine ops, transport, ISA dispatch — one scrape, no sidecar),
// /healthz answers "ok" while the event loop runs, and /ready answers 503
// until the snapshot restore has completed (load balancers gate on it).
// JSON-protocol clients are unaffected: their first byte is '{', never 'G'.
//
// The flag table below is the single reference (printed by --help and
// mirrored in README.md "Serving flags"):
//
//   --listen SPEC            also accept clients on unix:/path or
//                            tcp:[host:]port (repeatable); the same socket
//                            answers HTTP GET /metrics, /healthz, /ready
//   --threads N              worker threads (default 4)
//   --queue N                pending-request bound (default 256)
//   --cache N                release-cache entries (default 1024)
//   --deadline-ms N          default per-request deadline in ms, counted
//                            from enqueue; requests may override with their
//                            own "deadline_ms" field (default 0 = none)
//   --max-csv-bytes N        refuse load_dataset csv files larger than N
//                            bytes (default 0 = no limit; convert big files
//                            to DPXCOL with dpclustx_convert instead)
//   --sync                   serve each request on the reader thread, in
//                            order (deterministic scripted sessions)
//   --trace-all              trace every request into the engine's trace
//                            ring (retrieve with the "trace" op)
//   --metrics-dump FILE      periodically write the Prometheus text
//                            exposition to FILE (atomic tmp+rename); also
//                            written once at shutdown
//   --metrics-interval-ms N  metrics dump period in ms (default 5000)
//   --snapshot FILE          durable state snapshot: restored (with the
//                            journal, if any) at startup, then saved every
//                            --snapshot-interval-ms and at shutdown
//   --snapshot-interval-ms N snapshot save period in ms (default 10000;
//                            0 = save only at shutdown)
//   --audit-journal FILE     append+flush every ε charge/denial to FILE
//                            before its response (the crash-recovery WAL)
//   --read-only              replica mode: refuse every op that would
//                            charge ε or mutate state; cache hits (and
//                            load_snapshot) still serve
//   --version                print build provenance and exit
//   --help                   print this flag table and exit
//
// On EOF the server drains queued requests, writes a final metrics dump and
// snapshot, flushes, and exits 0. See README.md for a quickstart transcript.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/build_info.h"
#include "obs/metrics.h"
#include "service/service_engine.h"
#include "service/transport.h"
#include "snapshot/snapshot_io.h"

namespace {

using dpclustx::Status;
using dpclustx::StatusCode;
using dpclustx::StatusCodeName;
using dpclustx::StatusOr;
using dpclustx::service::ServiceEngine;
using dpclustx::service::ServiceEngineOptions;

std::mutex stdout_mutex;

void WriteLine(const std::string& response) {
  std::lock_guard<std::mutex> lock(stdout_mutex);
  std::cout << response << "\n";
  std::cout.flush();
}

// Keep in sync with the file comment above and README.md "Serving flags" —
// this text IS the reference table.
constexpr const char kUsage[] =
    "usage: dpclustx_serve [flags]\n"
    "\n"
    "  --listen SPEC            also accept clients on unix:/path or\n"
    "                           tcp:[host:]port (repeatable); the same\n"
    "                           socket answers HTTP GET /metrics, /healthz,\n"
    "                           /ready\n"
    "  --threads N              worker threads (default 4)\n"
    "  --queue N                pending-request bound (default 256)\n"
    "  --cache N                release-cache entries (default 1024)\n"
    "  --deadline-ms N          default per-request deadline in ms, counted\n"
    "                           from enqueue (default 0 = none)\n"
    "  --max-csv-bytes N        refuse load_dataset csv files larger than N\n"
    "                           bytes (default 0 = no limit; use\n"
    "                           dpclustx_convert for big files)\n"
    "  --sync                   serve each request on the reader thread, in\n"
    "                           order (deterministic scripted sessions)\n"
    "  --trace-all              trace every request into the trace ring\n"
    "  --metrics-dump FILE      periodic Prometheus exposition to FILE\n"
    "                           (atomic tmp+rename; final dump at shutdown)\n"
    "  --metrics-interval-ms N  metrics dump period in ms (default 5000)\n"
    "  --snapshot FILE          durable state snapshot: restored at startup,\n"
    "                           saved every --snapshot-interval-ms and at\n"
    "                           shutdown\n"
    "  --snapshot-interval-ms N snapshot save period in ms (default 10000;\n"
    "                           0 = save only at shutdown)\n"
    "  --audit-journal FILE     append+flush every charge/denial to FILE\n"
    "                           before its response (crash-recovery WAL)\n"
    "  --read-only              replica mode: refuse charging/mutating ops;\n"
    "                           cache hits still serve\n"
    "  --version                print build provenance and exit\n"
    "  --help                   print this flag table and exit\n";

bool ParseSizeFlag(int argc, char** argv, int* i, const char* name,
                   size_t* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = static_cast<size_t>(std::stoull(argv[++*i]));
  return true;
}

bool ParseStringFlag(int argc, char** argv, int* i, const char* name,
                     std::string* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

// Writes the Prometheus exposition atomically: scrapers that read `path`
// see either the previous complete dump or the new one, never a torn file.
void DumpMetrics(dpclustx::service::ServiceEngine& engine,
                 const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write metrics dump '" << tmp << "'\n";
      return;
    }
    out << engine.metrics().PrometheusText();
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "cannot rename metrics dump to '" << path << "'\n";
  }
}

void SaveSnapshot(ServiceEngine& engine, const std::string& path) {
  const Status saved = engine.SaveSnapshotToFile(path);
  if (!saved.ok()) {
    std::cerr << "snapshot save to '" << path
              << "' failed: " << StatusCodeName(saved.code()) << ": "
              << saved.message() << "\n";
  }
}

/// Background thread running `work` every `interval_ms`, parked on a
/// condition variable so Stop is immediate instead of waiting out the
/// interval. Used for both the metrics dump and the periodic snapshot.
class PeriodicWorker {
 public:
  PeriodicWorker(size_t interval_ms, std::function<void()> work)
      : thread_([this, interval_ms, work = std::move(work)] {
          std::unique_lock<std::mutex> lock(mutex_);
          while (!stop_) {
            lock.unlock();
            work();
            lock.lock();
            cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return stop_; });
          }
        }) {}

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  ServiceEngineOptions options;
  bool sync = false;
  size_t deadline_ms = 0;
  std::string metrics_dump;
  size_t metrics_interval_ms = 5000;
  std::string snapshot_path;
  size_t snapshot_interval_ms = 10000;
  std::string audit_journal;
  std::vector<std::string> listen_specs;
  for (int i = 1; i < argc; ++i) {
    std::string listen_spec;
    if (ParseStringFlag(argc, argv, &i, "--listen", &listen_spec)) {
      listen_specs.push_back(listen_spec);
      continue;
    }
    if (ParseSizeFlag(argc, argv, &i, "--threads", &options.num_threads) ||
        ParseSizeFlag(argc, argv, &i, "--queue", &options.queue_capacity) ||
        ParseSizeFlag(argc, argv, &i, "--cache", &options.cache_capacity) ||
        ParseSizeFlag(argc, argv, &i, "--deadline-ms", &deadline_ms) ||
        ParseSizeFlag(argc, argv, &i, "--max-csv-bytes",
                      &options.max_csv_bytes) ||
        ParseSizeFlag(argc, argv, &i, "--metrics-interval-ms",
                      &metrics_interval_ms) ||
        ParseSizeFlag(argc, argv, &i, "--snapshot-interval-ms",
                      &snapshot_interval_ms) ||
        ParseStringFlag(argc, argv, &i, "--metrics-dump", &metrics_dump) ||
        ParseStringFlag(argc, argv, &i, "--snapshot", &snapshot_path) ||
        ParseStringFlag(argc, argv, &i, "--audit-journal", &audit_journal)) {
      continue;
    }
    if (std::strcmp(argv[i], "--sync") == 0) {
      sync = true;
      continue;
    }
    if (std::strcmp(argv[i], "--trace-all") == 0) {
      options.trace_all = true;
      continue;
    }
    if (std::strcmp(argv[i], "--read-only") == 0) {
      options.read_only = true;
      continue;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      // The snapshot format rides along so operators (and the bench
      // snapshot scripts) can tell which format a binary writes without
      // inspecting a file.
      std::cout << dpclustx::obs::BuildInfoVersionLine() << ", snapshot-format v"
                << dpclustx::snapshot::kSnapshotFormatVersion << "\n";
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << kUsage;
      return 0;
    }
    std::cerr << "unknown flag '" << argv[i] << "'\n" << kUsage;
    return 2;
  }
  options.default_deadline_ms = static_cast<int64_t>(deadline_ms);
  if (metrics_interval_ms == 0) metrics_interval_ms = 5000;

  // One process, one scrape: the engine registers its instruments in the
  // process-global registry so GET /metrics exposes engine ops, transport
  // counters, and the ISA dispatch gauge in a single exposition.
  options.metrics_registry = &dpclustx::obs::MetricsRegistry::Default();

  ServiceEngine engine(options);

  // Flipped once durable state is restored (or there was none to restore);
  // /ready answers 503 before that so load balancers and the router's
  // scrape plane never route to a worker still replaying its journal.
  std::atomic<bool> ready{false};

  // Restore BEFORE the journal is opened for append and before any request
  // is read: RestoreFromFiles requires an empty engine, and the journal must
  // hold only records the restored audit cursor accounts for.
  if (!snapshot_path.empty()) {
    StatusOr<ServiceEngine::RestoreReport> restored =
        engine.RestoreFromFiles(snapshot_path, audit_journal);
    if (restored.ok()) {
      std::cerr << "restored snapshot '" << snapshot_path << "' (format v"
                << restored->format_version << "): " << restored->datasets
                << " datasets, " << restored->sessions << " sessions, "
                << restored->cache_entries << " cached releases, "
                << restored->replayed_records << " journal records replayed";
      if (!restored->unrecovered_sessions.empty()) {
        std::cerr << "; unrecovered sessions:";
        for (const std::string& tenant : restored->unrecovered_sessions) {
          std::cerr << " " << tenant;
        }
      }
      std::cerr << "\n";
    } else if (restored.status().code() == StatusCode::kNotFound) {
      std::cerr << "no snapshot at '" << snapshot_path
                << "'; starting fresh\n";
    } else {
      // Corrupt snapshot, newer format, journal gap, snapshot-less journal:
      // serving with wrong ledgers is worse than not serving.
      std::cerr << "refusing to serve: "
                << StatusCodeName(restored.status().code()) << ": "
                << restored.status().message() << "\n";
      return 1;
    }
  }
  if (!audit_journal.empty()) {
    const Status journaling = engine.EnableAuditJournal(audit_journal);
    if (!journaling.ok()) {
      std::cerr << "cannot open audit journal '" << audit_journal
                << "': " << journaling.message() << "\n";
      return 1;
    }
  }
  ready.store(true, std::memory_order_release);

  std::unique_ptr<PeriodicWorker> metrics_writer;
  if (!metrics_dump.empty()) {
    metrics_writer = std::make_unique<PeriodicWorker>(
        metrics_interval_ms, [&] { DumpMetrics(engine, metrics_dump); });
  }
  std::unique_ptr<PeriodicWorker> snapshot_writer;
  if (!snapshot_path.empty() && snapshot_interval_ms > 0 &&
      !options.read_only) {
    snapshot_writer = std::make_unique<PeriodicWorker>(
        snapshot_interval_ms, [&] { SaveSnapshot(engine, snapshot_path); });
  }

  // Socket front door: same engine, many concurrent clients. The frame
  // handler runs on the transport's event loop, so it only classifies and
  // enqueues (--sync serializes socket clients too, on that loop thread).
  std::unique_ptr<dpclustx::service::Transport> transport;
  if (!listen_specs.empty()) {
    transport = std::make_unique<dpclustx::service::Transport>();
    for (const std::string& spec : listen_specs) {
      const Status listening = transport->Listen(spec);
      if (!listening.ok()) {
        std::cerr << "cannot listen: " << listening.ToString() << "\n";
        return 1;
      }
    }
    transport->SetHttpHandler(
        [&engine, &ready](const std::string& path)
            -> dpclustx::service::HttpResponse {
          if (path == "/metrics") {
            return {200, "text/plain; version=0.0.4; charset=utf-8",
                    engine.metrics().PrometheusText()};
          }
          if (path == "/healthz") {
            return {200, "text/plain; charset=utf-8", "ok\n"};
          }
          if (path == "/ready") {
            return ready.load(std::memory_order_acquire)
                       ? dpclustx::service::HttpResponse{
                             200, "text/plain; charset=utf-8", "ready\n"}
                       : dpclustx::service::HttpResponse{
                             503, "text/plain; charset=utf-8",
                             "not ready: restoring durable state\n"};
          }
          return {404, "text/plain; charset=utf-8", "not found\n"};
        });
    const Status started = transport->Start(
        [&](dpclustx::service::ConnId conn, std::string&& request) {
          dpclustx::service::Transport* t = transport.get();
          if (t->QueuedBytes(conn) > t->options().write_hard_limit_bytes) {
            t->Send(conn, ServiceEngine::RejectionResponse(
                              request,
                              Status::ResourceExhausted(
                                  "client response backlog exceeds the hard "
                                  "write limit; drain responses first"),
                              options.retry_after_ms));
            return;
          }
          if (sync) {
            t->Send(conn, engine.Handle(request));
            return;
          }
          const Status submitted =
              engine.HandleAsync(request, [t, conn](std::string response) {
                t->Send(conn, response);
              });
          if (!submitted.ok()) {
            t->Send(conn,
                    ServiceEngine::RejectionResponse(request, submitted,
                                                     options.retry_after_ms));
          }
        });
    if (!started.ok()) {
      std::cerr << "cannot start transport: " << started.ToString() << "\n";
      return 1;
    }
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (sync) {
      WriteLine(engine.Handle(line));
      continue;
    }
    const Status submitted =
        engine.HandleAsync(line, [](std::string response) {
          WriteLine(response);
        });
    if (!submitted.ok()) {
      WriteLine(ServiceEngine::RejectionResponse(line, submitted,
                                                 options.retry_after_ms));
    }
  }
  // Drain first so in-flight socket responses still go out, then stop the
  // transport (late arrivals during the drain get shutdown rejections).
  engine.Shutdown();
  if (transport != nullptr) transport->Stop();
  if (snapshot_writer != nullptr) snapshot_writer->Stop();
  if (!snapshot_path.empty() && !options.read_only) {
    SaveSnapshot(engine, snapshot_path);  // final post-drain snapshot
  }
  if (metrics_writer != nullptr) {
    metrics_writer->Stop();
    DumpMetrics(engine, metrics_dump);  // final post-drain snapshot
  }
  return 0;
}
