// dpclustx_router — sharded multi-worker front door for dpclustx_serve.
//
// Speaks the same JSON line protocol as dpclustx_serve on stdin/stdout, but
// behind it supervises N shard workers (each a dpclustx_serve child with its
// own snapshot + audit journal under --state-dir) and optionally R read-only
// replicas per shard (spawned from the shard's snapshot). Datasets are
// consistent-hashed across shards (src/service/router_core.h), so every
// request touching a dataset or a session bound to one lands on the worker
// whose ledgers own it.
//
//   client ──stdin──▶ router ──pipes──▶ shard-0 (snapshot + journal)
//                        │              shard-1 (snapshot + journal)
//                        │              ...
//                        └─ explain/hist may try ─▶ replica-i.r (--read-only,
//                           restored from shard-i's snapshot; serves cache
//                           hits for free, refuses misses → router retries
//                           against the primary)
//
// Fault handling: a health thread pings every worker on an interval with a
// deadline; after --health-misses consecutive misses (or an EOF on the
// worker's pipe) the worker is SIGKILLed and respawned with exponential
// backoff. Shards restore themselves at startup from their own --snapshot
// and --audit-journal flags, so the respawn path here is just re-exec — the
// exactly-once ε accounting lives in the worker (DESIGN.md §11). Requests
// in flight on a dead worker get an Internal error telling the client to
// retry (replica reads silently retry against the primary instead).
//
// Transport: by default the router speaks the protocol on stdin/stdout
// (single client, scripted sessions). With --listen it additionally serves
// many concurrent clients over Unix-domain or TCP sockets behind one epoll
// loop (src/service/transport.h): newline framing identical to stdin,
// bounded per-connection buffers, reads suspended above the soft write
// budget, and requests shed with ResourceExhausted + retry_after_ms once a
// connection's response backlog passes the hard cap. stdin stays open as a
// compatibility client (ConnId 0); EOF on stdin is still the shutdown
// signal either way.
//
// Relay: worker responses carry the router's internal id and must go back
// out with the client's original id. The hot path does this with a
// zero-reparse splice (src/service/json_relay.h): scan the response line
// once, replace only the id value's bytes, forward everything else
// verbatim — byte-identical to the old parse→mutate→dump path (the
// --verify-relay flag enforces that equivalence per response, and the ASan
// smoke in scripts/check.sh runs with it on). Broadcast merges and replica
// refusal checks still use the full parser; --relay full restores it
// everywhere as the baseline for benchmarks.
//
// Tracing (DESIGN.md §15): a request carrying "trace":true gets a trace
// context spliced into its forwarded line — the same zero-reparse byte
// splice as the id rewrite (SpliceTraceContext) injects
// "_tc":{"pid":"r<seq>","tid":"t<seq>"} right after the opening brace. The
// worker activates its span tree under that trace id and returns it in the
// response envelope; the router replaces it with one stitched end-to-end
// timeline: router-side spans (parse, shard_pick, relay_splice,
// worker_roundtrip with the derived worker_queue_wait, write_back) plus the
// worker's own pipeline tree nested under worker_roundtrip. The worker
// subtree keeps its own clock domain (its start_micros are relative to the
// worker's root, not the router's — cross-process clocks are not stitched,
// only durations are). When the worker dies mid-request the error response
// carries the router-side spans and "trace_partial":true instead of
// hanging. Finished timelines land in a bounded router trace ring served by
// the `trace` op, and --slow-request-ms emits a structured slow-log line
// (with the trace id when there is one) to stderr for any request over the
// threshold.
//
// Telemetry: the router's own registry carries per-worker labeled series —
// round-trip latency histograms, in-flight depth, restarts, respawn
// backoff, liveness, and replica staleness, all labeled {worker="..."} —
// and the `metrics` op returns a "fleet" rollup that merges every worker's
// registry into one namespace with the worker label injected, alongside
// the per-worker raw responses. On --listen sockets the router also
// answers plain HTTP GETs for /metrics (Prometheus text 0.0.4), /healthz,
// and /ready on the same port the line protocol uses, so a stock
// Prometheus scrapes it with no sidecar; --worker-listen-base gives each
// worker its own scrape port too.
//
// Flags:
//
//   --listen SPEC            accept clients on unix:/path or tcp:[host:]port
//                            (repeatable; e.g. --listen unix:/tmp/dpx.sock
//                            --listen tcp:7070)
//   --relay MODE             splice (default) | full — worker response id
//                            rewrite strategy
//   --verify-relay           cross-check every spliced response against the
//                            full-parse path (CI smokes; aborts on drift)
//   --max-frame-bytes N      per-request frame cap on socket clients
//                            (default 1 MiB)
//   --write-soft-limit-bytes N  per-connection backlog above which reads
//                            pause (default 256 KiB)
//   --write-hard-limit-bytes N  backlog above which new requests are shed
//                            (default 4 MiB)
//   --retry-after-ms N       back-off hint attached to shed responses
//                            (default 100)
//   --slow-request-ms N      structured slow-log line to stderr for any
//                            request slower than N ms (default 0 = off)
//   --worker-listen-base P   give each worker its own tcp listener on
//                            127.0.0.1:(P + worker index) so Prometheus
//                            can scrape workers directly (default 0 = off)
//   --workers N              shard workers (default 2)
//   --replicas R             read-only replicas per shard (default 0)
//   --serve BIN              dpclustx_serve binary (default: next to this
//                            executable)
//   --state-dir DIR          where shard-i.snap / shard-i.journal live
//                            (default ".")
//   --vnodes N               virtual nodes per shard on the hash ring
//                            (default 64; part of the placement contract —
//                            keep it stable across restarts)
//   --health-interval-ms N   ping period (default 1000)
//   --health-deadline-ms N   ping response deadline (default 2000)
//   --health-misses N        consecutive misses before respawn (default 3)
//   --version                print build provenance and exit
//   --help                   print this flag table and exit
//   -- FLAGS...              everything after -- is appended to every
//                            worker's command line (e.g. `-- --sync` for
//                            scripted sessions: the protocol is pipelined,
//                            so without --sync two requests to the same
//                            shard may be served out of order)
//
// Router-level ops (handled here, never forwarded):
//
//   {"op":"_router_status"}          topology, worker liveness, restarts,
//                                    bound sessions, dropped worker lines
//                                    (dpclustx_router_dropped_lines_total)
//   {"op":"_router_sync_replicas"}   save_snapshot on every shard, then
//                                    respawn replicas from the fresh files
//
// save_snapshot / load_snapshot from clients are refused: the router owns
// snapshot scheduling (per-shard files under --state-dir). ping / stats /
// audit broadcast to every shard and return the per-shard responses under
// "workers"; metrics broadcasts too and adds the labeled "fleet" rollup.
// trace is answered by the router itself with its ring of stitched
// end-to-end timelines (per-worker rings stay reachable by scraping a
// worker's own port with --worker-listen-base).

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/status.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "service/json_relay.h"
#include "service/router_core.h"
#include "service/transport.h"

namespace {

using dpclustx::JsonValue;
using dpclustx::Status;
using dpclustx::StatusCode;
using dpclustx::StatusCodeName;
using dpclustx::StatusOr;
using dpclustx::service::Backoff;
using dpclustx::service::ConnId;
using dpclustx::service::EraseId;
using dpclustx::service::RelayScan;
using dpclustx::service::RouteDecision;
using dpclustx::service::RouteKind;
using dpclustx::service::RouterCore;
using dpclustx::service::ScanTopLevelId;
using dpclustx::service::SpliceId;
using dpclustx::service::SpliceTraceContext;
using dpclustx::service::Transport;
using dpclustx::service::TransportOptions;

/// The stdin/stdout compatibility client. Real socket connections get ids
/// >= dpclustx::service::kFirstConnId from the transport.
constexpr ConnId kStdioConn = 0;

constexpr const char kUsage[] =
    "usage: dpclustx_router [flags]\n"
    "\n"
    "  --listen SPEC            accept clients on unix:/path or\n"
    "                           tcp:[host:]port (repeatable)\n"
    "  --relay MODE             splice (default) | full\n"
    "  --verify-relay           cross-check spliced responses against the\n"
    "                           full-parse path (aborts on drift)\n"
    "  --max-frame-bytes N      socket frame cap (default 1048576)\n"
    "  --write-soft-limit-bytes N  pause reads above this backlog\n"
    "                           (default 262144)\n"
    "  --write-hard-limit-bytes N  shed requests above this backlog\n"
    "                           (default 4194304)\n"
    "  --retry-after-ms N       back-off hint on shed responses (default "
    "100)\n"
    "  --slow-request-ms N      structured slow-log line to stderr for any\n"
    "                           request slower than N ms (default 0 = off)\n"
    "  --worker-listen-base P   per-worker tcp scrape listener on\n"
    "                           127.0.0.1:(P + worker index) (default 0 = "
    "off)\n"
    "  --workers N              shard workers (default 2)\n"
    "  --replicas R             read-only replicas per shard (default 0)\n"
    "  --serve BIN              dpclustx_serve binary (default: next to this\n"
    "                           executable)\n"
    "  --state-dir DIR          shard snapshot/journal directory (default .)\n"
    "  --vnodes N               virtual nodes per shard (default 64)\n"
    "  --health-interval-ms N   ping period (default 1000)\n"
    "  --health-deadline-ms N   ping response deadline (default 2000)\n"
    "  --health-misses N        consecutive misses before respawn (default 3)\n"
    "  --version                print build provenance and exit\n"
    "  --help                   print this flag table and exit\n"
    "  -- FLAGS...              appended to every worker's command line\n"
    "                           (e.g. `-- --sync` for scripted sessions)\n";

std::mutex stdout_mutex;

void WriteClientLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(stdout_mutex);
  std::cout << line << "\n";
  std::cout.flush();
}

/// Engine-shaped error response so clients see one vocabulary regardless of
/// whether the router or a worker produced the error. retry_after_ms > 0
/// adds the back-off hint shed responses carry.
JsonValue ErrorBody(StatusCode code, const std::string& message,
                    int64_t retry_after_ms = 0) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeName(code)));
  error.Set("message", JsonValue::String(message));
  if (retry_after_ms > 0) {
    error.Set("retry_after_ms",
              JsonValue::Number(static_cast<double>(retry_after_ms)));
  }
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", std::move(error));
  return response;
}

/// Duration → whole microseconds, rounded UP with a floor of 1 — matching
/// obs::Trace's convention that a span which ran at all reports >= 1 µs.
uint64_t CeilMicros(std::chrono::steady_clock::duration d) {
  if (d <= std::chrono::steady_clock::duration::zero()) return 1;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  const uint64_t micros = static_cast<uint64_t>((ns + 999) / 1000);
  return micros == 0 ? 1 : micros;
}

int64_t NowSteadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One span in the stitched timeline, shaped exactly like obs::Trace's
/// ToJson nodes ({"name","start_micros","wall_micros","cpu_micros",
/// "children"}) so clients render router and worker spans uniformly. The
/// router has no per-span CPU clock; cpu_micros is 0 for router spans.
/// `name` must come from the fixed span vocabulary below — never client
/// data (the DP-safety rule trace.h states for worker spans holds here).
JsonValue SpanJson(const char* name, uint64_t start_micros,
                   uint64_t wall_micros) {
  JsonValue span = JsonValue::Object();
  span.Set("name", JsonValue::String(name));
  span.Set("start_micros",
           JsonValue::Number(static_cast<double>(start_micros)));
  span.Set("wall_micros", JsonValue::Number(static_cast<double>(wall_micros)));
  span.Set("cpu_micros", JsonValue::Number(0));
  span.Set("children", JsonValue::Array());
  return span;
}

/// "name" → "name{worker=\"shard-0\"}", "name{op=\"x\"}" →
/// "name{op=\"x\",worker=\"shard-0\"}" — how the fleet rollup folds every
/// worker's registry into one namespace without key collisions.
std::string InjectWorkerLabel(const std::string& key,
                              const std::string& worker) {
  const std::string label = "worker=\"" + worker + "\"";
  if (!key.empty() && key.back() == '}') {
    return key.substr(0, key.size() - 1) + "," + label + "}";
  }
  return key + "{" + label + "}";
}

/// One in-flight forwarded request. kInternal entries (health pings, admin
/// snapshot saves) complete a condition-variable wait instead of writing to
/// the client.
struct PendingEntry {
  enum class Kind { kSingle, kBroadcast, kInternal };
  Kind kind = Kind::kSingle;

  ConnId client = kStdioConn;  // connection owed the response
  bool has_client_id = false;
  JsonValue client_id;
  std::string client_id_json;  // client_id pre-serialized: the splice path
                               // does zero JSON work per response
  std::chrono::steady_clock::time_point enqueued;  // for _router_status aging

  std::string worker;        // who currently owes the response
  std::string request_line;  // rewritten line (router id), for fallback
  std::string dataset;       // kSingle: owning dataset, "" for unknown-op
  bool on_replica = false;   // kSingle: true while a replica is trying

  // Timeline bookkeeping (enqueued above is the receive time). written is
  // refreshed when a replica miss moves the request to the primary, so
  // worker_roundtrip measures the leg that actually answered. All fields
  // are read/written under pending_mutex_; the stitched trace is built
  // from a snapshot after the entry leaves the map.
  std::string op;            // for the slow log and the metrics rollup
  bool traced = false;       // "trace":true — a stitched timeline is owed
  std::string tid;           // propagated trace id ("t<seq>")
  std::chrono::steady_clock::time_point written;  // pipe write time
  uint64_t parse_micros = 0;   // request parse
  uint64_t route_micros = 0;   // classify + shard pick
  uint64_t splice_micros = 0;  // _tc splice into the forwarded line

  size_t awaiting = 0;       // kBroadcast: responses still outstanding
  JsonValue merged = JsonValue::Object();

  bool done = false;         // kInternal
  std::string response_line;
};

struct WorkerProc {
  std::string name;            // "shard-0" / "replica-0.1"
  std::vector<std::string> args;
  size_t shard = 0;            // owning shard index (== own index for shards)
  bool replica = false;

  std::mutex write_mutex;      // serializes writes into the worker's stdin
  int stdin_fd = -1;
  pid_t pid = -1;
  std::thread reader;
  std::atomic<bool> alive{false};
  std::atomic<uint64_t> restarts{0};  // crash respawns (not deliberate ones)
  int misses = 0;              // consecutive health-check misses

  // Per-worker labeled instruments ({worker="<name>"}), registered once at
  // router construction in the process registry. spawned_at_ms feeds the
  // replica-staleness gauge: replicas only refresh by respawning, so their
  // age IS the staleness of the snapshot they serve.
  dpclustx::obs::LatencyHistogram* latency = nullptr;
  dpclustx::obs::Counter* restarts_counter = nullptr;
  dpclustx::obs::Gauge* backoff_gauge = nullptr;
  std::atomic<int64_t> spawned_at_ms{0};
};

/// The stitched end-to-end timeline for one traced request: router-side
/// spans with start offsets on the router's clock, plus (when the worker
/// answered) the worker's own span tree nested under worker_roundtrip.
///
///   router_request
///   ├─ parse              request JSON parse
///   ├─ shard_pick         classify + consistent-hash lookup
///   ├─ relay_splice       _tc splice into the forwarded line
///   ├─ worker_roundtrip   pipe write → response line
///   │  ├─ worker_queue_wait   roundtrip − worker-reported wall: pipe
///   │  │                      transit + time queued in the worker
///   │  └─ <worker tree>       offsets relative to the WORKER's root (its
///   │                         clock domain; only durations line up)
///   └─ write_back         response stitch + serialize, up to the reply
///
/// `worker_tree` is null when the worker died or answered without a tree —
/// the caller marks those responses "trace_partial". Span names here are
/// the fixed vocabulary above; like worker spans they carry timings only.
JsonValue StitchTimeline(const PendingEntry& entry,
                         std::chrono::steady_clock::time_point replied,
                         const JsonValue* worker_tree) {
  JsonValue children = JsonValue::Array();
  children.Append(SpanJson("parse", 0, entry.parse_micros));
  uint64_t cursor = entry.parse_micros;
  children.Append(SpanJson("shard_pick", cursor, entry.route_micros));
  cursor += entry.route_micros;
  children.Append(SpanJson("relay_splice", cursor, entry.splice_micros));
  const uint64_t roundtrip_start = CeilMicros(entry.written - entry.enqueued);
  const uint64_t roundtrip_wall = CeilMicros(replied - entry.written);
  JsonValue roundtrip =
      SpanJson("worker_roundtrip", roundtrip_start, roundtrip_wall);
  if (worker_tree != nullptr) {
    uint64_t worker_wall = 0;
    if (worker_tree->Has("wall_micros") &&
        worker_tree->at("wall_micros").type() == JsonValue::Type::kNumber) {
      worker_wall =
          static_cast<uint64_t>(worker_tree->at("wall_micros").AsNumber());
    }
    const uint64_t queue_wait =
        roundtrip_wall > worker_wall ? roundtrip_wall - worker_wall : 1;
    JsonValue nested = JsonValue::Array();
    nested.Append(SpanJson("worker_queue_wait", roundtrip_start, queue_wait));
    nested.Append(*worker_tree);
    roundtrip.Set("children", std::move(nested));
  }
  children.Append(std::move(roundtrip));
  const auto stitched_at = std::chrono::steady_clock::now();
  children.Append(SpanJson("write_back", CeilMicros(replied - entry.enqueued),
                           CeilMicros(stitched_at - replied)));
  JsonValue root = SpanJson("router_request", 0,
                            CeilMicros(stitched_at - entry.enqueued));
  root.Set("children", std::move(children));
  return root;
}

class Router {
 public:
  Router(std::string serve_bin, std::string state_dir, size_t num_shards,
         size_t replicas_per_shard, size_t vnodes, int64_t health_interval_ms,
         int64_t health_deadline_ms, int health_misses,
         uint16_t worker_listen_base,
         std::vector<std::string> worker_extra_args)
      : core_(ShardNames(num_shards), vnodes),
        serve_bin_(std::move(serve_bin)),
        state_dir_(std::move(state_dir)),
        health_interval_ms_(health_interval_ms),
        health_deadline_ms_(health_deadline_ms),
        health_misses_(health_misses),
        dropped_lines_counter_(
            dpclustx::obs::MetricsRegistry::Default().RegisterCounter(
                "dpclustx_router_dropped_lines_total",
                "worker stdout lines the router could not parse or "
                "attribute to a request")),
        relay_spliced_counter_(
            dpclustx::obs::MetricsRegistry::Default().RegisterCounter(
                "dpclustx_router_relay_spliced_total",
                "worker responses relayed via the zero-reparse id splice")),
        relay_full_parse_counter_(
            dpclustx::obs::MetricsRegistry::Default().RegisterCounter(
                "dpclustx_router_relay_full_parse_total",
                "worker responses relayed via the full parse/dump path")),
        shed_requests_counter_(
            dpclustx::obs::MetricsRegistry::Default().RegisterCounter(
                "dpclustx_router_shed_requests_total",
                "requests refused with ResourceExhausted because the "
                "client's response backlog passed the hard write limit")),
        tc_spliced_counter_(
            dpclustx::obs::MetricsRegistry::Default().RegisterCounter(
                "dpclustx_router_tc_spliced_total",
                "trace contexts injected via the zero-reparse splice")),
        tc_full_parse_counter_(
            dpclustx::obs::MetricsRegistry::Default().RegisterCounter(
                "dpclustx_router_tc_full_parse_total",
                "trace contexts injected via the full parse/dump fallback")) {
    // --worker-listen-base P hands worker k (in spawn order: shards first,
    // then replicas) its own tcp scrape listener on 127.0.0.1:(P+k). The
    // port rides in the respawn args, so a respawned worker comes back on
    // the same address (SO_REUSEADDR makes the rebind immediate).
    uint16_t next_port = worker_listen_base;
    const auto maybe_listen = [&](std::vector<std::string>& args) {
      if (worker_listen_base == 0) return;
      args.push_back("--listen");
      args.push_back("tcp:127.0.0.1:" + std::to_string(next_port++));
    };
    for (size_t i = 0; i < num_shards; ++i) {
      auto w = std::make_unique<WorkerProc>();
      w->name = "shard-" + std::to_string(i);
      w->shard = i;
      w->args = {serve_bin_,
                 "--snapshot", SnapshotPath(i),
                 "--audit-journal", state_dir_ + "/shard-" +
                     std::to_string(i) + ".journal"};
      maybe_listen(w->args);
      w->args.insert(w->args.end(), worker_extra_args.begin(),
                     worker_extra_args.end());
      workers_.push_back(std::move(w));
    }
    for (size_t i = 0; i < num_shards; ++i) {
      for (size_t r = 0; r < replicas_per_shard; ++r) {
        auto w = std::make_unique<WorkerProc>();
        w->name = "replica-" + std::to_string(i) + "." + std::to_string(r);
        w->shard = i;
        w->replica = true;
        // Replicas restore from the shard's snapshot but never journal or
        // save: they are disposable caches, refreshed by respawning
        // (_router_sync_replicas).
        w->args = {serve_bin_, "--read-only", "--snapshot", SnapshotPath(i)};
        maybe_listen(w->args);
        w->args.insert(w->args.end(), worker_extra_args.begin(),
                       worker_extra_args.end());
        workers_.push_back(std::move(w));
      }
    }
    num_shards_ = num_shards;
    RegisterWorkerInstruments();
  }

  void Start() {
    EnsureStateDir();
    for (auto& w : workers_) Spawn(*w);
    health_thread_ = std::thread([this] { HealthLoop(); });
  }

  /// splice=false restores the legacy full-parse relay (bench baseline);
  /// verify cross-checks every spliced response against it.
  void ConfigureRelay(bool splice, bool verify) {
    relay_splice_ = splice;
    verify_relay_ = verify;
  }

  /// threshold_ms > 0 turns on the structured slow log: one JSON line to
  /// stderr per request slower than the threshold, carrying the op, the
  /// owing worker, the elapsed time, and the trace id when the request was
  /// traced — enough to pull the matching stitched timeline from the ring.
  void ConfigureSlowLog(int64_t threshold_ms) {
    slow_request_ms_ = threshold_ms;
  }

  /// Brings up the socket front door on every --listen spec. The handler
  /// runs on the transport's event-loop thread; routing is quick (classify
  /// + one pipe write), responses come back via worker reader threads.
  Status StartTransport(const std::vector<std::string>& specs,
                        TransportOptions options, int64_t retry_after_ms) {
    retry_after_ms_ = retry_after_ms;
    transport_ = std::make_unique<Transport>(options);
    for (const std::string& spec : specs) {
      DPX_RETURN_IF_ERROR(transport_->Listen(spec));
    }
    // Native scrape endpoints on the same listeners the line protocol
    // uses. The handler runs on the event-loop thread: it reads the
    // router's own registry (which carries the per-worker labeled series
    // and the broadcast counters) — it must never fan a request out to
    // workers and wait.
    transport_->SetHttpHandler(
        [this](const std::string& path) { return HttpScrape(path); });
    return transport_->Start([this](ConnId conn, std::string&& line) {
      HandleClientLine(conn, line);
    });
  }

  void ServeStdin() {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      HandleClientLine(kStdioConn, line);
    }
  }

  void Shutdown() {
    // Drain first: a replica fallback still in flight needs the primary's
    // pipe to stay open until its response lands. Ten seconds bounds the
    // wait if a worker is wedged; its entries then fail via FailWorkerPending
    // when the pipe closes below.
    {
      std::unique_lock<std::mutex> lock(pending_mutex_);
      pending_cv_.wait_for(lock, std::chrono::seconds(10),
                           [this] { return pending_.empty(); });
    }
    // Stop accepting socket traffic before tearing down workers; the event
    // loop flushes what it can and drops (and counts) the rest.
    if (transport_ != nullptr) transport_->Stop();
    {
      std::lock_guard<std::mutex> lock(health_mutex_);
      shutting_down_ = true;
    }
    health_cv_.notify_all();
    health_thread_.join();
    // Closing a worker's stdin makes it drain, snapshot, and exit 0.
    for (auto& w : workers_) {
      std::lock_guard<std::mutex> lock(w->write_mutex);
      if (w->stdin_fd >= 0) {
        ::close(w->stdin_fd);
        w->stdin_fd = -1;
      }
    }
    for (auto& w : workers_) {
      if (w->pid > 0) ::waitpid(w->pid, nullptr, 0);
      if (w->reader.joinable()) w->reader.join();
    }
  }

 private:
  static std::vector<std::string> ShardNames(size_t n) {
    std::vector<std::string> names;
    names.reserve(n);
    for (size_t i = 0; i < n; ++i) names.push_back("shard-" + std::to_string(i));
    return names;
  }

  std::string SnapshotPath(size_t shard) const {
    return state_dir_ + "/shard-" + std::to_string(shard) + ".snap";
  }

  // Workers refuse to start if their journal path is unwritable, so a
  // missing --state-dir would look like an instant crash loop. mkdir -p.
  void EnsureStateDir() const {
    std::string partial;
    for (size_t i = 0; i <= state_dir_.size(); ++i) {
      if (i < state_dir_.size() && state_dir_[i] != '/') {
        partial += state_dir_[i];
        continue;
      }
      if (!partial.empty() && partial != ".") {
        ::mkdir(partial.c_str(), 0755);  // EEXIST is fine
      }
      if (i < state_dir_.size()) partial += '/';
    }
    struct stat st;
    DPX_CHECK(::stat(state_dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        << "--state-dir '" << state_dir_ << "' cannot be created";
  }

  // ---- telemetry plane -----------------------------------------------

  /// Registers the per-worker labeled instruments in the process registry.
  /// Called once from the ctor, before any worker spawns. The pending-depth
  /// callback takes pending_mutex_ under the registry's exposition mutex,
  /// which fixes the lock order registry→pending: nothing may call
  /// PrometheusText()/ToJson() while holding pending_mutex_ (the broadcast
  /// completion paths build their fleet rollups outside the lock for
  /// exactly this reason).
  void RegisterWorkerInstruments() {
    auto& registry = dpclustx::obs::MetricsRegistry::Default();
    for (auto& owned : workers_) {
      WorkerProc* w = owned.get();
      const dpclustx::obs::MetricLabels labels = {{"worker", w->name}};
      w->latency = registry.RegisterLatencyHistogram(
          "dpclustx_router_worker_latency_micros",
          "Round trip from pipe write to response line, per worker", labels);
      w->restarts_counter = registry.RegisterCounter(
          "dpclustx_router_worker_restarts_total",
          "Crash respawns (deliberate replica refreshes excluded)", labels);
      w->backoff_gauge = registry.RegisterGauge(
          "dpclustx_router_worker_backoff_ms",
          "Backoff applied to the worker's most recent crash respawn",
          labels);
      registry.AddCallbackGauge(
          "dpclustx_router_worker_alive", "1 while the worker process lives",
          labels, [w] { return w->alive.load() ? 1.0 : 0.0; });
      registry.AddCallbackGauge(
          "dpclustx_router_worker_pending",
          "Requests currently in flight on this worker", labels, [this, w] {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            double depth = 0;
            for (const auto& [id, entry] : pending_) {
              if (entry->kind != PendingEntry::Kind::kBroadcast &&
                  entry->worker == w->name) {
                ++depth;
              }
            }
            return depth;
          });
      if (w->replica) {
        registry.AddCallbackGauge(
            "dpclustx_router_replica_staleness_seconds",
            "Seconds since the replica was (re)spawned from its shard's "
            "snapshot — replicas only refresh by respawning, so their age "
            "is their snapshot's staleness",
            labels, [w] {
              const int64_t spawned = w->spawned_at_ms.load();
              if (spawned == 0) return 0.0;
              const int64_t now_ms = NowSteadyMs();
              return now_ms > spawned ? (now_ms - spawned) / 1000.0 : 0.0;
            });
      }
    }
    registry.AddCallbackGauge(
        "dpclustx_router_trace_dropped_total",
        "Stitched timelines evicted from the bounded router trace ring", {},
        [this] {
          return static_cast<double>(
              trace_dropped_.load(std::memory_order_relaxed));
        });
  }

  /// GET /metrics | /healthz | /ready on any --listen socket. Runs on the
  /// event-loop thread: registry reads only, no worker round trips.
  dpclustx::service::HttpResponse HttpScrape(const std::string& path) {
    dpclustx::service::HttpResponse response;
    if (path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body =
          dpclustx::obs::MetricsRegistry::Default().PrometheusText();
    } else if (path == "/healthz") {
      // Liveness: the event loop answered, the router process is up.
      response.body = "ok\n";
    } else if (path == "/ready") {
      // Readiness: every shard primary is live (replicas are optional
      // caches; a dead replica degrades latency, not correctness).
      size_t down = 0;
      for (size_t i = 0; i < num_shards_; ++i) {
        if (!workers_[i]->alive.load()) ++down;
      }
      if (down == 0) {
        response.body = "ready\n";
      } else {
        response.status = 503;
        response.body = "not ready: " + std::to_string(down) +
                        " shard(s) down, respawn pending\n";
      }
    } else {
      response.status = 404;
      response.body = "not found (try /metrics, /healthz, /ready)\n";
    }
    return response;
  }

  // ---- client replies ------------------------------------------------

  /// Routes one response line to whichever front door owns `conn`.
  void Reply(ConnId conn, const std::string& line) {
    if (conn == kStdioConn) {
      WriteClientLine(line);
      return;
    }
    // false = the client disconnected; the transport counted the drop.
    transport_->Send(conn, line);
  }

  void RespondError(ConnId conn, StatusCode code, const std::string& message,
                    bool has_id, const JsonValue& id,
                    int64_t retry_after_ms = 0) {
    JsonValue response = ErrorBody(code, message, retry_after_ms);
    if (has_id) response.Set("id", id);
    Reply(conn, response.Dump());
  }

  WorkerProc* FindWorker(const std::string& name) {
    for (auto& w : workers_) {
      if (w->name == name) return w.get();
    }
    return nullptr;
  }

  WorkerProc* ShardWorker(const std::string& shard_name) {
    return FindWorker(shard_name);
  }

  /// An alive replica of `shard`, round-robin; nullptr when none.
  WorkerProc* PickReplica(size_t shard) {
    std::vector<WorkerProc*> candidates;
    for (auto& w : workers_) {
      if (w->replica && w->shard == shard && w->alive.load()) {
        candidates.push_back(w.get());
      }
    }
    if (candidates.empty()) return nullptr;
    return candidates[replica_rr_.fetch_add(1) % candidates.size()];
  }

  // ---- process plumbing ----------------------------------------------

  void Spawn(WorkerProc& w) {
    int to_child[2];
    int from_child[2];
    DPX_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0)
        << "pipe: " << std::strerror(errno);
    const pid_t pid = ::fork();
    DPX_CHECK(pid >= 0) << "fork: " << std::strerror(errno);
    if (pid == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      argv.reserve(w.args.size() + 1);
      for (const std::string& a : w.args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::cerr << "execv " << w.args[0] << ": " << std::strerror(errno)
                << "\n";
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    {
      std::lock_guard<std::mutex> lock(w.write_mutex);
      w.stdin_fd = to_child[1];
    }
    w.pid = pid;
    w.misses = 0;
    w.spawned_at_ms.store(NowSteadyMs());
    w.alive.store(true);
    w.reader = std::thread([this, &w, fd = from_child[0]] {
      ReaderLoop(w, fd);
    });
  }

  /// Reads the worker's stdout line by line until EOF (worker exit or
  /// crash), dispatching each response, then fails what the worker still
  /// owed so clients are never left hanging.
  void ReaderLoop(WorkerProc& w, int fd) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (!line.empty()) HandleWorkerLine(w, line);
      }
    }
    ::close(fd);
    w.alive.store(false);
    FailWorkerPending(w.name);
  }

  /// Writes one protocol line into the worker. False when the worker's pipe
  /// is gone (caller decides: error out or fall back).
  bool WriteToWorker(WorkerProc& w, const std::string& line) {
    std::lock_guard<std::mutex> lock(w.write_mutex);
    if (w.stdin_fd < 0 || !w.alive.load()) return false;
    const std::string payload = line + "\n";
    size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(w.stdin_fd, payload.data() + off, payload.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // EPIPE etc. — the health loop will respawn it
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // ---- response plumbing ---------------------------------------------

  /// The full-parse relay: decode the worker line, rewrite the id, dump.
  /// The splice path must match this byte for byte (--verify-relay checks).
  static std::string FullParseRelay(const JsonValue& parsed,
                                    const PendingEntry& entry) {
    JsonValue response = parsed;
    if (entry.has_client_id) {
      response.Set("id", entry.client_id);
    } else {
      response.Remove("id");
    }
    return response.Dump();
  }

  void HandleWorkerLine(WorkerProc& w, const std::string& line) {
    // Hot path: one structural scan finds the router id without building a
    // document tree. The full parser runs only for lines the scanner
    // refuses (torn output, escaped ids) and for the cold response kinds
    // that genuinely need a tree (broadcast merge, replica refusal check).
    StatusOr<RelayScan> scan = ScanTopLevelId(line);
    StatusOr<JsonValue> parsed = Status::Internal("not parsed");
    bool have_parsed = false;
    const auto ensure_parsed = [&]() -> bool {
      if (!have_parsed) {
        parsed = JsonValue::Parse(line);
        have_parsed = true;
      }
      return parsed.ok() && parsed->type() == JsonValue::Type::kObject;
    };

    std::string rid;
    if (scan.ok()) {
      rid = scan->id;
    } else {
      if (!ensure_parsed() || !parsed->Has("id") ||
          parsed->at("id").type() != JsonValue::Type::kString) {
        DropMalformedLine(w, line);
        return;
      }
      rid = parsed->at("id").AsString();
    }

    const auto replied = std::chrono::steady_clock::now();
    std::string retry_line;      // replica miss → re-send to this primary
    WorkerProc* retry_worker = nullptr;
    std::shared_ptr<PendingEntry> retry_entry;
    // A line the scanner accepted but the full parser refused (possible
    // only off the splice fast path, where the tree is actually needed):
    // the owed response is unrecoverable, fail that exact request.
    std::shared_ptr<PendingEntry> unparseable_victim;
    // Completions that still owe work the pending lock must not cover:
    // the broadcast response build reads the metrics registry (whose
    // callbacks take pending_mutex_), and the ring push / slow log are
    // not the lock's business.
    std::shared_ptr<PendingEntry> completed_broadcast;
    std::shared_ptr<PendingEntry> completed_single;
    JsonValue stitched;  // completed_single->traced: ring copy

    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      auto it = pending_.find(rid);
      if (it == pending_.end()) return;
      std::shared_ptr<PendingEntry> entry = it->second;
      switch (entry->kind) {
        case PendingEntry::Kind::kInternal:
          entry->response_line = line;
          entry->done = true;
          pending_.erase(it);
          break;
        case PendingEntry::Kind::kBroadcast: {
          if (!ensure_parsed()) {
            unparseable_victim = entry;
            pending_.erase(it);
            break;
          }
          if (w.latency != nullptr) {
            w.latency->Observe(CeilMicros(replied - entry->written));
          }
          JsonValue piece = *parsed;
          piece.Remove("id");
          entry->merged.Set(w.name, std::move(piece));
          if (--entry->awaiting == 0) {
            completed_broadcast = entry;
            pending_.erase(it);
          }
          break;
        }
        case PendingEntry::Kind::kSingle: {
          if (entry->on_replica && ensure_parsed() &&
              ReplicaRefusal(*parsed)) {
            // The replica's cache had no hit (or its snapshot predates the
            // session): retry the identical line against the primary.
            WorkerProc* primary =
                ShardWorker(core_.ShardFor(entry->dataset));
            if (primary != nullptr) {
              entry->on_replica = false;
              entry->worker = primary->name;
              entry->written = replied;  // roundtrip = the primary's leg
              retry_line = entry->request_line;
              retry_worker = primary;
              retry_entry = entry;
              break;  // keep the pending entry; response comes from primary
            }
          }
          if (w.latency != nullptr) {
            w.latency->Observe(CeilMicros(replied - entry->written));
          }
          std::string out;
          if (entry->traced) {
            // A traced response is the one relay that genuinely needs the
            // tree: the worker's span tree moves from the envelope into
            // the stitched timeline.
            if (!ensure_parsed()) {
              unparseable_victim = entry;
              pending_.erase(it);
              break;
            }
            JsonValue response = *parsed;
            if (entry->has_client_id) {
              response.Set("id", entry->client_id);
            } else {
              response.Remove("id");
            }
            JsonValue worker_tree;
            bool have_tree = false;
            if (response.Has("trace") &&
                response.at("trace").type() == JsonValue::Type::kObject) {
              worker_tree = response.at("trace");
              have_tree = true;
            }
            stitched = StitchTimeline(*entry, replied,
                                      have_tree ? &worker_tree : nullptr);
            response.Set("trace", stitched);
            response.Set("trace_id", JsonValue::String(entry->tid));
            if (!have_tree) {
              // Worker answered without a tree (e.g. a pre-dispatch
              // refusal): the timeline covers the router side only.
              response.Set("trace_partial", JsonValue::Bool(true));
            }
            out = response.Dump();
            relay_full_parse_counter_->Increment();
            // Ring first, reply second: a client that sends `trace` the
            // instant it sees this response must find the timeline there.
            // (trace_mutex_ is a leaf lock — safe under pending_mutex_.)
            PushRouterTrace(entry->op, entry->tid, stitched,
                            /*partial=*/false);
          } else if (relay_splice_ && scan.ok()) {
            out = entry->client_id_json.empty()
                      ? EraseId(line, *scan)
                      : SpliceId(line, *scan, entry->client_id_json);
            relay_spliced_counter_->Increment();
            if (verify_relay_) {
              DPX_CHECK(ensure_parsed())
                  << "verify-relay: spliced line failed the full parser";
              const std::string expect = FullParseRelay(*parsed, *entry);
              DPX_CHECK(out == expect)
                  << "relay splice diverged from the full-parse path: "
                  << out << " vs " << expect;
            }
          } else {
            if (!ensure_parsed()) {
              unparseable_victim = entry;
              pending_.erase(it);
              break;
            }
            out = FullParseRelay(*parsed, *entry);
            relay_full_parse_counter_->Increment();
          }
          Reply(entry->client, out);
          completed_single = entry;
          pending_.erase(it);
          break;
        }
      }
    }
    pending_cv_.notify_all();
    if (completed_broadcast != nullptr) {
      Reply(completed_broadcast->client,
            BroadcastResponse(*completed_broadcast).Dump());
      MaybeSlowLog(*completed_broadcast, replied);
    }
    if (completed_single != nullptr) {
      MaybeSlowLog(*completed_single, replied);
    }
    if (unparseable_victim != nullptr) {
      dropped_lines_.fetch_add(1, std::memory_order_relaxed);
      dropped_lines_counter_->Increment();
      JsonValue response = ErrorBody(
          StatusCode::kInternal,
          "worker '" + w.name + "' emitted an unparseable response line");
      if (unparseable_victim->has_client_id) {
        response.Set("id", unparseable_victim->client_id);
      }
      Reply(unparseable_victim->client, response.Dump());
      return;
    }

    if (retry_worker != nullptr && !WriteToWorker(*retry_worker, retry_line)) {
      FinishWithError(retry_entry->client,
                      retry_entry->has_client_id ? &retry_entry->client_id
                                                 : nullptr,
                      rid, "primary '" + retry_worker->name +
                               "' is down; retry once it respawns");
    }
  }

  /// A malformed worker line — unparseable JSON, or missing the string
  /// router id every forwarded request carries — means some request's
  /// response is unrecoverable: the worker consumed a request slot and
  /// produced garbage. Silently ignoring it would leave that client waiting
  /// until the worker dies. Workers answer in request order (the protocol
  /// is pipelined per worker), so the garbage overwhelmingly belongs to the
  /// oldest single-shot request the worker still owes: that request is
  /// failed with a structured Internal error and the breach is counted in
  /// dpclustx_router_dropped_lines_total (exposed via _router_status).
  void DropMalformedLine(WorkerProc& w, const std::string& line) {
    dropped_lines_.fetch_add(1, std::memory_order_relaxed);
    dropped_lines_counter_->Increment();
    std::cerr << "[router] " << w.name << " emitted a malformed line ("
              << line.size() << " bytes); failing its oldest pending"
              << " request\n";
    std::string rid;
    std::shared_ptr<PendingEntry> victim;
    uint64_t oldest = 0;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      for (const auto& [id, entry] : pending_) {
        if (entry->kind != PendingEntry::Kind::kSingle) continue;
        if (entry->worker != w.name) continue;
        // Single ids are "r<seq>"; the smallest sequence is the oldest.
        const uint64_t seq = std::strtoull(id.c_str() + 1, nullptr, 10);
        if (victim == nullptr || seq < oldest) {
          oldest = seq;
          rid = id;
          victim = entry;
        }
      }
      if (victim != nullptr) pending_.erase(rid);
    }
    if (victim == nullptr) return;  // a stray; nothing was waiting on it
    pending_cv_.notify_all();
    JsonValue response = ErrorBody(
        StatusCode::kInternal,
        "worker '" + w.name +
            "' emitted a malformed response line; the request was consumed "
            "but its response is unrecoverable — retry");
    if (victim->has_client_id) response.Set("id", victim->client_id);
    Reply(victim->client, response.Dump());
  }

  /// True when a worker response is the read-only / unknown-state refusal a
  /// replica emits on a cache miss — the signal to fall back to the primary.
  static bool ReplicaRefusal(const JsonValue& response) {
    if (!response.Has("ok") ||
        response.at("ok").type() != JsonValue::Type::kBool ||
        response.at("ok").AsBool()) {
      return false;
    }
    if (!response.Has("error") ||
        response.at("error").type() != JsonValue::Type::kObject) {
      return false;
    }
    const JsonValue& error = response.at("error");
    if (!error.Has("code") ||
        error.at("code").type() != JsonValue::Type::kString) {
      return false;
    }
    const std::string& code = error.at("code").AsString();
    return code == StatusCodeName(StatusCode::kFailedPrecondition) ||
           code == StatusCodeName(StatusCode::kNotFound);
  }

  /// Resolves (erases) a pending id with a router-generated error.
  void FinishWithError(ConnId conn, const JsonValue* client_id,
                       const std::string& rid, const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.erase(rid);
    }
    JsonValue response = ErrorBody(StatusCode::kInternal, message);
    if (client_id != nullptr) response.Set("id", *client_id);
    Reply(conn, response.Dump());
  }

  /// Called when `worker` died: every request it still owed is either
  /// retried (replica reads move to the primary) or failed with a retryable
  /// error. The worker's own snapshot+journal restore makes the retry safe:
  /// a charge that reached the journal is restored, its response re-served
  /// from the cache for zero ε.
  void FailWorkerPending(const std::string& worker) {
    struct Retry {
      std::string line;
      WorkerProc* target;
      std::string rid;
      std::shared_ptr<PendingEntry> entry;
    };
    const auto now = std::chrono::steady_clock::now();
    std::vector<Retry> retries;
    std::vector<std::pair<ConnId, std::string>> failed_lines;
    std::vector<std::shared_ptr<PendingEntry>> completed_broadcasts;
    std::vector<std::shared_ptr<PendingEntry>> failed_entries;  // slow log
    // Traced requests the dead worker owed: their error responses carry
    // the router-side spans and land in the trace ring marked partial.
    std::vector<std::pair<std::shared_ptr<PendingEntry>, JsonValue>>
        partial_traces;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      for (auto it = pending_.begin(); it != pending_.end();) {
        std::shared_ptr<PendingEntry> entry = it->second;
        if (entry->kind == PendingEntry::Kind::kBroadcast) {
          // Broadcasts owe one slot per shard; a dead shard contributes an
          // error object instead of blocking the merge forever. The
          // merged.Has check keeps this idempotent if the death is
          // reported twice. The response itself is built after the lock:
          // the metrics rollup reads the registry, whose callbacks take
          // pending_mutex_.
          if (!entry->merged.Has(worker) && entry->awaiting > 0) {
            entry->merged.Set(
                worker, ErrorBody(StatusCode::kInternal,
                                  "worker died before responding"));
            if (--entry->awaiting == 0) {
              completed_broadcasts.push_back(entry);
              it = pending_.erase(it);
              continue;
            }
          }
          ++it;
          continue;
        }
        if (entry->worker != worker) {
          ++it;
          continue;
        }
        if (entry->kind == PendingEntry::Kind::kInternal) {
          entry->done = true;  // empty response_line signals failure
          it = pending_.erase(it);
          continue;
        }
        if (entry->on_replica) {
          WorkerProc* primary = ShardWorker(core_.ShardFor(entry->dataset));
          if (primary != nullptr) {
            entry->on_replica = false;
            entry->worker = primary->name;
            entry->written = now;  // roundtrip = the primary's leg
            retries.push_back({entry->request_line, primary, it->first, entry});
            ++it;
            continue;
          }
        }
        JsonValue response = ErrorBody(
            StatusCode::kInternal,
            "worker '" + worker +
                "' died mid-request; it will be respawned and restored "
                "from its snapshot and audit journal — retry (a charge "
                "that was journaled re-serves from the cache for zero "
                "ε)");
        if (entry->traced) {
          // No hang, no garbled splice: the client still gets a timeline —
          // the router-side spans, honestly marked partial (the worker's
          // subtree died with the worker).
          JsonValue partial = StitchTimeline(*entry, now, nullptr);
          response.Set("trace", partial);
          response.Set("trace_id", JsonValue::String(entry->tid));
          response.Set("trace_partial", JsonValue::Bool(true));
          partial_traces.emplace_back(entry, std::move(partial));
        }
        if (entry->has_client_id) response.Set("id", entry->client_id);
        failed_lines.emplace_back(entry->client, response.Dump());
        failed_entries.push_back(entry);
        it = pending_.erase(it);
      }
    }
    pending_cv_.notify_all();
    // Ring before replies, for the same reason as the completion path: a
    // client must find its partial timeline the instant the error lands.
    for (auto& [entry, partial] : partial_traces) {
      PushRouterTrace(entry->op, entry->tid, std::move(partial),
                      /*partial=*/true);
    }
    for (const auto& [conn, line] : failed_lines) Reply(conn, line);
    for (auto& entry : completed_broadcasts) {
      Reply(entry->client, BroadcastResponse(*entry).Dump());
      MaybeSlowLog(*entry, now);
    }
    for (auto& entry : failed_entries) MaybeSlowLog(*entry, now);
    for (Retry& retry : retries) {
      if (!WriteToWorker(*retry.target, retry.line)) {
        FinishWithError(retry.entry->client,
                        retry.entry->has_client_id ? &retry.entry->client_id
                                                   : nullptr,
                        retry.rid,
                        "primary '" + retry.target->name +
                            "' is down; retry once it respawns");
      }
    }
  }

  // ---- health + respawn ----------------------------------------------

  void HealthLoop() {
    std::unique_lock<std::mutex> lock(health_mutex_);
    while (!shutting_down_) {
      health_cv_.wait_for(lock,
                          std::chrono::milliseconds(health_interval_ms_),
                          [this] { return shutting_down_.load(); });
      if (shutting_down_) return;
      lock.unlock();
      for (auto& w : workers_) {
        if (shutting_down_) break;
        if (!w->alive.load()) {
          RespawnCrashed(*w);
          continue;
        }
        if (PingWorker(*w)) {
          w->misses = 0;
        } else if (++w->misses >= health_misses_) {
          std::cerr << "[router] " << w->name << " missed " << w->misses
                    << " health checks; killing\n";
          ::kill(w->pid, SIGKILL);
          ::waitpid(w->pid, nullptr, 0);
          w->pid = -1;
          // The reader thread sees EOF, marks it dead, and fails its
          // pending work; the next health tick respawns it.
        }
      }
      lock.lock();
    }
  }

  /// One ping round-trip with a deadline. True on a timely response.
  bool PingWorker(WorkerProc& w) {
    const std::string rid = "hc-" + std::to_string(next_id_.fetch_add(1));
    auto entry = std::make_shared<PendingEntry>();
    entry->kind = PendingEntry::Kind::kInternal;
    entry->worker = w.name;
    entry->enqueued = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_[rid] = entry;
    }
    JsonValue ping = JsonValue::Object();
    ping.Set("op", JsonValue::String("ping"));
    ping.Set("id", JsonValue::String(rid));
    if (!WriteToWorker(w, ping.Dump())) {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.erase(rid);
      return false;
    }
    std::unique_lock<std::mutex> lock(pending_mutex_);
    const bool responded = pending_cv_.wait_for(
        lock, std::chrono::milliseconds(health_deadline_ms_),
        [&entry] { return entry->done; });
    pending_.erase(rid);
    return responded && !entry->response_line.empty();
  }

  void RespawnCrashed(WorkerProc& w) {
    std::lock_guard<std::mutex> lock(restart_mutex_);
    if (w.alive.load()) return;  // raced with another respawn
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
    {
      std::lock_guard<std::mutex> wlock(w.write_mutex);
      if (w.stdin_fd >= 0) {
        ::close(w.stdin_fd);
        w.stdin_fd = -1;
      }
    }
    if (w.reader.joinable()) w.reader.join();
    const uint64_t attempt = w.restarts.fetch_add(1) + 1;
    w.restarts_counter->Increment();
    // Jittered so N workers felled by a common cause (bad snapshot, OOM
    // sweep) fan back in over a window instead of re-stampeding in
    // lockstep. rng is guarded by restart_mutex_, held here.
    const int64_t delay = backoff_.JitteredDelayMs(
        attempt, std::uniform_real_distribution<double>(0.0, 1.0)(
                     respawn_rng_));
    w.backoff_gauge->Set(delay);
    std::cerr << "[router] respawning " << w.name << " (attempt " << attempt
              << ", backoff " << delay << "ms)\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    Spawn(w);
  }

  /// Kill + respawn without counting it as a crash and without backoff —
  /// used to refresh replicas from a newly saved shard snapshot.
  void RespawnDeliberately(WorkerProc& w) {
    std::lock_guard<std::mutex> lock(restart_mutex_);
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
    w.alive.store(false);
    {
      std::lock_guard<std::mutex> wlock(w.write_mutex);
      if (w.stdin_fd >= 0) {
        ::close(w.stdin_fd);
        w.stdin_fd = -1;
      }
    }
    if (w.reader.joinable()) w.reader.join();
    Spawn(w);
  }

  // ---- request handling ----------------------------------------------

  /// Receive-side timings carried into the pending entry so traced
  /// requests can render them as spans and the slow log can anchor on the
  /// true receive time.
  struct RequestTiming {
    std::chrono::steady_clock::time_point received;
    uint64_t parse_micros = 0;
    uint64_t route_micros = 0;
  };

  void HandleClientLine(ConnId conn, const std::string& line) {
    RequestTiming timing;
    timing.received = std::chrono::steady_clock::now();
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    timing.parse_micros =
        CeilMicros(std::chrono::steady_clock::now() - timing.received);
    if (!parsed.ok() || parsed->type() != JsonValue::Type::kObject) {
      RespondError(conn, StatusCode::kInvalidArgument,
                   "request is not a JSON object: " +
                       parsed.status().message(),
                   false, JsonValue::Null());
      return;
    }
    const bool has_id = parsed->Has("id");
    const JsonValue client_id = has_id ? parsed->at("id") : JsonValue::Null();

    // Shed: a socket client whose response backlog has passed the hard cap
    // gets a back-off hint instead of more queued work. (The transport
    // already paused its reads at the soft limit; reaching the hard cap
    // means responses are piling up faster than the client drains them —
    // e.g. broadcast fan-in responses racing a stalled reader.)
    if (conn != kStdioConn &&
        transport_->QueuedBytes(conn) >
            transport_->options().write_hard_limit_bytes) {
      shed_requests_counter_->Increment();
      RespondError(conn, StatusCode::kResourceExhausted,
                   "client response backlog exceeds the hard write limit; "
                   "drain responses before sending more requests",
                   has_id, client_id, retry_after_ms_);
      return;
    }

    std::string op;
    if (parsed->Has("op") &&
        parsed->at("op").type() == JsonValue::Type::kString) {
      op = parsed->at("op").AsString();
      if (op == "_router_status") {
        RespondStatus(conn, has_id, client_id);
        return;
      }
      if (op == "_router_sync_replicas") {
        SyncReplicas(conn, has_id, client_id);
        return;
      }
      // Intercepted like _router_status, BEFORE Classify (which would
      // broadcast it): at the router, `trace` means the fleet view — the
      // ring of stitched end-to-end timelines. A worker's own ring stays
      // reachable through its --worker-listen-base port.
      if (op == "trace") {
        RespondTraces(conn, *parsed, has_id, client_id);
        return;
      }
    }

    const auto route_start = std::chrono::steady_clock::now();
    StatusOr<RouteDecision> decision = core_.Classify(*parsed);
    timing.route_micros =
        CeilMicros(std::chrono::steady_clock::now() - route_start);
    if (!decision.ok()) {
      RespondError(conn, decision.status().code(),
                   decision.status().message(), has_id, client_id);
      return;
    }

    switch (decision->kind) {
      case RouteKind::kRefused:
        RespondError(
            conn, StatusCode::kFailedPrecondition,
            "the router manages snapshots: each shard saves to its own file "
            "under --state-dir (use _router_sync_replicas to refresh "
            "replicas)",
            has_id, client_id);
        return;
      case RouteKind::kBroadcast:
        ForwardBroadcast(conn, *parsed, has_id, client_id, op, timing);
        return;
      case RouteKind::kShard:
      case RouteKind::kReplicaRead:
      case RouteKind::kUnknownOp:
        ForwardSingle(conn, *parsed, *decision, has_id, client_id, op,
                      timing);
        return;
    }
  }

  void ForwardSingle(ConnId conn, JsonValue request,
                     const RouteDecision& decision, bool has_id,
                     const JsonValue& client_id, const std::string& op,
                     const RequestTiming& timing) {
    WorkerProc* primary = nullptr;
    if (decision.kind == RouteKind::kUnknownOp) {
      // Forwarded so the engine produces its canonical unknown-op error.
      primary = workers_[0].get();
    } else {
      primary = ShardWorker(core_.ShardFor(decision.dataset));
    }
    DPX_CHECK(primary != nullptr);

    WorkerProc* target = primary;
    bool on_replica = false;
    if (decision.kind == RouteKind::kReplicaRead) {
      WorkerProc* replica = PickReplica(primary->shard);
      if (replica != nullptr) {
        target = replica;
        on_replica = true;
      }
    }

    const uint64_t seq = next_id_.fetch_add(1);
    const std::string rid = "r" + std::to_string(seq);
    request.Set("id", JsonValue::String(rid));
    std::string forwarded = request.Dump();

    // Cross-process trace propagation: a traced request gets its context
    // spliced into the already-dumped line — zero reparse, same byte-splice
    // contract as the response id rewrite. pid/tid is Dump-canonical
    // ("pid" < "tid", compact), so whenever the splice is accepted the
    // line is byte-identical to parse→Set("_tc")→Dump (--verify-relay
    // cross-checks). A refused splice (a top-level key sorting before
    // "_tc") falls back to the full-parse path, never to silence.
    const bool traced = request.Has("trace") &&
                        request.at("trace").type() == JsonValue::Type::kBool &&
                        request.at("trace").AsBool();
    std::string tid;
    uint64_t splice_micros = 0;
    if (traced) {
      tid = "t" + std::to_string(seq);
      const std::string tc_json =
          "{\"pid\":\"" + rid + "\",\"tid\":\"" + tid + "\"}";
      const auto splice_start = std::chrono::steady_clock::now();
      StatusOr<std::string> spliced = SpliceTraceContext(forwarded, tc_json);
      if (spliced.ok()) {
        if (verify_relay_) {
          StatusOr<JsonValue> tc = JsonValue::Parse(tc_json);
          DPX_CHECK(tc.ok());
          JsonValue check = request;
          check.Set("_tc", std::move(*tc));
          DPX_CHECK(*spliced == check.Dump())
              << "trace-context splice diverged from the full-parse path: "
              << *spliced << " vs " << check.Dump();
        }
        forwarded = std::move(*spliced);
        tc_spliced_counter_->Increment();
      } else {
        StatusOr<JsonValue> tc = JsonValue::Parse(tc_json);
        DPX_CHECK(tc.ok());
        request.Set("_tc", std::move(*tc));
        forwarded = request.Dump();
        tc_full_parse_counter_->Increment();
      }
      splice_micros =
          CeilMicros(std::chrono::steady_clock::now() - splice_start);
    }

    auto entry = std::make_shared<PendingEntry>();
    entry->kind = PendingEntry::Kind::kSingle;
    entry->client = conn;
    entry->has_client_id = has_id;
    entry->client_id = client_id;
    // Serialized once here so the splice relay does zero JSON work when
    // the worker's response comes back.
    if (has_id) entry->client_id_json = client_id.Dump();
    entry->enqueued = timing.received;
    entry->op = op;
    entry->traced = traced;
    entry->tid = tid;
    entry->parse_micros = timing.parse_micros;
    entry->route_micros = timing.route_micros;
    entry->splice_micros = splice_micros;
    entry->worker = target->name;
    entry->request_line = forwarded;
    entry->dataset = decision.dataset;
    entry->on_replica = on_replica;
    entry->written = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_[rid] = entry;
    }

    if (WriteToWorker(*target, forwarded)) return;
    if (on_replica && WriteToWorker(*primary, forwarded)) {
      // Replica pipe was gone; the primary took it directly.
      std::lock_guard<std::mutex> lock(pending_mutex_);
      entry->on_replica = false;
      entry->worker = primary->name;
      entry->written = std::chrono::steady_clock::now();
      return;
    }
    FinishWithError(conn, has_id ? &client_id : nullptr, rid,
                    "worker '" + primary->name +
                        "' is down; retry once it respawns");
  }

  void ForwardBroadcast(ConnId conn, JsonValue request, bool has_id,
                        const JsonValue& client_id, const std::string& op,
                        const RequestTiming& timing) {
    std::vector<WorkerProc*> shards;
    for (auto& w : workers_) {
      if (!w->replica) shards.push_back(w.get());
    }
    const std::string rid = "r" + std::to_string(next_id_.fetch_add(1));
    request.Set("id", JsonValue::String(rid));
    const std::string forwarded = request.Dump();

    auto entry = std::make_shared<PendingEntry>();
    entry->kind = PendingEntry::Kind::kBroadcast;
    entry->client = conn;
    entry->has_client_id = has_id;
    entry->client_id = client_id;
    entry->enqueued = timing.received;
    entry->op = op;
    entry->awaiting = shards.size();
    entry->written = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_[rid] = entry;
    }
    std::shared_ptr<PendingEntry> completed;
    for (WorkerProc* shard : shards) {
      if (WriteToWorker(*shard, forwarded)) continue;
      std::lock_guard<std::mutex> lock(pending_mutex_);
      if (pending_.count(rid) == 0) continue;
      entry->merged.Set(shard->name,
                        ErrorBody(StatusCode::kInternal,
                                  "worker is down; respawn pending"));
      if (--entry->awaiting == 0) {
        completed = entry;
        pending_.erase(rid);
      }
    }
    // Outside pending_mutex_: the metrics rollup reads the registry, whose
    // exposition callbacks take pending_mutex_ (see
    // RegisterWorkerInstruments).
    if (completed != nullptr) {
      Reply(conn, BroadcastResponse(*completed).Dump());
    }
  }

  /// The completed-broadcast response: per-worker pieces under "workers",
  /// and for `metrics` additionally the labeled "fleet" rollup. NEVER call
  /// under pending_mutex_ (FleetRollup reads the registry, whose callbacks
  /// take pending_mutex_).
  JsonValue BroadcastResponse(const PendingEntry& entry) {
    JsonValue response = JsonValue::Object();
    response.Set("ok", JsonValue::Bool(true));
    if (entry.op == "metrics") {
      response.Set("fleet", FleetRollup(entry.merged));
    }
    response.Set("workers", entry.merged);
    if (entry.has_client_id) response.Set("id", entry.client_id);
    return response;
  }

  /// Folds every worker's metrics JSON into one registry-shaped document
  /// ({"counters","gauges","histograms"}) with worker="<name>" injected
  /// into each key, seeded with the router's own registry (which already
  /// carries its per-worker labeled series) — a fleet rollup instead of a
  /// concatenation of per-worker dumps.
  JsonValue FleetRollup(const JsonValue& merged) {
    JsonValue rollup = dpclustx::obs::MetricsRegistry::Default().ToJson();
    for (const std::string& worker : merged.ObjectKeys()) {
      const JsonValue& piece = merged.at(worker);
      if (piece.type() != JsonValue::Type::kObject ||
          !piece.Has("metrics") ||
          piece.at("metrics").type() != JsonValue::Type::kObject) {
        continue;  // dead worker (error object) or format:"prometheus"
      }
      const JsonValue& metrics = piece.at("metrics");
      for (const char* section : {"counters", "gauges", "histograms"}) {
        if (!metrics.Has(section) ||
            metrics.at(section).type() != JsonValue::Type::kObject) {
          continue;
        }
        if (!rollup.Has(section)) rollup.Set(section, JsonValue::Object());
        JsonValue merged_section = rollup.at(section);
        const JsonValue& worker_section = metrics.at(section);
        for (const std::string& key : worker_section.ObjectKeys()) {
          merged_section.Set(InjectWorkerLabel(key, worker),
                             worker_section.at(key));
        }
        rollup.Set(section, std::move(merged_section));
      }
    }
    return rollup;
  }

  /// Appends a finished stitched timeline to the bounded router trace
  /// ring. Evictions are counted, never silent
  /// (dpclustx_router_trace_dropped_total).
  void PushRouterTrace(const std::string& op, const std::string& tid,
                       JsonValue trace, bool partial) {
    JsonValue record = JsonValue::Object();
    record.Set("op", JsonValue::String(op));
    record.Set("tid", JsonValue::String(tid));
    if (partial) record.Set("partial", JsonValue::Bool(true));
    record.Set("trace", std::move(trace));
    std::lock_guard<std::mutex> lock(trace_mutex_);
    while (trace_ring_.size() >= kTraceRingCapacity) {
      trace_ring_.pop_front();
      trace_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    trace_ring_.push_back(std::move(record));
  }

  /// The router-level `trace` op: the ring of stitched end-to-end
  /// timelines, oldest first, mirroring the engine's trace-op envelope
  /// (traces / ring_capacity / retained / dropped; "limit" keeps the
  /// newest N).
  void RespondTraces(ConnId conn, const JsonValue& request, bool has_id,
                     const JsonValue& client_id) {
    size_t limit = 0;
    if (request.Has("limit") &&
        request.at("limit").type() == JsonValue::Type::kNumber &&
        request.at("limit").AsNumber() > 0) {
      limit = static_cast<size_t>(request.at("limit").AsNumber());
    }
    JsonValue traces = JsonValue::Array();
    size_t retained = 0;
    {
      std::lock_guard<std::mutex> lock(trace_mutex_);
      retained = trace_ring_.size();
      size_t start = 0;
      if (limit != 0 && trace_ring_.size() > limit) {
        start = trace_ring_.size() - limit;
      }
      for (size_t i = start; i < trace_ring_.size(); ++i) {
        traces.Append(trace_ring_[i]);
      }
    }
    JsonValue response = JsonValue::Object();
    response.Set("ok", JsonValue::Bool(true));
    response.Set("traces", std::move(traces));
    response.Set("ring_capacity",
                 JsonValue::Number(static_cast<double>(kTraceRingCapacity)));
    response.Set("retained", JsonValue::Number(static_cast<double>(retained)));
    response.Set("dropped",
                 JsonValue::Number(static_cast<double>(
                     trace_dropped_.load(std::memory_order_relaxed))));
    if (has_id) response.Set("id", client_id);
    Reply(conn, response.Dump());
  }

  /// One structured line to stderr when a finished (or failed) request
  /// took longer than --slow-request-ms — machine-parseable, and carrying
  /// the trace id when the request was traced so the operator can pull
  /// the matching stitched timeline from the ring.
  void MaybeSlowLog(const PendingEntry& entry,
                    std::chrono::steady_clock::time_point finished) {
    if (slow_request_ms_ <= 0) return;
    const int64_t elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            finished - entry.enqueued)
            .count();
    if (elapsed_ms < slow_request_ms_) return;
    JsonValue record = JsonValue::Object();
    record.Set("event", JsonValue::String("slow_request"));
    record.Set("op", JsonValue::String(entry.op));
    if (!entry.worker.empty()) {
      record.Set("worker", JsonValue::String(entry.worker));
    }
    if (!entry.tid.empty()) {
      record.Set("tid", JsonValue::String(entry.tid));
    }
    record.Set("elapsed_ms",
               JsonValue::Number(static_cast<double>(elapsed_ms)));
    record.Set("threshold_ms",
               JsonValue::Number(static_cast<double>(slow_request_ms_)));
    std::cerr << "[router] " << record.Dump() << "\n";
  }

  void RespondStatus(ConnId conn, bool has_id, const JsonValue& client_id) {
    // Per-worker pending depth + oldest-pending age: a wedged worker shows
    // up here as a growing queue and a climbing age long before the health
    // ping gives up on it. Broadcast entries are owed by several workers at
    // once and are reported in the top-level "pending_broadcasts" instead.
    struct PendingStat {
      size_t depth = 0;
      std::chrono::steady_clock::time_point oldest;
    };
    std::map<std::string, PendingStat> per_worker;
    size_t pending_broadcasts = 0;
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      for (const auto& [id, entry] : pending_) {
        if (entry->kind == PendingEntry::Kind::kBroadcast) {
          ++pending_broadcasts;
          continue;
        }
        PendingStat& stat = per_worker[entry->worker];
        if (stat.depth == 0 || entry->enqueued < stat.oldest) {
          stat.oldest = entry->enqueued;
        }
        ++stat.depth;
      }
    }

    JsonValue workers = JsonValue::Array();
    for (auto& w : workers_) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", JsonValue::String(w->name));
      entry.Set("role", JsonValue::String(w->replica ? "replica" : "shard"));
      entry.Set("shard", JsonValue::Number(static_cast<double>(w->shard)));
      entry.Set("alive", JsonValue::Bool(w->alive.load()));
      entry.Set("pid", JsonValue::Number(static_cast<double>(w->pid)));
      entry.Set("restarts",
                JsonValue::Number(static_cast<double>(w->restarts.load())));
      const auto stat_it = per_worker.find(w->name);
      const size_t depth =
          stat_it == per_worker.end() ? 0 : stat_it->second.depth;
      const double oldest_ms =
          depth == 0
              ? 0.0
              : static_cast<double>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - stat_it->second.oldest)
                        .count());
      entry.Set("pending", JsonValue::Number(static_cast<double>(depth)));
      entry.Set("oldest_pending_ms", JsonValue::Number(oldest_ms));
      workers.Append(std::move(entry));
    }
    JsonValue response = JsonValue::Object();
    response.Set("pending_broadcasts",
                 JsonValue::Number(static_cast<double>(pending_broadcasts)));
    if (transport_ != nullptr) {
      JsonValue transport = JsonValue::Object();
      transport.Set("active_connections",
                    JsonValue::Number(static_cast<double>(
                        transport_->ActiveConnections())));
      response.Set("transport", std::move(transport));
    }
    response.Set("ok", JsonValue::Bool(true));
    response.Set("workers", std::move(workers));
    response.Set("shards", JsonValue::Number(static_cast<double>(num_shards_)));
    response.Set("bound_sessions",
                 JsonValue::Number(
                     static_cast<double>(core_.sessions().size())));
    response.Set("state_dir", JsonValue::String(state_dir_));
    response.Set("dropped_lines_total",
                 JsonValue::Number(static_cast<double>(
                     dropped_lines_.load(std::memory_order_relaxed))));
    if (has_id) response.Set("id", client_id);
    Reply(conn, response.Dump());
  }

  /// save_snapshot on every shard (synchronously, so the files are complete
  /// before any replica reads them), then respawn every replica from the
  /// fresh snapshots. Deterministic replica refresh for tests and benches.
  void SyncReplicas(ConnId conn, bool has_id, const JsonValue& client_id) {
    size_t saved = 0;
    for (size_t i = 0; i < num_shards_; ++i) {
      WorkerProc* shard = workers_[i].get();
      if (!shard->alive.load()) continue;
      const std::string rid = "hc-" + std::to_string(next_id_.fetch_add(1));
      auto entry = std::make_shared<PendingEntry>();
      entry->kind = PendingEntry::Kind::kInternal;
      entry->worker = shard->name;
      entry->enqueued = std::chrono::steady_clock::now();
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_[rid] = entry;
      }
      JsonValue save = JsonValue::Object();
      save.Set("op", JsonValue::String("save_snapshot"));
      save.Set("path", JsonValue::String(SnapshotPath(i)));
      save.Set("id", JsonValue::String(rid));
      if (!WriteToWorker(*shard, save.Dump())) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.erase(rid);
        continue;
      }
      std::unique_lock<std::mutex> lock(pending_mutex_);
      const bool responded =
          pending_cv_.wait_for(lock, std::chrono::milliseconds(10000),
                               [&entry] { return entry->done; });
      pending_.erase(rid);
      if (responded && !entry->response_line.empty()) ++saved;
    }
    size_t respawned = 0;
    for (auto& w : workers_) {
      if (!w->replica) continue;
      RespawnDeliberately(*w);
      ++respawned;
    }
    JsonValue response = JsonValue::Object();
    response.Set("ok", JsonValue::Bool(true));
    response.Set("synced_shards", JsonValue::Number(static_cast<double>(saved)));
    response.Set("respawned_replicas",
                 JsonValue::Number(static_cast<double>(respawned)));
    if (has_id) response.Set("id", client_id);
    Reply(conn, response.Dump());
  }

  RouterCore core_;
  std::string serve_bin_;
  std::string state_dir_;
  size_t num_shards_ = 0;
  std::vector<std::unique_ptr<WorkerProc>> workers_;  // shards first

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::map<std::string, std::shared_ptr<PendingEntry>> pending_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> replica_rr_{0};

  Backoff backoff_;
  std::mutex restart_mutex_;
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  std::atomic<bool> shutting_down_{false};
  std::thread health_thread_;
  int64_t health_interval_ms_;
  int64_t health_deadline_ms_;
  int health_misses_;

  // Malformed worker output lines. The atomic feeds _router_status; the
  // registry counter keeps the metric name dpclustx_router_dropped_lines_total
  // in the process registry alongside every other instrument.
  std::atomic<uint64_t> dropped_lines_{0};
  dpclustx::obs::Counter* dropped_lines_counter_;
  dpclustx::obs::Counter* relay_spliced_counter_;
  dpclustx::obs::Counter* relay_full_parse_counter_;
  dpclustx::obs::Counter* shed_requests_counter_;
  dpclustx::obs::Counter* tc_spliced_counter_;
  dpclustx::obs::Counter* tc_full_parse_counter_;

  // Stitched end-to-end timelines, bounded like the engine's trace ring;
  // served by the router-level `trace` op. trace_mutex_ is a leaf lock.
  static constexpr size_t kTraceRingCapacity = 64;
  std::mutex trace_mutex_;
  std::deque<JsonValue> trace_ring_;
  std::atomic<uint64_t> trace_dropped_{0};
  int64_t slow_request_ms_ = 0;

  // Socket front door; null in stdin-only mode.
  std::unique_ptr<Transport> transport_;
  int64_t retry_after_ms_ = 100;
  bool relay_splice_ = true;
  bool verify_relay_ = false;
  std::mt19937_64 respawn_rng_{std::random_device{}()};  // restart_mutex_
};

std::string DefaultServeBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "dpclustx_serve";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "dpclustx_serve";
  return path.substr(0, slash) + "/dpclustx_serve";
}

bool ParseSizeFlag(int argc, char** argv, int* i, const char* name,
                   size_t* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = static_cast<size_t>(std::stoull(argv[++*i]));
  return true;
}

bool ParseStringFlag(int argc, char** argv, int* i, const char* name,
                     std::string* out) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_workers = 2;
  size_t replicas = 0;
  size_t vnodes = 64;
  size_t health_interval_ms = 1000;
  size_t health_deadline_ms = 2000;
  size_t health_misses = 3;
  std::string serve_bin = DefaultServeBinary();
  std::string state_dir = ".";
  std::string relay_mode = "splice";
  bool verify_relay = false;
  std::vector<std::string> listen_specs;
  dpclustx::service::TransportOptions transport_options;
  size_t max_frame_bytes = transport_options.max_frame_bytes;
  size_t write_soft_limit = transport_options.write_soft_limit_bytes;
  size_t write_hard_limit = transport_options.write_hard_limit_bytes;
  size_t retry_after_ms = 100;
  size_t slow_request_ms = 0;
  size_t worker_listen_base = 0;
  std::vector<std::string> worker_extra_args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      for (int j = i + 1; j < argc; ++j) worker_extra_args.push_back(argv[j]);
      break;
    }
    std::string listen_spec;
    if (ParseStringFlag(argc, argv, &i, "--listen", &listen_spec)) {
      listen_specs.push_back(listen_spec);
      continue;
    }
    if (std::strcmp(argv[i], "--verify-relay") == 0) {
      verify_relay = true;
      continue;
    }
    if (ParseSizeFlag(argc, argv, &i, "--workers", &num_workers) ||
        ParseSizeFlag(argc, argv, &i, "--replicas", &replicas) ||
        ParseSizeFlag(argc, argv, &i, "--vnodes", &vnodes) ||
        ParseSizeFlag(argc, argv, &i, "--health-interval-ms",
                      &health_interval_ms) ||
        ParseSizeFlag(argc, argv, &i, "--health-deadline-ms",
                      &health_deadline_ms) ||
        ParseSizeFlag(argc, argv, &i, "--health-misses", &health_misses) ||
        ParseSizeFlag(argc, argv, &i, "--max-frame-bytes", &max_frame_bytes) ||
        ParseSizeFlag(argc, argv, &i, "--write-soft-limit-bytes",
                      &write_soft_limit) ||
        ParseSizeFlag(argc, argv, &i, "--write-hard-limit-bytes",
                      &write_hard_limit) ||
        ParseSizeFlag(argc, argv, &i, "--retry-after-ms", &retry_after_ms) ||
        ParseSizeFlag(argc, argv, &i, "--slow-request-ms", &slow_request_ms) ||
        ParseSizeFlag(argc, argv, &i, "--worker-listen-base",
                      &worker_listen_base) ||
        ParseStringFlag(argc, argv, &i, "--serve", &serve_bin) ||
        ParseStringFlag(argc, argv, &i, "--relay", &relay_mode) ||
        ParseStringFlag(argc, argv, &i, "--state-dir", &state_dir)) {
      continue;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::cout << dpclustx::obs::BuildInfoVersionLine() << "\n";
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << kUsage;
      return 0;
    }
    std::cerr << "unknown flag '" << argv[i] << "'\n" << kUsage;
    return 2;
  }
  if (num_workers == 0) {
    std::cerr << "--workers must be at least 1\n";
    return 2;
  }
  if (vnodes == 0) vnodes = 1;
  if (relay_mode != "splice" && relay_mode != "full") {
    std::cerr << "--relay must be 'splice' or 'full'\n";
    return 2;
  }
  transport_options.max_frame_bytes = max_frame_bytes;
  transport_options.write_soft_limit_bytes = write_soft_limit;
  transport_options.write_hard_limit_bytes = write_hard_limit;
  if (transport_options.write_soft_limit_bytes >
      transport_options.write_hard_limit_bytes) {
    std::cerr << "--write-soft-limit-bytes must not exceed "
                 "--write-hard-limit-bytes\n";
    return 2;
  }

  // A worker dying while we write to its pipe must surface as EPIPE (we
  // respawn it), not kill the router. Socket clients disconnecting
  // mid-response are the same story.
  ::signal(SIGPIPE, SIG_IGN);

  if (worker_listen_base > 65535) {
    std::cerr << "--worker-listen-base must be a port (<= 65535)\n";
    return 2;
  }
  Router router(serve_bin, state_dir, num_workers, replicas, vnodes,
                static_cast<int64_t>(health_interval_ms),
                static_cast<int64_t>(health_deadline_ms),
                static_cast<int>(health_misses),
                static_cast<uint16_t>(worker_listen_base),
                std::move(worker_extra_args));
  router.ConfigureRelay(relay_mode == "splice", verify_relay);
  router.ConfigureSlowLog(static_cast<int64_t>(slow_request_ms));
  router.Start();
  if (!listen_specs.empty()) {
    const dpclustx::Status started = router.StartTransport(
        listen_specs, transport_options,
        static_cast<int64_t>(retry_after_ms));
    if (!started.ok()) {
      std::cerr << "cannot listen: " << started.ToString() << "\n";
      router.Shutdown();
      return 1;
    }
  }
  // stdin stays the lifecycle handle even in socket mode: EOF here is the
  // shutdown signal (run under a supervisor, hold the pipe open).
  router.ServeStdin();
  router.Shutdown();
  return 0;
}
