// dpclustx — command-line front end for the DPClustX pipeline.
//
// Reads a CSV table (or synthesizes one), clusters it, explains the
// clusters under differential privacy, prints the explanation, and
// optionally writes the JSON payload. Run with --help for usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cluster/agglomerative.h"
#include "cluster/dp_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "core/explainer.h"
#include "core/serialization.h"
#include "eval/metrics.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "dp/privacy_budget.h"
#include "obs/build_info.h"
#include "obs/trace.h"
#include "service/transport.h"

namespace {

using namespace dpclustx;

constexpr char kUsage[] = R"(dpclustx — differentially private cluster explanations

USAGE
  dpclustx_cli [--input FILE.csv | --synthetic NAME] [OPTIONS]

DATA
  --input FILE        CSV file; the schema is inferred from the contents
                      (domains become data-dependent — prefer fixed schemas
                      for production releases)
  --synthetic NAME    built-in generator: diabetes | census | stackoverflow
  --rows N            rows for --synthetic (default 30000)

CLUSTERING
  --method NAME       k-means (default) | dp-k-means | k-modes |
                      agglomerative | gmm
  --clusters N        number of clusters (default 5)
  --epsilon-clust E   budget of dp-k-means (default 1.0)

EXPLANATION (DPClustX)
  --epsilon-candset E   Stage-1 budget (default 0.1)
  --epsilon-topcomb E   Stage-2 selection budget (default 0.1)
  --epsilon-hist E      histogram-release budget (default 0.1)
  --candidates K        Stage-1 candidate-set size (default 3)
  --stage1 NAME         topk (default) | svt
  --svt-threshold F     SVT score bar as a fraction of cluster size
                        (default 0.3)
  --lambda I,S,D        quality weights, comma separated (default
                        0.333,0.333,0.334)
  --hist-mechanism M    geometric (default) | laplace | hierarchical

SERVER
  --connect SPEC      client mode: forward JSON protocol lines from stdin
                      to a dpclustx_serve/dpclustx_router socket
                      (unix:/path or tcp:[host:]port) and print each
                      response line to stdout; exits non-zero if any
                      response is missing. All pipeline flags are ignored.
  --timeout-ms N      per-response wait in client mode (default 30000)

OUTPUT
  --output-json FILE  write the explanation JSON payload
  --report            print a per-cluster quality breakdown (computed from
                      EXACT counts — for evaluation on non-sensitive data)
  --seed N            mechanism seed (default 1)
  --trace             print a span-tree timing breakdown of the run to
                      stderr (clustering fit, stats build, Stage-1,
                      Stage-2; timings only, never data values)
  --quiet             suppress the rendered histograms
  --version           print build provenance and exit
  --help              this message
)";

struct CliOptions {
  std::string connect;
  size_t timeout_ms = 30000;
  std::string input;
  std::string synthetic;
  size_t rows = 30000;
  std::string method = "k-means";
  size_t clusters = 5;
  double epsilon_clust = 1.0;
  DpClustXOptions explain;
  std::string output_json;
  bool quiet = false;
  bool report = false;
  bool trace = false;
};

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

double ParseDouble(const std::string& value, const std::string& flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') Fail("bad value for " + flag);
  return parsed;
}

size_t ParseSize(const std::string& value, const std::string& flag) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0) {
    Fail("bad value for " + flag);
  }
  return static_cast<size_t>(parsed);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto next_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) Fail(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--version") {
      std::puts(obs::BuildInfoVersionLine().c_str());
      std::exit(0);
    } else if (arg == "--connect") {
      options.connect = next_value(i, "--connect");
    } else if (arg == "--timeout-ms") {
      options.timeout_ms =
          ParseSize(next_value(i, "--timeout-ms"), "--timeout-ms");
    } else if (arg == "--input") {
      options.input = next_value(i, "--input");
    } else if (arg == "--synthetic") {
      options.synthetic = next_value(i, "--synthetic");
    } else if (arg == "--rows") {
      options.rows = ParseSize(next_value(i, "--rows"), "--rows");
    } else if (arg == "--method") {
      options.method = next_value(i, "--method");
    } else if (arg == "--clusters") {
      options.clusters =
          ParseSize(next_value(i, "--clusters"), "--clusters");
    } else if (arg == "--epsilon-clust") {
      options.epsilon_clust =
          ParseDouble(next_value(i, "--epsilon-clust"), "--epsilon-clust");
    } else if (arg == "--epsilon-candset") {
      options.explain.epsilon_cand_set = ParseDouble(
          next_value(i, "--epsilon-candset"), "--epsilon-candset");
    } else if (arg == "--epsilon-topcomb") {
      options.explain.epsilon_top_comb = ParseDouble(
          next_value(i, "--epsilon-topcomb"), "--epsilon-topcomb");
    } else if (arg == "--epsilon-hist") {
      options.explain.epsilon_hist =
          ParseDouble(next_value(i, "--epsilon-hist"), "--epsilon-hist");
    } else if (arg == "--candidates") {
      options.explain.num_candidates =
          ParseSize(next_value(i, "--candidates"), "--candidates");
    } else if (arg == "--stage1") {
      const std::string value = next_value(i, "--stage1");
      if (value == "topk") {
        options.explain.stage1 = Stage1Selector::kOneShotTopK;
      } else if (value == "svt") {
        options.explain.stage1 = Stage1Selector::kSvt;
      } else {
        Fail("unknown --stage1 '" + value + "'");
      }
    } else if (arg == "--svt-threshold") {
      options.explain.svt_threshold_fraction =
          ParseDouble(next_value(i, "--svt-threshold"), "--svt-threshold");
    } else if (arg == "--lambda") {
      const std::string value = next_value(i, "--lambda");
      double l_int = 0, l_suf = 0, l_div = 0;
      if (std::sscanf(value.c_str(), "%lf,%lf,%lf", &l_int, &l_suf,
                      &l_div) != 3) {
        Fail("--lambda expects I,S,D");
      }
      options.explain.lambda = {l_int, l_suf, l_div};
    } else if (arg == "--hist-mechanism") {
      const std::string value = next_value(i, "--hist-mechanism");
      if (value == "geometric") {
        options.explain.histogram.noise = HistogramNoise::kGeometric;
      } else if (value == "laplace") {
        options.explain.histogram.noise = HistogramNoise::kLaplace;
      } else if (value == "hierarchical") {
        options.explain.histogram.noise = HistogramNoise::kHierarchical;
      } else {
        Fail("unknown --hist-mechanism '" + value + "'");
      }
    } else if (arg == "--output-json") {
      options.output_json = next_value(i, "--output-json");
    } else if (arg == "--seed") {
      options.explain.seed = ParseSize(next_value(i, "--seed"), "--seed");
    } else if (arg == "--report") {
      options.report = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      Fail("unknown flag '" + arg + "' (see --help)");
    }
  }
  if (options.connect.empty() &&
      options.input.empty() == options.synthetic.empty()) {
    Fail("exactly one of --input / --synthetic is required (see --help)");
  }
  return options;
}

/// Client mode: stdin protocol lines → server socket → stdout responses.
/// The protocol is pipelined (responses may be out of order), but every
/// request line produces exactly one response line, so matching counts is
/// enough to know the session completed.
int RunConnectMode(const CliOptions& options) {
  auto channel = service::ClientChannel::Connect(options.connect);
  if (!channel.ok()) Fail(channel.status().ToString());

  size_t sent = 0;
  size_t received = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const Status status = (*channel)->SendLine(line);
    if (!status.ok()) Fail(status.ToString());
    ++sent;
    // Drain whatever responses are already here so a long scripted session
    // never deadlocks both sides' write buffers.
    for (;;) {
      StatusOr<std::string> response = (*channel)->RecvLine(0);
      if (!response.ok()) break;
      std::cout << *response << "\n";
      ++received;
    }
  }
  while (received < sent) {
    StatusOr<std::string> response =
        (*channel)->RecvLine(static_cast<int>(options.timeout_ms));
    if (!response.ok()) {
      std::cout.flush();
      std::fprintf(stderr,
                   "error: %s after %zu/%zu responses\n",
                   response.status().ToString().c_str(), received, sent);
      return 1;
    }
    std::cout << *response << "\n";
    ++received;
  }
  std::cout.flush();
  std::fprintf(stderr, "%zu requests, %zu responses\n", sent, received);
  return 0;
}

Dataset LoadData(const CliOptions& options) {
  if (!options.input.empty()) {
    auto dataset = ReadCsv(options.input);
    if (!dataset.ok()) Fail(dataset.status().ToString());
    return std::move(*dataset);
  }
  StatusOr<Dataset> dataset = Status::Internal("unset");
  if (options.synthetic == "diabetes") {
    dataset = synth::Generate(synth::DiabetesLike(options.rows));
  } else if (options.synthetic == "census") {
    dataset = synth::Generate(synth::CensusLike(options.rows));
  } else if (options.synthetic == "stackoverflow") {
    dataset = synth::Generate(synth::StackOverflowLike(options.rows));
  } else {
    Fail("unknown --synthetic '" + options.synthetic + "'");
  }
  if (!dataset.ok()) Fail(dataset.status().ToString());
  return std::move(*dataset);
}

std::unique_ptr<ClusteringFunction> Cluster(const CliOptions& options,
                                            const Dataset& dataset,
                                            PrivacyBudget& budget) {
  StatusOr<std::unique_ptr<ClusteringFunction>> clustering =
      Status::Internal("unset");
  if (options.method == "k-means") {
    KMeansOptions fit;
    fit.num_clusters = options.clusters;
    fit.seed = options.explain.seed;
    clustering = FitKMeans(dataset, fit);
  } else if (options.method == "dp-k-means") {
    DpKMeansOptions fit;
    fit.num_clusters = options.clusters;
    fit.epsilon = options.epsilon_clust;
    fit.seed = options.explain.seed;
    clustering = FitDpKMeans(dataset, fit, &budget);
  } else if (options.method == "k-modes") {
    KModesOptions fit;
    fit.num_clusters = options.clusters;
    fit.seed = options.explain.seed;
    clustering = FitKModes(dataset, fit);
  } else if (options.method == "agglomerative") {
    AgglomerativeOptions fit;
    fit.num_clusters = options.clusters;
    fit.seed = options.explain.seed;
    clustering = FitAgglomerative(dataset, fit);
  } else if (options.method == "gmm") {
    GmmOptions fit;
    fit.num_components = options.clusters;
    fit.seed = options.explain.seed;
    clustering = FitGmm(dataset, fit);
  } else {
    Fail("unknown --method '" + options.method + "'");
  }
  if (!clustering.ok()) Fail(clustering.status().ToString());
  return std::move(*clustering);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = ParseArgs(argc, argv);
  if (!options.connect.empty()) return RunConnectMode(options);
  const Dataset dataset = LoadData(options);
  std::fprintf(stderr, "loaded %zu rows x %zu attributes\n",
               dataset.num_rows(), dataset.num_attributes());

  const double explain_budget = options.explain.epsilon_cand_set +
                                options.explain.epsilon_top_comb +
                                options.explain.epsilon_hist;
  const double total =
      explain_budget +
      (options.method == "dp-k-means" ? options.epsilon_clust : 0.0);
  PrivacyBudget budget(total);

  obs::Trace trace("dpclustx_cli");
  std::unique_ptr<ClusteringFunction> clustering;
  StatusOr<GlobalExplanation> explanation = Status::Internal("unset");
  {
    // Spans record only when a trace is active on this thread; without
    // --trace the activation is a no-op and nothing is measured.
    obs::ScopedTraceActivation activate(options.trace ? &trace : nullptr);
    {
      DPX_SPAN("clustering_fit");
      clustering = Cluster(options, dataset, budget);
    }
    std::fprintf(stderr, "clustered with %s\n", clustering->name().c_str());
    explanation =
        ExplainDpClustX(dataset, *clustering, options.explain, &budget);
  }
  trace.Finish();
  if (options.trace) std::cerr << obs::RenderTraceText(trace.root());
  if (!explanation.ok()) Fail(explanation.status().ToString());

  if (!options.quiet) {
    std::cout << RenderGlobalExplanation(*explanation, dataset.schema());
  }
  if (options.report) {
    const std::vector<ClusterId> labels = clustering->AssignAll(dataset);
    const auto stats =
        StatsCache::Build(dataset, labels, options.clusters);
    if (stats.ok()) {
      std::cout << eval::QualityBreakdownReport(
          *stats, explanation->combination, options.explain.lambda,
          dataset.schema());
    }
  }
  std::cout << budget.Report();

  if (!options.output_json.empty()) {
    std::ofstream out(options.output_json, std::ios::binary);
    if (!out) Fail("cannot write '" + options.output_json + "'");
    out << ExplanationToJson(*explanation, dataset.schema()) << '\n';
    std::fprintf(stderr, "wrote %s\n", options.output_json.c_str());
  }
  return 0;
}
