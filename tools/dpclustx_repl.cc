// dpclustx_repl — interactive analyst console, mirroring the DPClustX
// demonstration system: load data, cluster it, run budgeted EDA queries,
// and generate DP explanations, all against one privacy-budget accountant
// that refuses work once the budget is spent.
//
// Commands (one per line; also accepted from a piped script):
//   load csv PATH            load a CSV table (schema inferred)
//   load synthetic NAME [N]  diabetes | census | stackoverflow, N rows
//   budget EPS               open a fresh accountant with total EPS
//   cluster METHOD K [EPS]   k-means | dp-k-means | k-modes |
//                            agglomerative | gmm; EPS for dp-k-means
//   explain [EPS]            run DPClustX (EPS split equally across the
//                            three stages; default 0.3)
//   hist ATTR [EPS]          noisy per-cluster histograms of ATTR
//                            (default EPS 0.02)
//   size CLUSTER [EPS]       noisy cluster size (default EPS 0.01)
//   ledger                   print the budget ledger
//   schema                   list attributes
//   help / quit

#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/agglomerative.h"
#include "cluster/dp_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "core/explainer.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "dp/eda_session.h"
#include "dp/privacy_budget.h"

namespace {

using namespace dpclustx;

class Repl {
 public:
  void Run() {
    std::cout << "dpclustx interactive console — 'help' for commands\n";
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

 private:
  void Prompt() {
    if (budget_) {
      std::cout << "[eps " << budget_->remaining_epsilon() << " left] > ";
    } else {
      std::cout << "> ";
    }
    std::cout.flush();
  }

  // Returns false to exit the loop.
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "load") {
      Load(in);
    } else if (command == "budget") {
      Budget(in);
    } else if (command == "cluster") {
      Cluster(in);
    } else if (command == "explain") {
      Explain(in);
    } else if (command == "hist") {
      Hist(in);
    } else if (command == "size") {
      Size(in);
    } else if (command == "ledger") {
      if (RequireBudget()) std::cout << budget_->Report();
    } else if (command == "schema") {
      PrintSchema();
    } else {
      std::cout << "unknown command '" << command << "' — try 'help'\n";
    }
    return true;
  }

  void Help() {
    std::cout <<
        "  load csv PATH | load synthetic NAME [N]\n"
        "  budget EPS\n"
        "  cluster METHOD K [EPS]\n"
        "  explain [EPS]\n"
        "  hist ATTR [EPS]\n"
        "  size CLUSTER [EPS]\n"
        "  ledger | schema | quit\n";
  }

  bool RequireData() {
    if (!dataset_) std::cout << "no dataset loaded — use 'load'\n";
    return dataset_.has_value();
  }
  bool RequireBudget() {
    if (!budget_) std::cout << "no budget open — use 'budget EPS'\n";
    return budget_ != nullptr;
  }
  bool RequireClustering() {
    if (labels_.empty()) std::cout << "no clustering — use 'cluster'\n";
    return !labels_.empty();
  }

  void Load(std::istringstream& in) {
    std::string kind, arg;
    in >> kind >> arg;
    StatusOr<Dataset> dataset = Status::InvalidArgument(
        "usage: load csv PATH | load synthetic NAME [N]");
    if (kind == "csv" && !arg.empty()) {
      dataset = ReadCsv(arg);
    } else if (kind == "synthetic" && !arg.empty()) {
      size_t rows = 20000;
      in >> rows;
      if (arg == "diabetes") {
        dataset = synth::Generate(synth::DiabetesLike(rows));
      } else if (arg == "census") {
        dataset = synth::Generate(synth::CensusLike(rows));
      } else if (arg == "stackoverflow") {
        dataset = synth::Generate(synth::StackOverflowLike(rows));
      } else {
        dataset = Status::InvalidArgument("unknown generator '" + arg + "'");
      }
    }
    if (!dataset.ok()) {
      std::cout << dataset.status() << "\n";
      return;
    }
    dataset_ = std::move(*dataset);
    labels_.clear();
    session_.reset();
    std::cout << "loaded " << dataset_->num_rows() << " rows x "
              << dataset_->num_attributes() << " attributes\n";
  }

  void Budget(std::istringstream& in) {
    double eps = 0.0;
    if (!(in >> eps) || eps <= 0.0) {
      std::cout << "usage: budget EPS (positive)\n";
      return;
    }
    budget_ = std::make_unique<PrivacyBudget>(eps);
    session_.reset();
    std::cout << "opened budget eps = " << eps << "\n";
  }

  void Cluster(std::istringstream& in) {
    if (!RequireData() || !RequireBudget()) return;
    std::string method;
    size_t k = 0;
    in >> method >> k;
    if (method.empty() || k == 0) {
      std::cout << "usage: cluster METHOD K [EPS]\n";
      return;
    }
    double eps = 1.0;
    in >> eps;
    StatusOr<std::unique_ptr<ClusteringFunction>> clustering =
        Status::InvalidArgument("unknown method '" + method + "'");
    if (method == "k-means") {
      KMeansOptions options;
      options.num_clusters = k;
      options.seed = seed_++;
      clustering = FitKMeans(*dataset_, options);
    } else if (method == "dp-k-means") {
      DpKMeansOptions options;
      options.num_clusters = k;
      options.epsilon = eps;
      options.seed = seed_++;
      clustering = FitDpKMeans(*dataset_, options, budget_.get());
    } else if (method == "k-modes") {
      KModesOptions options;
      options.num_clusters = k;
      options.seed = seed_++;
      clustering = FitKModes(*dataset_, options);
    } else if (method == "agglomerative") {
      AgglomerativeOptions options;
      options.num_clusters = k;
      options.seed = seed_++;
      clustering = FitAgglomerative(*dataset_, options);
    } else if (method == "gmm") {
      GmmOptions options;
      options.num_components = k;
      options.seed = seed_++;
      clustering = FitGmm(*dataset_, options);
    }
    if (!clustering.ok()) {
      std::cout << clustering.status() << "\n";
      return;
    }
    labels_.clear();
    const std::vector<ClusterId> typed = (*clustering)->AssignAll(*dataset_);
    labels_.assign(typed.begin(), typed.end());
    num_clusters_ = k;
    session_.reset();
    std::cout << "clustered with " << (*clustering)->name() << "\n";
    const std::vector<size_t> sizes = ClusterSizes(typed, k);
    for (size_t c = 0; c < sizes.size(); ++c) {
      std::cout << "  cluster " << c << ": " << sizes[c] << " rows\n";
    }
  }

  void Explain(std::istringstream& in) {
    if (!RequireData() || !RequireBudget() || !RequireClustering()) return;
    double eps = 0.3;
    in >> eps;
    DpClustXOptions options;
    options.epsilon_cand_set = eps / 3.0;
    options.epsilon_top_comb = eps / 3.0;
    options.epsilon_hist = eps / 3.0;
    options.seed = seed_++;
    const std::vector<ClusterId> typed(labels_.begin(), labels_.end());
    const auto explanation = ExplainDpClustXWithLabels(
        *dataset_, typed, num_clusters_, options, budget_.get());
    if (!explanation.ok()) {
      std::cout << explanation.status() << "\n";
      return;
    }
    std::cout << RenderGlobalExplanation(*explanation, dataset_->schema());
  }

  EdaSession* Session() {
    if (!session_) {
      auto session = EdaSession::Open(&*dataset_, labels_, num_clusters_,
                                      budget_.get(), seed_++);
      if (!session.ok()) {
        std::cout << session.status() << "\n";
        return nullptr;
      }
      session_ = std::make_unique<EdaSession>(std::move(*session));
    }
    return session_.get();
  }

  void Hist(std::istringstream& in) {
    if (!RequireData() || !RequireBudget() || !RequireClustering()) return;
    std::string attr_name;
    double eps = 0.02;
    in >> attr_name >> eps;
    const auto attr = dataset_->schema().FindAttribute(attr_name);
    if (!attr.ok()) {
      std::cout << attr.status() << "\n";
      return;
    }
    EdaSession* session = Session();
    if (session == nullptr) return;
    const auto round = session->QueryAllClusterHistograms(*attr, eps);
    if (!round.ok()) {
      std::cout << round.status() << "\n";
      return;
    }
    for (size_t c = 0; c < round->size(); ++c) {
      std::cout << "cluster " << c << ":\n"
                << (*round)[c].ToAsciiArt(
                       dataset_->schema().attribute(*attr));
    }
  }

  void Size(std::istringstream& in) {
    if (!RequireData() || !RequireBudget() || !RequireClustering()) return;
    uint32_t cluster = 0;
    double eps = 0.01;
    in >> cluster >> eps;
    EdaSession* session = Session();
    if (session == nullptr) return;
    const auto size = session->QueryClusterSize(cluster, eps);
    if (!size.ok()) {
      std::cout << size.status() << "\n";
      return;
    }
    std::cout << "noisy size of cluster " << cluster << ": " << *size
              << "\n";
  }

  void PrintSchema() {
    if (!RequireData()) return;
    for (size_t a = 0; a < dataset_->num_attributes(); ++a) {
      const Attribute& attr =
          dataset_->schema().attribute(static_cast<AttrIndex>(a));
      std::cout << "  " << attr.name() << " (" << attr.domain_size()
                << " values)\n";
    }
  }

  std::optional<Dataset> dataset_;
  std::unique_ptr<PrivacyBudget> budget_;
  std::unique_ptr<EdaSession> session_;
  std::vector<uint32_t> labels_;
  size_t num_clusters_ = 0;
  uint64_t seed_ = 1;
};

}  // namespace

int main() {
  Repl repl;
  repl.Run();
  return 0;
}
