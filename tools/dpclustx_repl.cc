// dpclustx_repl — interactive analyst console, mirroring the DPClustX
// demonstration system: load data, cluster it, run budgeted EDA queries,
// and generate DP explanations, all against one privacy-budget accountant
// that refuses work once the budget is spent.
//
// The console is a thin translator in front of the service engine
// (src/service): every command becomes the same JSON request the line
// server (tools/dpclustx_serve) accepts, so the REPL, the server, and the
// bench exercise one orchestration/privacy code path.
//
// Commands (one per line; also accepted from a piped script):
//   load csv PATH            load a CSV table (schema inferred)
//   load synthetic NAME [N]  diabetes | census | stackoverflow, N rows
//   budget EPS               open a fresh session with total EPS
//   cluster METHOD K [EPS]   k-means | dp-k-means | k-modes |
//                            agglomerative | gmm; EPS for dp-k-means
//   explain [EPS]            run DPClustX (EPS split equally across the
//                            three stages; default 0.3)
//   hist ATTR [EPS]          noisy per-cluster histograms of ATTR
//                            (default EPS 0.02)
//   size CLUSTER [EPS]       noisy cluster size (default EPS 0.01)
//   ledger                   print the budget ledger
//   schema                   list attributes
//   help / quit
//
// By default the console embeds its own service engine. With
// --connect unix:/path (or tcp:[host:]port) it instead speaks the same
// JSON protocol to a running dpclustx_serve or dpclustx_router socket, so
// an analyst console can sit on a shared, sharded deployment: one command
// in flight at a time, same transcript either way.

#include <iostream>
#include <sstream>
#include <string>

#include <cstring>
#include <memory>

#include "common/json.h"
#include "service/service_engine.h"
#include "service/transport.h"

namespace {

using dpclustx::JsonValue;
using dpclustx::Status;
using dpclustx::StatusOr;
using dpclustx::service::ClientChannel;
using dpclustx::service::ServiceEngine;

constexpr char kDataset[] = "repl";

class Repl {
 public:
  /// `connect` empty = embedded engine; otherwise a server socket spec.
  explicit Repl(const std::string& connect) {
    if (connect.empty()) {
      engine_ = std::make_unique<ServiceEngine>();
      return;
    }
    StatusOr<std::unique_ptr<ClientChannel>> channel =
        ClientChannel::Connect(connect);
    if (!channel.ok()) {
      std::cout << "cannot connect to '" << connect
                << "': " << channel.status().ToString() << "\n";
      std::exit(1);
    }
    channel_ = std::move(*channel);
    std::cout << "connected to " << connect << "\n";
  }

  void Run() {
    std::cout << "dpclustx interactive console — 'help' for commands\n";
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

 private:
  void Prompt() {
    if (!session_.empty()) {
      std::cout << "[eps " << remaining_ << " left] > ";
    } else {
      std::cout << "> ";
    }
    std::cout.flush();
  }

  // Returns false to exit the loop.
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "load") {
      Load(in);
    } else if (command == "budget") {
      Budget(in);
    } else if (command == "cluster") {
      Cluster(in);
    } else if (command == "explain") {
      Explain(in);
    } else if (command == "hist") {
      Hist(in);
    } else if (command == "size") {
      Size(in);
    } else if (command == "ledger") {
      Ledger();
    } else if (command == "schema") {
      PrintSchema();
    } else {
      std::cout << "unknown command '" << command << "' — try 'help'\n";
    }
    return true;
  }

  void Help() {
    std::cout <<
        "  load csv PATH | load synthetic NAME [N]\n"
        "  budget EPS\n"
        "  cluster METHOD K [EPS]\n"
        "  explain [EPS]\n"
        "  hist ATTR [EPS]\n"
        "  size CLUSTER [EPS]\n"
        "  ledger | schema | quit\n";
  }

  /// Sends one request to the engine. Prints the error and returns nullopt
  /// on failure; otherwise returns the parsed response body and refreshes
  /// the remaining-budget display when the response reports it.
  /// One round-trip: embedded engine or server socket, same transcript.
  /// The console keeps a single request in flight, so a plain blocking
  /// receive is the whole client protocol.
  StatusOr<JsonValue> Exchange(const std::string& request_line) {
    if (channel_ == nullptr) return JsonValue::Parse(engine_->Handle(request_line));
    const Status sent = channel_->SendLine(request_line);
    if (!sent.ok()) return sent;
    StatusOr<std::string> response = channel_->RecvLine(kServerTimeoutMs);
    if (!response.ok()) return response.status();
    return JsonValue::Parse(*response);
  }

  StatusOr<JsonValue> Call(JsonValue request) {
    StatusOr<JsonValue> response = Exchange(request.Dump());
    if (!response.ok()) {
      std::cout << "request failed: " << response.status().ToString() << "\n";
      return response.status();
    }
    if (response.ok() && !response->at("ok").AsBool()) {
      const JsonValue& error = response->at("error");
      std::cout << error.at("code").AsString() << ": "
                << error.at("message").AsString() << "\n";
      return dpclustx::Status::Internal("request failed");
    }
    if (response.ok() && response->Has("epsilon_remaining")) {
      remaining_ = response->at("epsilon_remaining").AsNumber();
    }
    if (response.ok() && response->Has("remaining")) {
      remaining_ = response->at("remaining").AsNumber();
    }
    return response;
  }

  void Load(std::istringstream& in) {
    std::string kind, arg;
    in >> kind >> arg;
    if (arg.empty() || (kind != "csv" && kind != "synthetic")) {
      std::cout << "usage: load csv PATH | load synthetic NAME [N]\n";
      return;
    }
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("load_dataset"));
    request.Set("name", JsonValue::String(kDataset));
    request.Set("replace", JsonValue::Bool(true));
    if (kind == "csv") {
      request.Set("source", JsonValue::String("csv"));
      request.Set("path", JsonValue::String(arg));
    } else {
      size_t rows = 20000;
      in >> rows;
      request.Set("source", JsonValue::String("synthetic"));
      request.Set("generator", JsonValue::String(arg));
      request.Set("rows", JsonValue::Number(static_cast<double>(rows)));
    }
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    // A replaced dataset invalidates the open session and clustering (they
    // reference the detached entry).
    session_.clear();
    clustering_.clear();
    std::cout << "loaded " << response->at("rows").AsNumber() << " rows x "
              << response->at("attributes").AsNumber() << " attributes\n";
  }

  void Budget(std::istringstream& in) {
    double eps = 0.0;
    if (!(in >> eps) || eps <= 0.0) {
      std::cout << "usage: budget EPS (positive)\n";
      return;
    }
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("create_session"));
    request.Set("session", JsonValue::String("s" + std::to_string(++serial_)));
    request.Set("dataset", JsonValue::String(kDataset));
    request.Set("epsilon", JsonValue::Number(eps));
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    session_ = response->at("session").AsString();
    remaining_ = eps;
    std::cout << "opened budget eps = " << eps << "\n";
  }

  bool RequireSession() {
    if (session_.empty()) std::cout << "no budget open — use 'budget EPS'\n";
    return !session_.empty();
  }
  bool RequireClustering() {
    if (clustering_.empty()) std::cout << "no clustering — use 'cluster'\n";
    return !clustering_.empty();
  }

  void Cluster(std::istringstream& in) {
    if (!RequireSession()) return;
    std::string method;
    size_t k = 0;
    in >> method >> k;
    if (method.empty() || k == 0) {
      std::cout << "usage: cluster METHOD K [EPS]\n";
      return;
    }
    double eps = 1.0;
    in >> eps;
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("cluster"));
    request.Set("dataset", JsonValue::String(kDataset));
    request.Set("clustering",
                JsonValue::String("c" + std::to_string(++serial_)));
    request.Set("method", JsonValue::String(method));
    request.Set("k", JsonValue::Number(static_cast<double>(k)));
    request.Set("seed", JsonValue::Number(static_cast<double>(seed_++)));
    request.Set("epsilon", JsonValue::Number(eps));
    request.Set("session", JsonValue::String(session_));
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    clustering_ = response->at("clustering").AsString();
    std::cout << "clustered with " << response->at("method").AsString()
              << " (" << response->at("num_clusters").AsNumber()
              << " clusters; sizes are private — use 'size C')\n";
  }

  void Explain(std::istringstream& in) {
    if (!RequireSession() || !RequireClustering()) return;
    double eps = 0.3;
    in >> eps;
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("explain"));
    request.Set("session", JsonValue::String(session_));
    request.Set("clustering", JsonValue::String(clustering_));
    request.Set("epsilon", JsonValue::Number(eps));
    // No seed: noise seeds are server-drawn (a repeated identical explain
    // re-serves the already-paid-for release from the cache at zero ε).
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    std::cout << response->at("text").AsString();
  }

  void Hist(std::istringstream& in) {
    if (!RequireSession() || !RequireClustering()) return;
    std::string attr_name;
    double eps = 0.02;
    in >> attr_name >> eps;
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("hist"));
    request.Set("session", JsonValue::String(session_));
    request.Set("clustering", JsonValue::String(clustering_));
    request.Set("attribute", JsonValue::String(attr_name));
    request.Set("epsilon", JsonValue::Number(eps));
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    const JsonValue& clusters = response->at("clusters");
    for (size_t c = 0; c < clusters.size(); ++c) {
      const JsonValue& entry = clusters.at(c);
      std::cout << "cluster " << entry.at("cluster").AsNumber() << ":\n";
      const JsonValue& bins = entry.at("bins");
      for (size_t b = 0; b < bins.size(); ++b) {
        std::cout << "  " << bins.at(b).at("value").AsString() << ": "
                  << bins.at(b).at("count").AsNumber() << "\n";
      }
    }
  }

  void Size(std::istringstream& in) {
    if (!RequireSession() || !RequireClustering()) return;
    uint32_t cluster = 0;
    double eps = 0.01;
    in >> cluster >> eps;
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("size"));
    request.Set("session", JsonValue::String(session_));
    request.Set("clustering", JsonValue::String(clustering_));
    request.Set("cluster", JsonValue::Number(static_cast<double>(cluster)));
    request.Set("epsilon", JsonValue::Number(eps));
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    std::cout << "noisy size of cluster " << cluster << ": "
              << response->at("noisy_size").AsNumber() << "\n";
  }

  void Ledger() {
    if (!RequireSession()) return;
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("budget"));
    request.Set("session", JsonValue::String(session_));
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    std::cout << "session " << session_ << ": spent "
              << response->at("spent").AsNumber() << " of "
              << response->at("total").AsNumber() << " eps\n";
    const JsonValue& ledger = response->at("ledger");
    for (size_t i = 0; i < ledger.size(); ++i) {
      std::cout << "  " << ledger.at(i).at("epsilon").AsNumber() << "  "
                << ledger.at(i).at("label").AsString() << "\n";
    }
  }

  void PrintSchema() {
    JsonValue request = JsonValue::Object();
    request.Set("op", JsonValue::String("schema"));
    request.Set("dataset", JsonValue::String(kDataset));
    StatusOr<JsonValue> response = Call(std::move(request));
    if (!response.ok()) return;
    const JsonValue& attributes = response->at("attributes");
    for (size_t a = 0; a < attributes.size(); ++a) {
      std::cout << "  " << attributes.at(a).at("name").AsString() << " ("
                << attributes.at(a).at("values").size() << " values)\n";
    }
  }

  static constexpr int kServerTimeoutMs = 30000;

  std::unique_ptr<ServiceEngine> engine_;   // embedded mode
  std::unique_ptr<ClientChannel> channel_;  // --connect mode
  std::string session_;     // active session id ("" until 'budget')
  std::string clustering_;  // active clustering id ("" until 'cluster')
  double remaining_ = 0.0;
  uint64_t serial_ = 0;  // session / clustering id counter
  uint64_t seed_ = 1;    // clustering-fit seeds (not mechanism noise)
};

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
      continue;
    }
    std::cerr << "usage: dpclustx_repl [--connect unix:/path|tcp:[host:]port]\n";
    return 2;
  }
  Repl repl(connect);
  repl.Run();
  return 0;
}
