// The paper's §6.3 case study: a Census-like dataset clustered into 3
// groups with (non-private) k-means, explained side by side by DPClustX
// (under DP) and by the non-private TabEE baseline. The example reports the
// attribute choices, the MAE between them, and the Quality gap — the
// paper's finding is that even when DPClustX picks different (correlated)
// attributes, the Quality difference is negligible and the insights agree.

#include <cstdio>
#include <iostream>

#include "baselines/tabee.h"
#include "cluster/kmeans.h"
#include "common/logging.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;

  const auto dataset = synth::Generate(synth::CensusLike(120000, 21));
  DPX_CHECK_OK(dataset.status());
  std::printf("Census-like dataset: %zu rows x %zu attributes\n",
              dataset->num_rows(), dataset->num_attributes());

  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  kmeans.seed = 1;
  const auto clustering = FitKMeans(*dataset, kmeans);
  DPX_CHECK_OK(clustering.status());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(*dataset);
  const auto stats = StatsCache::Build(*dataset, labels, 3);
  DPX_CHECK_OK(stats.status());

  // Non-private reference.
  const auto tabee = baselines::ExplainTabee(*stats, {});
  DPX_CHECK_OK(tabee.status());

  // DPClustX with default budgets (ε = 0.3 in total).
  DpClustXOptions options;
  options.seed = 33;
  const auto dpx =
      ExplainDpClustXWithLabels(*dataset, labels, 3, options);
  DPX_CHECK_OK(dpx.status());

  GlobalWeights lambda;
  const double tabee_quality =
      eval::SensitiveQuality(*stats, tabee->combination, lambda);
  const double dpx_quality =
      eval::SensitiveQuality(*stats, dpx->combination, lambda);
  const double mae =
      eval::MeanAbsoluteError(dpx->combination, tabee->combination);

  std::printf("\n%-10s %-22s %-22s\n", "cluster", "DPClustX attribute",
              "TabEE attribute");
  for (size_t c = 0; c < 3; ++c) {
    std::printf("%-10zu %-22s %-22s\n", c,
                dataset->schema().attribute(dpx->combination[c]).name()
                    .c_str(),
                dataset->schema().attribute(tabee->combination[c]).name()
                    .c_str());
  }
  std::printf(
      "\nMAE vs non-private choice: %.3f\n"
      "Quality (TabEE, non-private): %.4f\n"
      "Quality (DPClustX, eps=0.3):  %.4f  (gap %.2f%%)\n\n",
      mae, tabee_quality, dpx_quality,
      100.0 * (tabee_quality - dpx_quality) /
          (tabee_quality > 0 ? tabee_quality : 1.0));

  std::cout << "=== Per-cluster quality breakdown (DPClustX choice) ===\n"
            << eval::QualityBreakdownReport(*stats, dpx->combination,
                                            lambda, dataset->schema())
            << "\n";
  std::cout << "=== DPClustX explanation (noisy histograms) ===\n"
            << RenderGlobalExplanation(*dpx, dataset->schema());
  std::cout << "=== TabEE explanation (exact histograms) ===\n"
            << RenderGlobalExplanation(*tabee, dataset->schema());
  return 0;
}
