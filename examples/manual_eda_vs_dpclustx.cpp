// The paper's motivating comparison (§1): "Instead of exhausting the
// privacy budget through a manual EDA session, the analyst employs
// DPClustX."
//
// This example runs both workflows against the same budget:
//   A. Manual EDA: the analyst scans attributes one by one through an
//      interactive DP session (noisy per-cluster histograms, parallel
//      composition within a round), ranks them by apparent TVD, and stops
//      when the budget runs dry.
//   B. DPClustX: one ε = 0.3 call.
// It then scores both selections with the exact Quality measure. The manual
// session either burns far more budget to see every attribute, or — at the
// same budget — sees only a fraction of the attributes at heavy noise.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "cluster/kmeans.h"
#include "common/logging.h"
#include "core/explainer.h"
#include "data/synthetic.h"
#include "dp/eda_session.h"
#include "dp/privacy_budget.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;

  const auto dataset = synth::Generate(synth::DiabetesLike(40000, 3));
  DPX_CHECK_OK(dataset.status());
  const size_t clusters = 5;
  KMeansOptions kmeans;
  kmeans.num_clusters = clusters;
  kmeans.seed = 2;
  const auto clustering = FitKMeans(*dataset, kmeans);
  DPX_CHECK_OK(clustering.status());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(*dataset);
  const auto stats = StatsCache::Build(*dataset, labels, clusters);
  DPX_CHECK_OK(stats.status());

  const double total_budget = 0.3;
  const GlobalWeights lambda;

  // --- Workflow A: manual EDA at the same total budget. -------------------
  PrivacyBudget eda_budget(total_budget);
  std::vector<uint32_t> raw_labels(labels.begin(), labels.end());
  auto session =
      EdaSession::Open(&*dataset, raw_labels, clusters, &eda_budget, 17);
  DPX_CHECK_OK(session.status());

  // The analyst scans attributes round by round; every round costs one
  // parallel-composition charge. Budget per round is chosen so that *some*
  // attributes can be seen; the rest never get examined.
  const double eps_per_round = 0.02;
  std::vector<double> apparent_tvd(dataset->num_attributes(), -1.0);
  size_t attrs_examined = 0;
  for (size_t a = 0; a < dataset->num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    const auto round = session->QueryAllClusterHistograms(attr,
                                                          eps_per_round);
    if (!round.ok()) break;  // budget exhausted mid-session
    ++attrs_examined;
    // Apparent interestingness from noisy data: max cluster-vs-rest TVD.
    Histogram full(dataset->schema().attribute(attr).domain_size());
    for (const Histogram& h : *round) full = full.Plus(h);
    double best = 0.0;
    for (const Histogram& h : *round) {
      best = std::max(best, Histogram::Tvd(full, h));
    }
    apparent_tvd[a] = best;
  }
  // The analyst explains every cluster with the apparently-best attribute.
  const auto best_attr = static_cast<AttrIndex>(
      std::max_element(apparent_tvd.begin(), apparent_tvd.end()) -
      apparent_tvd.begin());
  const AttributeCombination eda_choice(clusters, best_attr);
  const double eda_quality =
      eval::SensitiveQuality(*stats, eda_choice, lambda);

  // --- Workflow B: DPClustX at the same total budget. ----------------------
  PrivacyBudget dpx_budget(total_budget);
  DpClustXOptions options;  // 0.1 + 0.1 + 0.1
  options.seed = 23;
  const auto explanation = ExplainDpClustXWithLabels(
      *dataset, labels, clusters, options, &dpx_budget);
  DPX_CHECK_OK(explanation.status());
  const double dpx_quality =
      eval::SensitiveQuality(*stats, explanation->combination, lambda);

  // --- Reference: the non-private optimum. ---------------------------------
  const auto tabee_stats = *stats;
  AttributeCombination tabee(clusters, 0);
  {
    std::vector<double> true_tvd(dataset->num_attributes());
    for (size_t c = 0; c < clusters; ++c) {
      for (size_t a = 0; a < dataset->num_attributes(); ++a) {
        true_tvd[a] = eval::TvdInterestingness(
            *stats, static_cast<ClusterId>(c), static_cast<AttrIndex>(a));
      }
      tabee[c] = static_cast<AttrIndex>(
          std::max_element(true_tvd.begin(), true_tvd.end()) -
          true_tvd.begin());
    }
  }

  std::printf("Budget available to each workflow: eps = %.2f\n\n",
              total_budget);
  std::printf(
      "Manual EDA session:\n"
      "  attributes examined before budget ran out: %zu of %zu\n"
      "  queries issued: %zu\n"
      "  selected attribute: `%s` for every cluster\n"
      "  Quality of selection: %.4f\n\n",
      attrs_examined, dataset->num_attributes(), session->queries_issued(),
      dataset->schema().attribute(best_attr).name().c_str(), eda_quality);
  std::printf(
      "DPClustX (one call):\n"
      "  Quality of selection: %.4f\n"
      "  budget ledger:\n%s\n",
      dpx_quality, dpx_budget.Report().c_str());
  std::printf(
      "Quality of the per-cluster TVD optimum (non-private): %.4f\n",
      eval::SensitiveQuality(tabee_stats, tabee, lambda));
  std::printf(
      "\nDPClustX %s the manual session at the same budget (%.4f vs "
      "%.4f),\nwhile also returning per-cluster attributes and release-ready "
      "noisy histograms.\n",
      dpx_quality >= eda_quality ? "beats" : "trails", dpx_quality,
      eda_quality);
  return 0;
}
