// The paper's §1 walkthrough (Example 1.1 / Fig. 2) on Diabetes-like data.
//
// An analyst clusters hospital records with DP-k-means and, instead of
// spending privacy budget on a manual EDA session, asks DPClustX for a
// global histogram-based explanation. This example reproduces the flow with
// a numeric "lab procedures"-style attribute built through the binning
// module, shows the ranked Stage-1 candidates for Cluster 1 (Fig. 4), and
// prints the textual description of the winning histogram pair (Fig. 2b).

#include <cstdio>
#include <iostream>

#include "cluster/dp_kmeans.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "core/candidate_selection.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "data/binning.h"
#include "data/synthetic.h"
#include "dp/privacy_budget.h"
#include "eval/metrics.h"

namespace {

// Builds a Diabetes-like dataset whose first attribute is a binned numeric
// column ("lab_proc") engineered so that one latent group runs many more lab
// procedures — the pattern the paper's example uncovers.
dpclustx::Dataset MakeDiabetesData() {
  using namespace dpclustx;
  const auto base = synth::Generate(synth::DiabetesLike(30000, 4));
  DPX_CHECK_OK(base.status());

  // Numeric lab-procedure counts: group 0 (identified by the first latent-
  // informative attribute's low codes) centers near 65, the rest near 35.
  Rng rng(20);
  std::vector<double> lab_counts;
  lab_counts.reserve(base->num_rows());
  for (size_t r = 0; r < base->num_rows(); ++r) {
    const bool heavy = base->at(r, 0) < 2;  // correlated with structure
    lab_counts.push_back(
        Clamp(rng.Gaussian(heavy ? 65.0 : 35.0, 9.0), 0.0, 79.9));
  }
  const auto binner = Binner::FromEdges(
      "lab_proc", {0, 10, 20, 30, 40, 50, 60, 70, 80});
  DPX_CHECK_OK(binner.status());

  // New schema: lab_proc first, then the synthetic attributes.
  std::vector<Attribute> attrs = {binner->ToAttribute()};
  for (const Attribute& attr : base->schema().attributes()) {
    attrs.push_back(attr);
  }
  Dataset dataset{Schema(std::move(attrs))};
  const std::vector<ValueCode> lab_codes = binner->Encode(lab_counts);
  std::vector<ValueCode> row;
  for (size_t r = 0; r < base->num_rows(); ++r) {
    row.clear();
    row.push_back(lab_codes[r]);
    for (size_t a = 0; a < base->num_attributes(); ++a) {
      row.push_back(base->at(r, static_cast<AttrIndex>(a)));
    }
    dataset.AppendRowUnchecked(row);
  }
  return dataset;
}

}  // namespace

int main() {
  using namespace dpclustx;
  const Dataset dataset = MakeDiabetesData();
  std::printf("Diabetes-like dataset: %zu rows x %zu attributes\n\n",
              dataset.num_rows(), dataset.num_attributes());

  PrivacyBudget budget(1.3);

  DpKMeansOptions clustering_options;
  clustering_options.num_clusters = 3;
  clustering_options.epsilon = 1.0;
  clustering_options.seed = 5;
  const auto clustering = FitDpKMeans(dataset, clustering_options, &budget);
  DPX_CHECK_OK(clustering.status());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  const auto stats = StatsCache::Build(dataset, labels, 3);
  DPX_CHECK_OK(stats.status());

  // Show the Stage-1 ranking for Cluster 1 the way Fig. 4 does — the exact
  // top candidates by single-cluster score (for exposition only; the
  // private run below redoes this selection under DP).
  const auto exact_sets = SelectCandidatesExact(*stats, 3, {0.5, 0.5});
  DPX_CHECK_OK(exact_sets.status());
  std::printf("Top-3 candidate attributes for Cluster 1 (exact ranking):\n");
  for (AttrIndex attr : (*exact_sets)[1]) {
    std::printf("  %-12s SScore=%.1f  TVD=%.3f\n",
                dataset.schema().attribute(attr).name().c_str(),
                SingleClusterScore(*stats, 1, attr, {0.5, 0.5}),
                eval::TvdInterestingness(*stats, 1, attr));
  }

  DpClustXOptions options;
  options.seed = 11;
  const auto explanation =
      ExplainDpClustX(dataset, **clustering, options, &budget);
  DPX_CHECK_OK(explanation.status());

  std::cout << "\n"
            << RenderGlobalExplanation(*explanation, dataset.schema());
  std::cout << budget.Report();
  return 0;
}
