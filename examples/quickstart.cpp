// Quickstart: the smallest end-to-end DPClustX pipeline.
//
//   1. Synthesize a categorical dataset with planted group structure.
//   2. Cluster it privately with DP-k-means (ε_clust = 1).
//   3. Explain the clusters with DPClustX (ε_exp = 0.3 total).
//   4. Print the noisy histograms and textual summaries.
//
// The composed release is (ε_clust + ε_exp)-DP, tracked by one
// PrivacyBudget accountant.

#include <cstdio>
#include <iostream>

#include "cluster/dp_kmeans.h"
#include "common/logging.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "data/synthetic.h"
#include "dp/privacy_budget.h"

int main() {
  using namespace dpclustx;

  // 1. A Diabetes-like synthetic table: 47 attributes, ~20k rows.
  const auto dataset = synth::Generate(synth::DiabetesLike(20000));
  DPX_CHECK_OK(dataset.status());
  std::printf("dataset: %zu rows x %zu attributes\n", dataset->num_rows(),
              dataset->num_attributes());

  // 2. DP-k-means with the paper's clustering budget ε = 1.
  PrivacyBudget budget(1.3);
  DpKMeansOptions clustering_options;
  clustering_options.num_clusters = 5;
  clustering_options.epsilon = 1.0;
  clustering_options.seed = 42;
  const auto clustering = FitDpKMeans(*dataset, clustering_options, &budget);
  DPX_CHECK_OK(clustering.status());
  std::printf("clustering: %s\n", (*clustering)->name().c_str());

  // 3. DPClustX with the paper's default explanation budgets
  //    (ε_CandSet = ε_TopComb = ε_Hist = 0.1, k = 3, equal λ weights).
  DpClustXOptions options;
  options.seed = 7;
  const auto explanation =
      ExplainDpClustX(*dataset, **clustering, options, &budget);
  DPX_CHECK_OK(explanation.status());

  // 4. Report.
  std::cout << "\n"
            << RenderGlobalExplanation(*explanation, dataset->schema());
  std::cout << budget.Report();
  return 0;
}
