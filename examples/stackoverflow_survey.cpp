// Survey-analysis workflow on StackOverflow-like data, demonstrating the
// wider API surface:
//   - CSV round-trip (export the sensitive table, re-import with a fixed
//     schema — the safe, data-independent-domain path),
//   - correlated-attribute augmentation (the paper's §6.2 robustness
//     experiment setup),
//   - k-modes clustering over categorical answers,
//   - the Appendix-B multi-explanations-per-cluster extension (ℓ = 2).

#include <cstdio>
#include <iostream>

#include "cluster/kmodes.h"
#include "common/logging.h"
#include "core/multi_explainer.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "dp/privacy_budget.h"

int main() {
  using namespace dpclustx;

  // A modest survey table so the example runs in a couple of seconds.
  auto config = synth::StackOverflowLike(15000, 8);
  config.num_attributes = 25;
  const auto generated = synth::Generate(config);
  DPX_CHECK_OK(generated.status());

  // CSV round-trip through /tmp, as a user ingesting their own export
  // would. Re-reading with the original schema keeps domains
  // data-independent.
  const std::string path = "/tmp/dpclustx_survey_example.csv";
  DPX_CHECK_OK(WriteCsv(*generated, path));
  const auto dataset = ReadCsvWithSchema(path, generated->schema());
  DPX_CHECK_OK(dataset.status());
  std::printf("survey table: %zu rows x %zu attributes (via %s)\n",
              dataset->num_rows(), dataset->num_attributes(), path.c_str());

  // Add one correlated twin per attribute at Cramér's V ≈ 0.85 (§6.2).
  const auto extended = synth::AddCorrelatedTwins(*dataset, 0.85, 9);
  DPX_CHECK_OK(extended.status());
  std::printf("with correlated twins: %zu attributes\n",
              extended->num_attributes());

  KModesOptions kmodes;
  kmodes.num_clusters = 4;
  kmodes.seed = 3;
  const auto clustering = FitKModes(*extended, kmodes);
  DPX_CHECK_OK(clustering.status());

  // Multi-explanation variant: two histograms per cluster.
  PrivacyBudget budget(0.5);
  MultiExplainOptions options;
  options.attrs_per_cluster = 2;
  options.base.num_candidates = 4;
  options.base.seed = 17;
  const auto result =
      ExplainDpClustXMulti(*extended, **clustering, options, &budget);
  DPX_CHECK_OK(result.status());

  for (size_t c = 0; c < result->combination.size(); ++c) {
    std::printf("\nCluster %zu explained by:", c);
    for (AttrIndex attr : result->combination[c]) {
      std::printf(" `%s`", extended->schema().attribute(attr).name()
                                .c_str());
    }
    std::printf("\n");
    for (const auto& e : result->explanations[c]) {
      std::cout << "  "
                << DescribeExplanation(e, extended->schema()) << "\n";
    }
  }
  std::printf("\n%s", budget.Report().c_str());
  return 0;
}
