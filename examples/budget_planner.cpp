// Privacy-budget planning walkthrough.
//
// Shows how to use the utility-bound helpers to turn accuracy requirements
// into ε budgets before touching the data, then executes the planned
// pipeline against one PrivacyBudget accountant:
//   - How much histogram budget do I need so every released bin is within
//     ±25 of the truth with 95% confidence?
//   - What additive error does the Stage-2 exponential mechanism pay at my
//     chosen ε_TopComb?
//   - How does the full ledger decompose?

#include <cmath>
#include <cstdio>

#include "cluster/dp_kmeans.h"
#include "common/logging.h"
#include "core/explainer.h"
#include "data/synthetic.h"
#include "dp/dp_histogram.h"
#include "dp/exponential.h"
#include "dp/mechanisms.h"
#include "dp/topk.h"

int main() {
  using namespace dpclustx;

  const size_t domain = 39;       // largest Diabetes-like domain
  const size_t num_attrs = 47;
  const size_t num_clusters = 5;
  const size_t k = 3;

  std::printf("=== Planning phase (no data touched) ===\n");

  // 1. Histogram accuracy → ε_Hist. Each cluster histogram runs at
  //    ε_Hist/2; require max bin error <= 25 at 95% confidence.
  const double eps_cluster_hist =
      EpsilonForDpHistogramError(domain, 25.0, 0.95);
  const double eps_hist = 2.0 * eps_cluster_hist;
  std::printf(
      "bin error <= 25 @95%% over %zu bins needs eps_hist,cluster >= %.4f "
      "=> eps_Hist >= %.4f\n",
      domain, eps_cluster_hist, eps_hist);

  // 2. Stage-2 selection error at ε_TopComb = 0.1 over k^|C| combinations
  //    (Theorem 3.11 bound; GlScore has sensitivity 1).
  double combos = 1.0;
  for (size_t c = 0; c < num_clusters; ++c) combos *= static_cast<double>(k);
  const double em_error = ExponentialMechanismErrorBound(
      static_cast<size_t>(combos), 1.0, 0.1, 3.0);
  std::printf(
      "Stage-2 EM over %.0f combinations at eps=0.1: score within %.1f of "
      "optimal w.p. >= %.3f\n",
      combos, em_error, 1.0 - std::exp(-3.0));

  // 3. Stage-1 top-k error per cluster at ε_CandSet = 0.1.
  const double topk_error =
      OneShotTopKErrorBound(num_attrs, 1.0, 0.1 / num_clusters, k, 3.0);
  std::printf(
      "Stage-1 top-%zu over %zu attributes: per-rank score within %.1f of "
      "the true rank w.p. >= %.3f\n\n",
      k, num_attrs, topk_error, 1.0 - std::exp(-3.0));

  // === Execution phase ===
  const double eps_clust = 1.0;
  const double total = eps_clust + 0.1 + 0.1 + eps_hist;
  std::printf("=== Execution phase (total budget %.4f) ===\n", total);
  PrivacyBudget budget(total);

  const auto dataset = synth::Generate(synth::DiabetesLike(25000, 6));
  DPX_CHECK_OK(dataset.status());

  DpKMeansOptions clustering_options;
  clustering_options.num_clusters = num_clusters;
  clustering_options.epsilon = eps_clust;
  const auto clustering =
      FitDpKMeans(*dataset, clustering_options, &budget);
  DPX_CHECK_OK(clustering.status());

  DpClustXOptions options;
  options.epsilon_cand_set = 0.1;
  options.epsilon_top_comb = 0.1;
  options.epsilon_hist = eps_hist;
  options.num_candidates = k;
  options.seed = 23;
  const auto explanation =
      ExplainDpClustX(*dataset, **clustering, options, &budget);
  DPX_CHECK_OK(explanation.status());

  std::printf("%s", budget.Report().c_str());
  std::printf("remaining budget: %.6f\n", budget.remaining_epsilon());

  // Demonstrate the accountant refusing an over-budget follow-up query.
  const Status refused = budget.Spend(1.0, "manual-eda-query");
  std::printf("follow-up EDA query: %s\n", refused.ToString().c_str());
  return 0;
}
