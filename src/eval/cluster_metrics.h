// External clustering-quality measures: purity, normalized mutual
// information, and the adjusted Rand index. Used to validate the clustering
// substrate against planted structure (the synthetic generators expose
// their latent groups) and to quantify how much a DP clustering degrades
// relative to its non-private counterpart before explanations even start.

#ifndef DPCLUSTX_EVAL_CLUSTER_METRICS_H_
#define DPCLUSTX_EVAL_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dpclustx::eval {

/// Fraction of points whose cluster's majority reference class matches
/// their own reference class; in (0, 1], 1 = perfect. Requires equal-length
/// non-empty label vectors.
StatusOr<double> Purity(const std::vector<uint32_t>& clusters,
                        const std::vector<uint32_t>& reference);

/// Normalized mutual information I(C;R)/sqrt(H(C)·H(R)) ∈ [0, 1];
/// 1 = identical partitions (up to relabeling), 0 = independent. By
/// convention returns 1 if both partitions are single-cluster and 0 if
/// exactly one is.
StatusOr<double> NormalizedMutualInformation(
    const std::vector<uint32_t>& clusters,
    const std::vector<uint32_t>& reference);

/// Adjusted Rand index ∈ [−1, 1]; 1 = identical partitions, ≈0 = random
/// agreement.
StatusOr<double> AdjustedRandIndex(const std::vector<uint32_t>& clusters,
                                   const std::vector<uint32_t>& reference);

}  // namespace dpclustx::eval

#endif  // DPCLUSTX_EVAL_CLUSTER_METRICS_H_
