#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/logging.h"
#include "common/math_util.h"
#include "eval/harness.h"

namespace dpclustx::eval {

namespace {

// Expected value over orderings of the "novelty chain"
// Σ_i min_{j<i} dist(i, j), with the first element counting 1. `dist` is a
// symmetric m×m matrix (flattened). Exact enumeration up to 7! orderings;
// Monte Carlo with a fixed seed beyond that.
double ExpectedPermutationDiversity(const std::vector<double>& dist,
                                    size_t m) {
  if (m == 1) return 1.0;
  std::vector<size_t> perm(m);
  std::iota(perm.begin(), perm.end(), 0);

  auto chain_value = [&](const std::vector<size_t>& p) {
    double value = 1.0;  // first element: min over empty prefix counts 1
    for (size_t i = 1; i < m; ++i) {
      double min_dist = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < i; ++j) {
        min_dist = std::min(min_dist, dist[p[i] * m + p[j]]);
      }
      value += min_dist;
    }
    return value;
  };

  if (m <= 7) {
    double total = 0.0;
    size_t count = 0;
    std::sort(perm.begin(), perm.end());
    do {
      total += chain_value(perm);
      ++count;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return total / static_cast<double>(count);
  }

  // Monte Carlo estimate; fixed seed keeps the evaluation deterministic.
  Rng rng(0xD1CE5EED);
  constexpr size_t kSamples = 2000;
  double total = 0.0;
  for (size_t s = 0; s < kSamples; ++s) {
    for (size_t i = m; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.UniformInt(i)]);
    }
    total += chain_value(perm);
  }
  return total / static_cast<double>(kSamples);
}

}  // namespace

double TvdInterestingness(const StatsCache& stats, ClusterId c,
                          AttrIndex attr) {
  if (stats.cluster_size(c) == 0) return 0.0;
  return Histogram::Tvd(stats.full_histogram(attr),
                        stats.cluster_histogram(c, attr));
}

double Interestingness(const StatsCache& stats,
                       const AttributeCombination& ac) {
  DPX_CHECK_EQ(ac.size(), stats.num_clusters());
  double sum = 0.0;
  for (size_t c = 0; c < ac.size(); ++c) {
    sum += TvdInterestingness(stats, static_cast<ClusterId>(c), ac[c]);
  }
  return sum / static_cast<double>(ac.size());
}

double Sufficiency(const StatsCache& stats, const AttributeCombination& ac) {
  DPX_CHECK_EQ(ac.size(), stats.num_clusters());
  if (stats.num_rows() == 0) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < ac.size(); ++c) {
    sum += SufficiencyP(stats, static_cast<ClusterId>(c), ac[c]);
  }
  return sum / static_cast<double>(stats.num_rows());
}

double TabeeDiversity(const StatsCache& stats,
                      const AttributeCombination& ac) {
  DPX_CHECK_EQ(ac.size(), stats.num_clusters());
  // Group clusters by their explaining attribute (ExpBy sets).
  std::map<AttrIndex, std::vector<ClusterId>> explained_by;
  for (size_t c = 0; c < ac.size(); ++c) {
    explained_by[ac[c]].push_back(static_cast<ClusterId>(c));
  }
  double total = 0.0;
  for (const auto& [attr, clusters] : explained_by) {
    const size_t m = clusters.size();
    if (m == 1) {
      total += 1.0;
      continue;
    }
    // Pairwise TVD matrix between the clusters sharing this attribute.
    std::vector<double> dist(m * m, 0.0);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        const double tvd =
            Histogram::Tvd(stats.cluster_histogram(clusters[i], attr),
                           stats.cluster_histogram(clusters[j], attr));
        dist[i * m + j] = dist[j * m + i] = tvd;
      }
    }
    total += ExpectedPermutationDiversity(dist, m);
  }
  // Normalize into [0, 1]: the maximum of the un-normalized diversity is
  // |C| (all chains at distance 1).
  return total / static_cast<double>(stats.num_clusters());
}

double SensitiveQuality(const StatsCache& stats,
                        const AttributeCombination& ac,
                        const GlobalWeights& lambda) {
  double quality = 0.0;
  if (lambda.interestingness > 0.0) {
    quality += lambda.interestingness * Interestingness(stats, ac);
  }
  if (lambda.sufficiency > 0.0) {
    quality += lambda.sufficiency * Sufficiency(stats, ac);
  }
  if (lambda.diversity > 0.0) {
    quality += lambda.diversity * TabeeDiversity(stats, ac);
  }
  return quality;
}

double SensitiveSingleClusterScore(const StatsCache& stats, ClusterId c,
                                   AttrIndex attr,
                                   const SingleClusterWeights& gamma) {
  const double size = static_cast<double>(stats.cluster_size(c));
  const double suf_fraction =
      size > 0.0 ? SufficiencyP(stats, c, attr) / size : 0.0;
  return gamma.interestingness * TvdInterestingness(stats, c, attr) +
         gamma.sufficiency * suf_fraction;
}

double SensitivePairwiseDiversity(const StatsCache& stats,
                                  const AttributeCombination& ac) {
  const size_t clusters = stats.num_clusters();
  DPX_CHECK_EQ(ac.size(), clusters);
  if (clusters < 2) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t cp = c + 1; cp < clusters; ++cp) {
      if (ac[c] != ac[cp]) {
        sum += 1.0;
      } else {
        sum += Histogram::Tvd(
            stats.cluster_histogram(static_cast<ClusterId>(c), ac[c]),
            stats.cluster_histogram(static_cast<ClusterId>(cp), ac[c]));
      }
    }
  }
  return sum / PairCount(clusters);
}

core_internal::CombinationScoreTables BuildSensitiveTables(
    const StatsCache& stats,
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const GlobalWeights& lambda) {
  const size_t clusters = candidate_sets.size();
  DPX_CHECK_EQ(clusters, stats.num_clusters());
  core_internal::CombinationScoreTables tables;
  const double rows = static_cast<double>(stats.num_rows());
  tables.unary.resize(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    tables.unary[c].resize(candidate_sets[c].size());
    for (size_t j = 0; j < candidate_sets[c].size(); ++j) {
      const auto cluster = static_cast<ClusterId>(c);
      const AttrIndex attr = candidate_sets[c][j];
      double unary = lambda.interestingness *
                     TvdInterestingness(stats, cluster, attr) /
                     static_cast<double>(clusters);
      if (rows > 0.0) {
        unary +=
            lambda.sufficiency * SufficiencyP(stats, cluster, attr) / rows;
      }
      tables.unary[c][j] = unary;
    }
  }
  const double pair_norm =
      clusters >= 2 ? lambda.diversity / PairCount(clusters) : 0.0;
  if (pair_norm > 0.0) {
    tables.pair.resize(clusters);
    for (size_t c = 0; c < clusters; ++c) {
      tables.pair[c].resize(clusters);
      for (size_t cp = c + 1; cp < clusters; ++cp) {
        auto& matrix = tables.pair[c][cp];
        matrix.resize(candidate_sets[c].size() * candidate_sets[cp].size());
        for (size_t j = 0; j < candidate_sets[c].size(); ++j) {
          for (size_t jp = 0; jp < candidate_sets[cp].size(); ++jp) {
            const AttrIndex a = candidate_sets[c][j];
            const AttrIndex ap = candidate_sets[cp][jp];
            const double value =
                a != ap
                    ? 1.0
                    : Histogram::Tvd(
                          stats.cluster_histogram(static_cast<ClusterId>(c),
                                                  a),
                          stats.cluster_histogram(
                              static_cast<ClusterId>(cp), a));
            matrix[j * candidate_sets[cp].size() + jp] = pair_norm * value;
          }
        }
      }
    }
  }
  return tables;
}

double MeanAbsoluteError(const AttributeCombination& selected,
                         const AttributeCombination& reference) {
  DPX_CHECK_EQ(selected.size(), reference.size());
  DPX_CHECK(!selected.empty());
  size_t mismatches = 0;
  for (size_t c = 0; c < selected.size(); ++c) {
    if (selected[c] != reference[c]) ++mismatches;
  }
  return static_cast<double>(mismatches) /
         static_cast<double>(selected.size());
}

std::string QualityBreakdownReport(const StatsCache& stats,
                                   const AttributeCombination& ac,
                                   const GlobalWeights& lambda,
                                   const Schema& schema) {
  DPX_CHECK_EQ(ac.size(), stats.num_clusters());
  TablePrinter table({"cluster", "attribute", "size", "TVD", "Suf"});
  for (size_t c = 0; c < ac.size(); ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    const double size = static_cast<double>(stats.cluster_size(cluster));
    const double suf_fraction =
        size > 0.0 ? SufficiencyP(stats, cluster, ac[c]) / size : 0.0;
    table.AddRow({std::to_string(c), schema.attribute(ac[c]).name(),
                  TablePrinter::Num(size, 0),
                  TablePrinter::Num(
                      TvdInterestingness(stats, cluster, ac[c]), 3),
                  TablePrinter::Num(suf_fraction, 3)});
  }
  std::string out = table.ToString();
  char line[128];
  std::snprintf(line, sizeof(line),
                "Quality (Int %.2f / Suf %.2f / Div %.2f weights): %.4f\n",
                lambda.interestingness, lambda.sufficiency, lambda.diversity,
                SensitiveQuality(stats, ac, lambda));
  out += line;
  return out;
}

}  // namespace dpclustx::eval
