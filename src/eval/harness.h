// Experiment-harness utilities shared by the bench binaries: aligned table
// printing in the shape of the paper's figures/tables, run-statistics
// summaries, and a wall-clock timer.

#ifndef DPCLUSTX_EVAL_HARNESS_H_
#define DPCLUSTX_EVAL_HARNESS_H_

#include <chrono>
#include <string>
#include <vector>

namespace dpclustx::eval {

/// Accumulates rows and prints an aligned text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have one cell per header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 4);

  /// Renders the table (headers, rule, rows).
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Mean and sample standard deviation of repeated runs.
struct RunSummary {
  double mean = 0.0;
  double stddev = 0.0;
  size_t count = 0;
};

RunSummary Summarize(const std::vector<double>& values);

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dpclustx::eval

#endif  // DPCLUSTX_EVAL_HARNESS_H_
