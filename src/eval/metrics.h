// The *original* (sensitive) quality measures of TabEE, used for evaluation
// and by the TabEE-family baselines (paper §6.1, "Evaluation measures").
//
// DPClustX never selects with these functions — their sensitivity is too
// high for useful DP noise (Props. 4.1, 4.3, Lemma A.6) — but they remain
// the ground-truth yardstick: the paper's Quality metric is the λ-weighted
// sum of sensitive interestingness, sufficiency, and diversity of the
// *selected* attribute combination, evaluated on the exact data.

#ifndef DPCLUSTX_EVAL_METRICS_H_
#define DPCLUSTX_EVAL_METRICS_H_

#include <vector>

#include "common/rng.h"
#include "core/explainer.h"
#include "core/quality.h"
#include "core/stats_cache.h"

namespace dpclustx::eval {

/// Sensitive interestingness of one cluster/attribute:
/// TVD(π_A(D), π_A(D_c)) (paper Eq. 1), in [0, 1]. Empty clusters score 0.
double TvdInterestingness(const StatsCache& stats, ClusterId c,
                          AttrIndex attr);

/// Global sensitive interestingness: mean single-cluster TVD.
double Interestingness(const StatsCache& stats,
                       const AttributeCombination& ac);

/// Sensitive sufficiency Suf(D, f, AC) ∈ [0, 1], computed through the
/// identity |D|·Suf = Σ_c Suf_p (Prop. 4.6(1)).
double Sufficiency(const StatsCache& stats, const AttributeCombination& ac);

/// TabEE's permutation diversity, normalized by |C| into [0, 1]. For each
/// attribute A, the clusters explained by A contribute the expectation over
/// orderings of Σ_i min_{j<i} TVD(cluster_i, cluster_j) (first item counts
/// 1); singletons contribute 1. Exact for explained-by sets up to 7
/// clusters, Monte Carlo (fixed internal seed) beyond.
double TabeeDiversity(const StatsCache& stats,
                      const AttributeCombination& ac);

/// The paper's Quality evaluation measure: λ_Int·Int + λ_Suf·Suf +
/// λ_Div·Div with the sensitive measures above. In [0, 1].
double SensitiveQuality(const StatsCache& stats,
                        const AttributeCombination& ac,
                        const GlobalWeights& lambda);

/// Sensitive single-cluster score γ_Int·TVD + γ_Suf·Suf_c with
/// Suf_c = Suf_p/|D_c| ∈ [0, 1]; the TabEE Stage-1 ranking function. Note
/// this induces the same per-cluster ranking as the low-sensitivity SScore
/// (both are the |D_c|-scaled versions of the same base scores).
double SensitiveSingleClusterScore(const StatsCache& stats, ClusterId c,
                                   AttrIndex attr,
                                   const SingleClusterWeights& gamma);

/// Sensitive *pairwise* diversity: the mean over unordered cluster pairs of
/// 1 (different attributes) or TVD between the two cluster distributions
/// (shared attribute); in [0, 1]. This is the tractable search surrogate for
/// TabeeDiversity used inside the TabEE-family baselines' combination
/// enumeration (the permutation measure does not decompose over pairs);
/// final Quality is always evaluated with TabeeDiversity.
double SensitivePairwiseDiversity(const StatsCache& stats,
                                  const AttributeCombination& ac);

/// Combination-search tables for the sensitive global score
/// λ_Int·Int + λ_Suf·Suf + λ_Div·SensitivePairwiseDiversity (used by TabEE,
/// DP-TabEE, and DP-Naive).
core_internal::CombinationScoreTables BuildSensitiveTables(
    const StatsCache& stats,
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const GlobalWeights& lambda);

/// Conservative sensitivity upper bound used by DP-TabEE for the sensitive
/// score functions: their ranges are [0, 1] and the paper lower-bounds the
/// sensitivities by ½ (Props. 4.1, 4.3), so Δ = 1 is the safe calibration.
inline constexpr double kSensitiveScoreSensitivity = 1.0;

/// Discrete mean absolute error between a selected combination and the
/// non-private reference: the fraction of clusters whose attribute differs
/// (paper §6.1). Requires equal sizes.
double MeanAbsoluteError(const AttributeCombination& selected,
                         const AttributeCombination& reference);

/// Human-readable per-cluster breakdown of a selected combination: for each
/// cluster, the attribute, cluster size, TVD interestingness, normalized
/// sufficiency — followed by the global Quality line. For analyst reports
/// and the CLI; evaluates *exact* statistics, so treat the output as
/// sensitive unless the inputs were already released.
std::string QualityBreakdownReport(const StatsCache& stats,
                                   const AttributeCombination& ac,
                                   const GlobalWeights& lambda,
                                   const Schema& schema);

}  // namespace dpclustx::eval

#endif  // DPCLUSTX_EVAL_METRICS_H_
