#include "eval/harness.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "common/math_util.h"

namespace dpclustx::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DPX_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DPX_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      line += cells[i];
      line += std::string(widths[i] - cells[i].size(), ' ');
      if (i + 1 < cells.size()) line += "  ";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t rule_width = 0;
  for (size_t i = 0; i < widths.size(); ++i) {
    rule_width += widths[i] + (i + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(rule_width, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

RunSummary Summarize(const std::vector<double>& values) {
  RunSummary summary;
  summary.count = values.size();
  if (values.empty()) return summary;
  summary.mean = Mean(values);
  summary.stddev = StdDev(values);
  return summary;
}

}  // namespace dpclustx::eval
