#include "eval/cluster_metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace dpclustx::eval {

namespace {

struct Contingency {
  // joint[(c, r)] and the marginals, all as counts.
  std::map<std::pair<uint32_t, uint32_t>, double> joint;
  std::map<uint32_t, double> row;  // per cluster label
  std::map<uint32_t, double> col;  // per reference label
  double n = 0.0;
};

StatusOr<Contingency> BuildContingency(
    const std::vector<uint32_t>& clusters,
    const std::vector<uint32_t>& reference) {
  if (clusters.empty() || clusters.size() != reference.size()) {
    return Status::InvalidArgument(
        "label vectors must be non-empty and equal-length");
  }
  Contingency table;
  table.n = static_cast<double>(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    table.joint[{clusters[i], reference[i]}] += 1.0;
    table.row[clusters[i]] += 1.0;
    table.col[reference[i]] += 1.0;
  }
  return table;
}

double Entropy(const std::map<uint32_t, double>& marginal, double n) {
  double h = 0.0;
  for (const auto& [label, count] : marginal) {
    const double p = count / n;
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

}  // namespace

StatusOr<double> Purity(const std::vector<uint32_t>& clusters,
                        const std::vector<uint32_t>& reference) {
  DPX_ASSIGN_OR_RETURN(const Contingency table,
                       BuildContingency(clusters, reference));
  // Sum over clusters of the largest joint cell in that cluster's row.
  std::map<uint32_t, double> best_in_row;
  for (const auto& [key, count] : table.joint) {
    best_in_row[key.first] = std::max(best_in_row[key.first], count);
  }
  double correct = 0.0;
  for (const auto& [label, count] : best_in_row) correct += count;
  return correct / table.n;
}

StatusOr<double> NormalizedMutualInformation(
    const std::vector<uint32_t>& clusters,
    const std::vector<uint32_t>& reference) {
  DPX_ASSIGN_OR_RETURN(const Contingency table,
                       BuildContingency(clusters, reference));
  const double h_c = Entropy(table.row, table.n);
  const double h_r = Entropy(table.col, table.n);
  if (h_c == 0.0 && h_r == 0.0) return 1.0;  // both single-cluster
  if (h_c == 0.0 || h_r == 0.0) return 0.0;
  double mi = 0.0;
  for (const auto& [key, count] : table.joint) {
    const double p_joint = count / table.n;
    const double p_c = table.row.at(key.first) / table.n;
    const double p_r = table.col.at(key.second) / table.n;
    mi += p_joint * std::log(p_joint / (p_c * p_r));
  }
  return std::max(0.0, mi) / std::sqrt(h_c * h_r);
}

StatusOr<double> AdjustedRandIndex(const std::vector<uint32_t>& clusters,
                                   const std::vector<uint32_t>& reference) {
  DPX_ASSIGN_OR_RETURN(const Contingency table,
                       BuildContingency(clusters, reference));
  auto choose2 = [](double x) { return 0.5 * x * (x - 1.0); };
  double sum_joint = 0.0, sum_row = 0.0, sum_col = 0.0;
  for (const auto& [key, count] : table.joint) sum_joint += choose2(count);
  for (const auto& [label, count] : table.row) sum_row += choose2(count);
  for (const auto& [label, count] : table.col) sum_col += choose2(count);
  const double total_pairs = choose2(table.n);
  if (total_pairs == 0.0) return 1.0;  // a single point: trivially equal
  const double expected = sum_row * sum_col / total_pairs;
  const double maximum = 0.5 * (sum_row + sum_col);
  if (maximum == expected) return 1.0;  // both partitions all-singletons etc.
  return (sum_joint - expected) / (maximum - expected);
}

}  // namespace dpclustx::eval
