#include "cluster/kmodes.h"

#include <limits>
#include <string>

#include "common/rng.h"

namespace dpclustx {

StatusOr<std::unique_ptr<ClusteringFunction>> FitKModes(
    const Dataset& dataset, const KModesOptions& options) {
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be >= 1");
  if (dataset.num_rows() < k) {
    return Status::InvalidArgument("dataset has fewer rows than clusters");
  }
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  Rng rng(options.seed);

  // Initialize modes with k distinct random rows.
  std::vector<std::vector<ValueCode>> modes;
  modes.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    modes.push_back(dataset.Row(rng.UniformInt(rows)));
  }

  std::vector<ClusterId> labels(rows, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment by Hamming distance.
    bool changed = false;
    for (size_t row = 0; row < rows; ++row) {
      ClusterId best = 0;
      size_t best_dist = std::numeric_limits<size_t>::max();
      for (size_t c = 0; c < k; ++c) {
        size_t dist = 0;
        for (size_t a = 0; a < dims; ++a) {
          dist += (dataset.at(row, static_cast<AttrIndex>(a)) !=
                   modes[c][a])
                      ? 1
                      : 0;
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<ClusterId>(c);
        }
      }
      if (labels[row] != best) {
        labels[row] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update: per-cluster per-attribute value counts, mode update.
    for (size_t a = 0; a < dims; ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      const std::vector<Histogram> hists =
          dataset.ComputeGroupHistograms(attr, labels, k);
      for (size_t c = 0; c < k; ++c) {
        if (hists[c].Total() > 0.0) modes[c][a] = hists[c].ArgMax();
      }
    }
    // Reseed empty clusters.
    std::vector<size_t> sizes = ClusterSizes(labels, k);
    for (size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) modes[c] = dataset.Row(rng.UniformInt(rows));
    }
  }

  return std::unique_ptr<ClusteringFunction>(
      new ModeClustering(dataset.schema(), std::move(modes),
                         "k-modes(k=" + std::to_string(k) + ")"));
}

}  // namespace dpclustx
