#include "cluster/kmodes.h"

#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace dpclustx {

namespace {

// Rows per shard of the Hamming assignment pass; each row costs O(k·dims).
constexpr size_t kAssignGrain = 1024;

}  // namespace

StatusOr<std::unique_ptr<ClusteringFunction>> FitKModes(
    const Dataset& dataset, const KModesOptions& options) {
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be >= 1");
  if (dataset.num_rows() < k) {
    return Status::InvalidArgument("dataset has fewer rows than clusters");
  }
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  Rng rng(options.seed);

  // Initialize modes with k distinct random rows.
  std::vector<std::vector<ValueCode>> modes;
  modes.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    modes.push_back(dataset.Row(rng.UniformInt(rows)));
  }

  std::vector<ClusterId> labels(rows, 0);
  std::vector<ClusterId> next_labels(rows, 0);
  const size_t chunks = ParallelForNumChunks(rows, kAssignGrain);
  std::vector<uint8_t> shard_changed(chunks, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment by Hamming distance via the columnar tile kernel
    // (AssignNearestModes): exact integer distances, ties to the lower
    // label — identical labels to the naive per-row scan, at a fraction of
    // the memory traffic over the narrow codes. A pure per-row map, so any
    // shard schedule writes the same labels.
    ParallelFor(
        rows, kAssignGrain,
        [&](size_t chunk, size_t begin, size_t end) {
          AssignNearestModes(dataset, modes, begin, end,
                             next_labels.data() + begin);
          uint8_t changed = 0;
          for (size_t row = begin; row < end; ++row) {
            changed |= (next_labels[row] != labels[row]) ? 1 : 0;
          }
          shard_changed[chunk] = changed;
        },
        options.num_threads);
    labels.swap(next_labels);
    bool changed = false;
    for (uint8_t c : shard_changed) changed |= (c != 0);
    if (!changed && iter > 0) break;

    // Update: one fused sharded count pass over every attribute at once,
    // then per-cluster per-attribute mode update.
    DPX_ASSIGN_OR_RETURN(
        const std::vector<std::vector<Histogram>> hists,
        dataset.ComputeAllGroupHistograms(labels, k, options.num_threads));
    for (size_t a = 0; a < dims; ++a) {
      for (size_t c = 0; c < k; ++c) {
        if (hists[a][c].Total() > 0.0) modes[c][a] = hists[a][c].ArgMax();
      }
    }
    // Reseed empty clusters (into the existing mode storage, no allocation).
    std::vector<size_t> sizes = ClusterSizes(labels, k);
    for (size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) dataset.RowInto(rng.UniformInt(rows), &modes[c]);
    }
  }

  return std::unique_ptr<ClusteringFunction>(
      new ModeClustering(dataset.schema(), std::move(modes),
                         "k-modes(k=" + std::to_string(k) + ")"));
}

}  // namespace dpclustx
