#include "cluster/kmodes.h"

#include <limits>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace dpclustx {

namespace {

// Rows per shard of the Hamming assignment pass; each row costs O(k·dims).
constexpr size_t kAssignGrain = 1024;

}  // namespace

StatusOr<std::unique_ptr<ClusteringFunction>> FitKModes(
    const Dataset& dataset, const KModesOptions& options) {
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be >= 1");
  if (dataset.num_rows() < k) {
    return Status::InvalidArgument("dataset has fewer rows than clusters");
  }
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  Rng rng(options.seed);

  // Initialize modes with k distinct random rows.
  std::vector<std::vector<ValueCode>> modes;
  modes.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    modes.push_back(dataset.Row(rng.UniformInt(rows)));
  }

  std::vector<ClusterId> labels(rows, 0);
  const size_t chunks = ParallelForNumChunks(rows, kAssignGrain);
  std::vector<uint8_t> shard_changed(chunks, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment by Hamming distance: a pure per-row map, so any shard
    // schedule writes the same labels.
    ParallelFor(
        rows, kAssignGrain,
        [&](size_t chunk, size_t begin, size_t end) {
          shard_changed[chunk] = 0;
          for (size_t row = begin; row < end; ++row) {
            ClusterId best = 0;
            size_t best_dist = std::numeric_limits<size_t>::max();
            for (size_t c = 0; c < k; ++c) {
              size_t dist = 0;
              for (size_t a = 0; a < dims; ++a) {
                dist += (dataset.at(row, static_cast<AttrIndex>(a)) !=
                         modes[c][a])
                            ? 1
                            : 0;
              }
              if (dist < best_dist) {
                best_dist = dist;
                best = static_cast<ClusterId>(c);
              }
            }
            if (labels[row] != best) {
              labels[row] = best;
              shard_changed[chunk] = 1;
            }
          }
        },
        options.num_threads);
    bool changed = false;
    for (uint8_t c : shard_changed) changed |= (c != 0);
    if (!changed && iter > 0) break;

    // Update: one fused sharded count pass over every attribute at once,
    // then per-cluster per-attribute mode update.
    DPX_ASSIGN_OR_RETURN(
        const std::vector<std::vector<Histogram>> hists,
        dataset.ComputeAllGroupHistograms(labels, k, options.num_threads));
    for (size_t a = 0; a < dims; ++a) {
      for (size_t c = 0; c < k; ++c) {
        if (hists[a][c].Total() > 0.0) modes[c][a] = hists[a][c].ArgMax();
      }
    }
    // Reseed empty clusters.
    std::vector<size_t> sizes = ClusterSizes(labels, k);
    for (size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) modes[c] = dataset.Row(rng.UniformInt(rows));
    }
  }

  return std::unique_ptr<ClusteringFunction>(
      new ModeClustering(dataset.schema(), std::move(modes),
                         "k-modes(k=" + std::to_string(k) + ")"));
}

}  // namespace dpclustx
