// Gaussian mixture model clustering (EM, diagonal covariances) in the
// [0,1]^d categorical embedding. Evaluation method (v) of the paper. The
// fitted model is a total clustering function: a tuple is assigned to the
// component with the highest posterior responsibility.

#ifndef DPCLUSTX_CLUSTER_GMM_H_
#define DPCLUSTX_CLUSTER_GMM_H_

#include <memory>

#include "cluster/clustering.h"
#include "common/status.h"

namespace dpclustx {

struct GmmOptions {
  size_t num_components = 5;
  size_t max_iterations = 40;
  /// EM stops early when the mean log-likelihood improves by less than this.
  double tolerance = 1e-5;
  /// Lower bound on per-dimension variances, for numerical stability.
  double variance_floor = 1e-4;
  uint64_t seed = 1;
  /// Parallelism cap for the per-row E-step and M-step accumulation passes
  /// (0 = compute-pool width). Per-shard partial sums merge in fixed shard
  /// order, so the fit is identical for a given seed at any thread count.
  size_t num_threads = 0;
};

/// Clustering function backed by a fitted diagonal-covariance GMM.
class GmmClustering final : public ClusteringFunction {
 public:
  GmmClustering(Schema schema, std::vector<double> log_weights,
                std::vector<std::vector<double>> means,
                std::vector<std::vector<double>> variances);

  size_t num_clusters() const override { return means_.size(); }
  ClusterId Assign(const std::vector<ValueCode>& tuple) const override;
  std::string name() const override;
  void AssignBatch(const Dataset& dataset, size_t begin, size_t end,
                   ClusterId* out) const override;

  const std::vector<std::vector<double>>& means() const { return means_; }

  /// Max-posterior component for an already-embedded point.
  ClusterId AssignEmbedded(const double* point) const;

 private:
  Schema schema_;
  std::vector<double> log_weights_;
  std::vector<std::vector<double>> means_;
  std::vector<std::vector<double>> variances_;
  // Cached 1/var per component, so scoring multiplies instead of divides —
  // the same quad-form kernel (and thus the same float result) as the EM
  // E-step that produced the fit.
  std::vector<std::vector<double>> inv_variances_;
  std::vector<double> log_norm_;  // cached −½·Σ log(2π·var) per component
};

/// Fits a GMM by EM. Requires num_components >= 1 and at least
/// num_components rows.
StatusOr<std::unique_ptr<ClusteringFunction>> FitGmm(
    const Dataset& dataset, const GmmOptions& options);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_GMM_H_
