#include "cluster/dp_kmeans.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "data/kernels/kernel_table.h"
#include "dp/mechanisms.h"

namespace dpclustx {

StatusOr<std::unique_ptr<ClusteringFunction>> FitDpKMeans(
    const Dataset& dataset, const DpKMeansOptions& options,
    PrivacyBudget* budget) {
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be >= 1");
  if (options.iterations == 0) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (budget != nullptr) {
    DPX_RETURN_IF_ERROR(budget->Spend(options.epsilon, "dp-k-means"));
  }

  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  const std::vector<double> points = EmbedDataset(dataset);
  Rng rng(options.seed);

  // Data-independent initialization: uniform centers in the embedding cube.
  std::vector<std::vector<double>> centers(k, std::vector<double>(dims));
  for (auto& center : centers) {
    for (double& coord : center) coord = rng.UniformDouble();
  }

  const double eps_iter =
      options.epsilon / static_cast<double>(options.iterations);
  // Joint L1 sensitivity of (count, sum_1..sum_d) per iteration.
  const double sensitivity = static_cast<double>(dims) + 1.0;

  const kernels::KernelTable& kt = kernels::Active();
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    // Assignment (against the current noisy centers).
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<double> counts(k, 0.0);
    for (size_t row = 0; row < rows; ++row) {
      const double* point = &points[row * dims];
      ClusterId best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        const double dist =
            kt.squared_distance(point, centers[c].data(), dims);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<ClusterId>(c);
        }
      }
      counts[best] += 1.0;
      kt.axpy(1.0, point, sums[best].data(), dims);
    }

    // Noisy statistics release for this iteration.
    for (size_t c = 0; c < k; ++c) {
      DPX_ASSIGN_OR_RETURN(
          counts[c], LaplaceMechanism(counts[c], sensitivity, eps_iter, rng));
      for (size_t a = 0; a < dims; ++a) {
        DPX_ASSIGN_OR_RETURN(
            sums[c][a],
            LaplaceMechanism(sums[c][a], sensitivity, eps_iter, rng));
      }
    }

    // Center update from noisy statistics (post-processing). A cluster whose
    // noisy count is below 1 keeps its previous center.
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] < 1.0) continue;
      for (size_t a = 0; a < dims; ++a) {
        // Clamp into the embedding cube; noise can push coordinates outside.
        centers[c][a] =
            std::min(1.0, std::max(0.0, sums[c][a] / counts[c]));
      }
    }
  }

  return std::unique_ptr<ClusteringFunction>(new CentroidClustering(
      dataset.schema(), std::move(centers),
      "dp-k-means(k=" + std::to_string(k) + ")"));
}

}  // namespace dpclustx
