#include "cluster/kmeans.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/kernels/kernel_table.h"

namespace dpclustx {

namespace {

// Rows per shard of the fused assignment/accumulation pass. Each row costs
// O(k·dims) distance work, so shards amortize dispatch well below this size.
constexpr size_t kAssignGrain = 1024;

// The ISA-dispatched kernel uses the same fixed reduction structure as
// CentroidClustering::AssignEmbedded, so fitted labels and the serve-time
// assignment agree bitwise.
double SquaredDistance(const double* a, const double* b, size_t dims) {
  return kernels::Active().squared_distance(a, b, dims);
}

// k-means++ seeding: first center uniform, subsequent centers proportional
// to squared distance from the nearest chosen center.
std::vector<std::vector<double>> KMeansPlusPlusInit(
    const std::vector<double>& points, size_t rows, size_t dims, size_t k,
    Rng& rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  const size_t first = rng.UniformInt(rows);
  centers.emplace_back(points.begin() + static_cast<long>(first * dims),
                       points.begin() + static_cast<long>((first + 1) * dims));
  std::vector<double> nearest_sq(rows, std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    const std::vector<double>& latest = centers.back();
    for (size_t row = 0; row < rows; ++row) {
      nearest_sq[row] = std::min(
          nearest_sq[row],
          SquaredDistance(&points[row * dims], latest.data(), dims));
    }
    double total = 0.0;
    for (double d : nearest_sq) total += d;
    size_t chosen;
    if (total <= 0.0) {
      chosen = rng.UniformInt(rows);  // all points coincide with centers
    } else {
      chosen = rng.Categorical(nearest_sq.data(), rows);
    }
    centers.emplace_back(
        points.begin() + static_cast<long>(chosen * dims),
        points.begin() + static_cast<long>((chosen + 1) * dims));
  }
  return centers;
}

}  // namespace

StatusOr<std::unique_ptr<ClusteringFunction>> FitKMeans(
    const Dataset& dataset, const KMeansOptions& options) {
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be >= 1");
  if (dataset.num_rows() < k) {
    return Status::InvalidArgument("dataset has fewer rows than clusters");
  }
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  const std::vector<double> points = EmbedDataset(dataset);
  Rng rng(options.seed);

  std::vector<std::vector<double>> centers =
      KMeansPlusPlusInit(points, rows, dims, k, rng);
  std::vector<ClusterId> labels(rows, 0);

  // Per-shard accumulator of the fused assignment/update pass. Shard
  // boundaries depend only on (rows, grain), and shards merge in ascending
  // chunk order, so every thread count produces the same centers.
  struct ShardAccum {
    std::vector<double> sums;    // [c*dims + a]
    std::vector<size_t> counts;  // [c]
    bool changed = false;
  };
  const size_t chunks = ParallelForNumChunks(rows, kAssignGrain);
  std::vector<ShardAccum> shards(chunks);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Fused assignment + accumulation: each shard assigns its rows and folds
    // them into private sums/counts in the same sweep.
    ParallelFor(
        rows, kAssignGrain,
        [&](size_t chunk, size_t begin, size_t end) {
          const kernels::KernelTable& kt = kernels::Active();
          ShardAccum& shard = shards[chunk];
          shard.sums.assign(k * dims, 0.0);
          shard.counts.assign(k, 0);
          shard.changed = false;
          for (size_t row = begin; row < end; ++row) {
            ClusterId best = 0;
            double best_dist = std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < k; ++c) {
              const double dist = kt.squared_distance(
                  &points[row * dims], centers[c].data(), dims);
              if (dist < best_dist) {
                best_dist = dist;
                best = static_cast<ClusterId>(c);
              }
            }
            if (labels[row] != best) {
              labels[row] = best;
              shard.changed = true;
            }
            ++shard.counts[best];
            // Elementwise, so the kernel adds in the same per-slot order as
            // the scalar loop it replaces.
            kt.axpy(1.0, &points[row * dims], &shard.sums[best * dims], dims);
          }
        },
        options.num_threads);

    bool changed = false;
    for (const ShardAccum& shard : shards) changed |= shard.changed;
    if (!changed && iter > 0) break;

    // Update step: merge shard accumulators in ascending chunk order.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (const ShardAccum& shard : shards) {
      for (size_t c = 0; c < k; ++c) {
        counts[c] += shard.counts[c];
        for (size_t a = 0; a < dims; ++a) {
          sums[c][a] += shard.sums[c * dims + a];
        }
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster at a random point.
        const size_t row = rng.UniformInt(rows);
        centers[c].assign(points.begin() + static_cast<long>(row * dims),
                          points.begin() + static_cast<long>((row + 1) * dims));
        continue;
      }
      for (size_t a = 0; a < dims; ++a) {
        centers[c][a] = sums[c][a] / static_cast<double>(counts[c]);
      }
    }
  }

  return std::unique_ptr<ClusteringFunction>(
      new CentroidClustering(dataset.schema(), std::move(centers),
                             "k-means(k=" + std::to_string(k) + ")"));
}

}  // namespace dpclustx
