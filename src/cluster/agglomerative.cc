#include "cluster/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "data/kernels/kernel_table.h"

namespace dpclustx {

StatusOr<std::unique_ptr<ClusteringFunction>> FitAgglomerative(
    const Dataset& dataset, const AgglomerativeOptions& options) {
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be >= 1");
  if (dataset.num_rows() < k) {
    return Status::InvalidArgument("dataset has fewer rows than clusters");
  }
  Rng rng(options.seed);

  // Uniform sample without replacement (partial Fisher–Yates over indices).
  const size_t sample_size =
      std::max(k, std::min(options.max_sample, dataset.num_rows()));
  std::vector<uint32_t> all_rows(dataset.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);
  for (size_t i = 0; i < sample_size; ++i) {
    const size_t j = i + rng.UniformInt(all_rows.size() - i);
    std::swap(all_rows[i], all_rows[j]);
  }
  all_rows.resize(sample_size);
  const Dataset sample = dataset.SelectRows(all_rows);

  const size_t s = sample.num_rows();
  const size_t dims = sample.num_attributes();
  const std::vector<double> points = EmbedDataset(sample);

  // Active cluster state: member counts and pairwise average-linkage
  // distances, updated with the Lance–Williams recurrence.
  std::vector<bool> active(s, true);
  std::vector<double> weight(s, 1.0);
  std::vector<std::vector<uint32_t>> members(s);
  for (size_t i = 0; i < s; ++i) members[i] = {static_cast<uint32_t>(i)};

  const kernels::KernelTable& kt = kernels::Active();
  std::vector<double> dist(s * s, 0.0);
  for (size_t i = 0; i < s; ++i) {
    for (size_t j = i + 1; j < s; ++j) {
      const double d2 =
          kt.squared_distance(&points[i * dims], &points[j * dims], dims);
      dist[i * s + j] = dist[j * s + i] = std::sqrt(d2);
    }
  }

  // Greedy merging until k clusters remain.
  size_t num_active = s;
  while (num_active > k) {
    // Find the closest active pair.
    size_t best_i = 0, best_j = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < s; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < s; ++j) {
        if (!active[j]) continue;
        if (dist[i * s + j] < best) {
          best = dist[i * s + j];
          best_i = i;
          best_j = j;
        }
      }
    }
    // Merge j into i; average linkage:
    //   d(i∪j, l) = (w_i·d(i,l) + w_j·d(j,l)) / (w_i + w_j).
    const double wi = weight[best_i], wj = weight[best_j];
    for (size_t l = 0; l < s; ++l) {
      if (!active[l] || l == best_i || l == best_j) continue;
      const double merged =
          (wi * dist[best_i * s + l] + wj * dist[best_j * s + l]) / (wi + wj);
      dist[best_i * s + l] = dist[l * s + best_i] = merged;
    }
    weight[best_i] = wi + wj;
    members[best_i].insert(members[best_i].end(), members[best_j].begin(),
                           members[best_j].end());
    members[best_j].clear();
    active[best_j] = false;
    --num_active;
  }

  // Centroids of the k remaining clusters (in the embedding), then extend to
  // the full domain by nearest-centroid assignment.
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  for (size_t i = 0; i < s; ++i) {
    if (!active[i]) continue;
    std::vector<double> center(dims, 0.0);
    for (uint32_t member : members[i]) {
      for (size_t a = 0; a < dims; ++a) {
        center[a] += points[member * dims + a];
      }
    }
    for (double& coord : center) {
      coord /= static_cast<double>(members[i].size());
    }
    centers.push_back(std::move(center));
  }
  DPX_CHECK_EQ(centers.size(), k);

  return std::unique_ptr<ClusteringFunction>(new CentroidClustering(
      dataset.schema(), std::move(centers),
      "agglomerative(k=" + std::to_string(k) + ")"));
}

}  // namespace dpclustx
