// Clustering functions f : dom(R) → C.
//
// The paper (§2.2) models the output of a (possibly DP) clustering algorithm
// as a *total* function on the tuple domain, not just on the observed
// dataset: fixed centers (or any data-independent rule) define an assignment
// for every possible tuple, which is what makes the sequential-composition
// argument for "cluster privately, then explain privately" go through.
// DPClustX only ever uses a clustering through this black-box interface.
//
// Bulk labeling is batched: AssignAll shards the rows and makes ONE virtual
// AssignBatch call per shard, and each concrete clustering overrides
// AssignBatch with a contiguous tile kernel over the dataset's narrow
// column codes (data/column.h) — no per-row virtual dispatch, no per-row
// allocation. Per-row Assign and the batched kernels compute identical
// arithmetic, so labels are bitwise-identical between the two paths
// (tests/dataset_layout_test).

#ifndef DPCLUSTX_CLUSTER_CLUSTERING_H_
#define DPCLUSTX_CLUSTER_CLUSTERING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace dpclustx {

/// Cluster label.
using ClusterId = uint32_t;

/// Abstract clustering function. Implementations must be deterministic given
/// their internal state (all randomness happens at fitting time).
class ClusteringFunction {
 public:
  virtual ~ClusteringFunction() = default;

  /// Number of cluster labels |C|. Labels are 0 .. num_clusters()-1; a label
  /// may be empty on a particular dataset.
  virtual size_t num_clusters() const = 0;

  /// Assigns a cluster label to an arbitrary tuple of the schema's domain.
  virtual ClusterId Assign(const std::vector<ValueCode>& tuple) const = 0;

  /// Short description for reports ("k-means(k=5)").
  virtual std::string name() const = 0;

  /// Labels rows [begin, end) of `dataset`: out[i] is the label of row
  /// begin+i. Must equal Assign(dataset.Row(row)) for every row — the
  /// batched kernel is an execution strategy, never a different function.
  /// The default materializes each row into one reused scratch tuple and
  /// calls Assign (no per-row allocation); concrete clusterings override
  /// with columnar tile kernels. Called concurrently from AssignAll shards,
  /// so overrides must be const-thread-safe.
  virtual void AssignBatch(const Dataset& dataset, size_t begin, size_t end,
                           ClusterId* out) const;

  /// Labels every row of `dataset`: shards the rows and calls AssignBatch
  /// once per shard (one virtual call per ~2k rows instead of one per row).
  virtual std::vector<ClusterId> AssignAll(const Dataset& dataset) const;
};

/// Maps codes to numeric coordinates in [0, 1] per attribute
/// (code / (domain_size − 1), or 0.5 for single-value domains). This is the
/// paper's "map each domain value to a unique integer" embedding, rescaled so
/// DP sensitivity per coordinate is 1.
std::vector<double> EmbedTuple(const Schema& schema,
                               const std::vector<ValueCode>& tuple);

/// Embeds rows [begin, end) into `out` (row-major, (end−begin) ×
/// num_attributes doubles). The width-dispatched tile primitive behind
/// EmbedDataset and the centroid/GMM assignment kernels; all three therefore
/// produce identical coordinates. `scales`/`offsets` are per-attribute
/// precomputed factors (see EmbedScales).
void EmbedRows(const Dataset& dataset, size_t begin, size_t end,
               const double* scales, const double* offsets, double* out);

/// Per-attribute embedding factors: coordinate = offset[a] + scale[a]·code.
/// (scale = 1/(domain−1), offset = 0; singleton domains: scale = 0,
/// offset = 0.5.)
void EmbedScales(const Schema& schema, std::vector<double>* scales,
                 std::vector<double>* offsets);

/// Columnar embedding of a whole dataset; result is row-major
/// [num_rows × num_attributes].
std::vector<double> EmbedDataset(const Dataset& dataset);

/// Labels rows [begin, end) by minimum Hamming distance to `modes` (ties to
/// the lower label); out[i] is the label of row begin+i. Columnar tile
/// kernel over the narrow codes, shared by ModeClustering::AssignBatch and
/// the k-modes fitting loop. Distances are exact integers, so the result
/// equals the naive per-row argmin.
void AssignNearestModes(const Dataset& dataset,
                        const std::vector<std::vector<ValueCode>>& modes,
                        size_t begin, size_t end, ClusterId* out);

/// Clustering function defined by centroids in the [0,1]^d embedding; tuples
/// go to the nearest centroid in squared Euclidean distance (ties to the
/// lower label).
class CentroidClustering final : public ClusteringFunction {
 public:
  /// `centers` is row-major [k × num_attributes], in embedded coordinates.
  CentroidClustering(Schema schema, std::vector<std::vector<double>> centers,
                     std::string name);

  size_t num_clusters() const override { return centers_.size(); }
  ClusterId Assign(const std::vector<ValueCode>& tuple) const override;
  std::string name() const override { return name_; }
  void AssignBatch(const Dataset& dataset, size_t begin, size_t end,
                   ClusterId* out) const override;

  const std::vector<std::vector<double>>& centers() const { return centers_; }

  /// Nearest center to an already-embedded point.
  ClusterId AssignEmbedded(const double* point) const;

 private:
  Schema schema_;
  std::vector<std::vector<double>> centers_;
  std::string name_;
};

/// Clustering function defined by categorical mode vectors; tuples go to the
/// center with minimum Hamming distance (ties to the lower label).
class ModeClustering final : public ClusteringFunction {
 public:
  /// `modes[c]` is a full tuple of codes.
  ModeClustering(Schema schema, std::vector<std::vector<ValueCode>> modes,
                 std::string name);

  size_t num_clusters() const override { return modes_.size(); }
  ClusterId Assign(const std::vector<ValueCode>& tuple) const override;
  std::string name() const override { return name_; }
  void AssignBatch(const Dataset& dataset, size_t begin, size_t end,
                   ClusterId* out) const override;

  const std::vector<std::vector<ValueCode>>& modes() const { return modes_; }

 private:
  Schema schema_;
  std::vector<std::vector<ValueCode>> modes_;
  std::string name_;
};

/// Per-cluster row counts for a label vector. Requires every label <
/// num_clusters.
std::vector<size_t> ClusterSizes(const std::vector<ClusterId>& labels,
                                 size_t num_clusters);

/// Row indices of each cluster.
std::vector<std::vector<uint32_t>> ClusterRowIndices(
    const std::vector<ClusterId>& labels, size_t num_clusters);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_CLUSTERING_H_
