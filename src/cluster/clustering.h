// Clustering functions f : dom(R) → C.
//
// The paper (§2.2) models the output of a (possibly DP) clustering algorithm
// as a *total* function on the tuple domain, not just on the observed
// dataset: fixed centers (or any data-independent rule) define an assignment
// for every possible tuple, which is what makes the sequential-composition
// argument for "cluster privately, then explain privately" go through.
// DPClustX only ever uses a clustering through this black-box interface.

#ifndef DPCLUSTX_CLUSTER_CLUSTERING_H_
#define DPCLUSTX_CLUSTER_CLUSTERING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace dpclustx {

/// Cluster label.
using ClusterId = uint32_t;

/// Abstract clustering function. Implementations must be deterministic given
/// their internal state (all randomness happens at fitting time).
class ClusteringFunction {
 public:
  virtual ~ClusteringFunction() = default;

  /// Number of cluster labels |C|. Labels are 0 .. num_clusters()-1; a label
  /// may be empty on a particular dataset.
  virtual size_t num_clusters() const = 0;

  /// Assigns a cluster label to an arbitrary tuple of the schema's domain.
  virtual ClusterId Assign(const std::vector<ValueCode>& tuple) const = 0;

  /// Short description for reports ("k-means(k=5)").
  virtual std::string name() const = 0;

  /// Labels every row of `dataset`. The default implementation loops over
  /// Assign; subclasses may override with a columnar fast path.
  virtual std::vector<ClusterId> AssignAll(const Dataset& dataset) const;
};

/// Maps codes to numeric coordinates in [0, 1] per attribute
/// (code / (domain_size − 1), or 0.5 for single-value domains). This is the
/// paper's "map each domain value to a unique integer" embedding, rescaled so
/// DP sensitivity per coordinate is 1.
std::vector<double> EmbedTuple(const Schema& schema,
                               const std::vector<ValueCode>& tuple);

/// Columnar embedding of a whole dataset; result is row-major
/// [num_rows × num_attributes].
std::vector<double> EmbedDataset(const Dataset& dataset);

/// Clustering function defined by centroids in the [0,1]^d embedding; tuples
/// go to the nearest centroid in squared Euclidean distance (ties to the
/// lower label).
class CentroidClustering final : public ClusteringFunction {
 public:
  /// `centers` is row-major [k × num_attributes], in embedded coordinates.
  CentroidClustering(Schema schema, std::vector<std::vector<double>> centers,
                     std::string name);

  size_t num_clusters() const override { return centers_.size(); }
  ClusterId Assign(const std::vector<ValueCode>& tuple) const override;
  std::string name() const override { return name_; }
  std::vector<ClusterId> AssignAll(const Dataset& dataset) const override;

  const std::vector<std::vector<double>>& centers() const { return centers_; }

  /// Nearest center to an already-embedded point.
  ClusterId AssignEmbedded(const double* point) const;

 private:
  Schema schema_;
  std::vector<std::vector<double>> centers_;
  std::string name_;
};

/// Clustering function defined by categorical mode vectors; tuples go to the
/// center with minimum Hamming distance (ties to the lower label).
class ModeClustering final : public ClusteringFunction {
 public:
  /// `modes[c]` is a full tuple of codes.
  ModeClustering(Schema schema, std::vector<std::vector<ValueCode>> modes,
                 std::string name);

  size_t num_clusters() const override { return modes_.size(); }
  ClusterId Assign(const std::vector<ValueCode>& tuple) const override;
  std::string name() const override { return name_; }

  const std::vector<std::vector<ValueCode>>& modes() const { return modes_; }

 private:
  Schema schema_;
  std::vector<std::vector<ValueCode>> modes_;
  std::string name_;
};

/// Per-cluster row counts for a label vector. Requires every label <
/// num_clusters.
std::vector<size_t> ClusterSizes(const std::vector<ClusterId>& labels,
                                 size_t num_clusters);

/// Row indices of each cluster.
std::vector<std::vector<uint32_t>> ClusterRowIndices(
    const std::vector<ClusterId>& labels, size_t num_clusters);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_CLUSTERING_H_
