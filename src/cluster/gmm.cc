#include "cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/kernels/kernel_table.h"

namespace dpclustx {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // log(2π)

// Rows per shard of the E-step / M-step passes; each row costs O(k·dims).
constexpr size_t kRowGrain = 1024;

// Rows per tile of the batched assignment kernel; the embedded tile
// (64 × dims × 8 bytes) stays L1-resident while it is scored.
constexpr size_t kEmbedTileRows = 64;

}  // namespace

GmmClustering::GmmClustering(Schema schema, std::vector<double> log_weights,
                             std::vector<std::vector<double>> means,
                             std::vector<std::vector<double>> variances)
    : schema_(std::move(schema)),
      log_weights_(std::move(log_weights)),
      means_(std::move(means)),
      variances_(std::move(variances)) {
  DPX_CHECK(!means_.empty());
  DPX_CHECK_EQ(log_weights_.size(), means_.size());
  DPX_CHECK_EQ(variances_.size(), means_.size());
  log_norm_.resize(means_.size());
  inv_variances_.resize(means_.size());
  for (size_t c = 0; c < means_.size(); ++c) {
    DPX_CHECK_EQ(means_[c].size(), schema_.num_attributes());
    DPX_CHECK_EQ(variances_[c].size(), schema_.num_attributes());
    double log_det = 0.0;
    inv_variances_[c].resize(variances_[c].size());
    for (size_t a = 0; a < variances_[c].size(); ++a) {
      const double var = variances_[c][a];
      DPX_CHECK_GT(var, 0.0);
      log_det += std::log(var) + kLog2Pi;
      inv_variances_[c][a] = 1.0 / var;
    }
    log_norm_[c] = -0.5 * log_det;
  }
}

ClusterId GmmClustering::AssignEmbedded(const double* point) const {
  const size_t dims = schema_.num_attributes();
  const kernels::KernelTable& kt = kernels::Active();
  ClusterId best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < means_.size(); ++c) {
    const double quad = kt.quad_form(point, means_[c].data(),
                                     inv_variances_[c].data(), dims);
    const double score = log_weights_[c] + log_norm_[c] - 0.5 * quad;
    if (score > best_score) {
      best_score = score;
      best = static_cast<ClusterId>(c);
    }
  }
  return best;
}

ClusterId GmmClustering::Assign(const std::vector<ValueCode>& tuple) const {
  const std::vector<double> point = EmbedTuple(schema_, tuple);
  return AssignEmbedded(point.data());
}

std::string GmmClustering::name() const {
  return "gmm(k=" + std::to_string(means_.size()) + ")";
}

void GmmClustering::AssignBatch(const Dataset& dataset, size_t begin,
                                size_t end, ClusterId* out) const {
  DPX_CHECK_EQ(dataset.num_attributes(), schema_.num_attributes());
  const size_t dims = schema_.num_attributes();
  std::vector<double> scales, offsets;
  EmbedScales(dataset.schema(), &scales, &offsets);
  // Embed a tile straight from the narrow codes, score it while cache-hot
  // (the old AssignAll materialized the full n × d double matrix first).
  // Same per-row arithmetic, same labels.
  std::vector<double> tile(kEmbedTileRows * dims);
  for (size_t tb = begin; tb < end; tb += kEmbedTileRows) {
    const size_t te = std::min(end, tb + kEmbedTileRows);
    EmbedRows(dataset, tb, te, scales.data(), offsets.data(), tile.data());
    for (size_t row = tb; row < te; ++row) {
      out[row - begin] = AssignEmbedded(&tile[(row - tb) * dims]);
    }
  }
}

StatusOr<std::unique_ptr<ClusteringFunction>> FitGmm(
    const Dataset& dataset, const GmmOptions& options) {
  const size_t k = options.num_components;
  if (k == 0) return Status::InvalidArgument("num_components must be >= 1");
  if (dataset.num_rows() < k) {
    return Status::InvalidArgument("dataset has fewer rows than components");
  }
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  const std::vector<double> points = EmbedDataset(dataset);
  Rng rng(options.seed);

  // Initialization: means at random distinct-ish rows, shared global
  // variance, uniform weights.
  std::vector<std::vector<double>> means(k, std::vector<double>(dims));
  for (size_t c = 0; c < k; ++c) {
    const size_t row = rng.UniformInt(rows);
    for (size_t a = 0; a < dims; ++a) means[c][a] = points[row * dims + a];
  }
  std::vector<double> global_mean(dims, 0.0);
  for (size_t row = 0; row < rows; ++row) {
    for (size_t a = 0; a < dims; ++a) global_mean[a] += points[row * dims + a];
  }
  for (double& m : global_mean) m /= static_cast<double>(rows);
  std::vector<double> global_var(dims, 0.0);
  for (size_t row = 0; row < rows; ++row) {
    for (size_t a = 0; a < dims; ++a) {
      const double diff = points[row * dims + a] - global_mean[a];
      global_var[a] += diff * diff;
    }
  }
  for (double& v : global_var) {
    v = std::max(options.variance_floor, v / static_cast<double>(rows));
  }
  std::vector<std::vector<double>> vars(k, global_var);
  std::vector<double> log_weights(k, -std::log(static_cast<double>(k)));

  std::vector<double> resp(rows * k);
  double prev_ll = -std::numeric_limits<double>::infinity();

  // Per-shard partial sums. Shard boundaries depend only on (rows, grain)
  // and shards merge in ascending chunk order, so every thread count walks
  // the same floating-point summation tree.
  const size_t chunks = ParallelForNumChunks(rows, kRowGrain);
  std::vector<double> shard_ll(chunks, 0.0);
  std::vector<std::vector<double>> shard_nk(chunks);
  std::vector<std::vector<double>> shard_sums(chunks);  // [c*dims + a]
  std::vector<std::vector<double>> shard_sq(chunks);    // [c*dims + a]

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Cached normalization constants and inverted variances (the quad-form
    // kernel multiplies by 1/var; same inversion as GmmClustering's cache,
    // so the fitted model scores rows exactly as the final E-step did).
    std::vector<double> log_norm(k, 0.0);
    std::vector<std::vector<double>> inv_vars(k, std::vector<double>(dims));
    for (size_t c = 0; c < k; ++c) {
      for (size_t a = 0; a < dims; ++a) {
        log_norm[c] -= 0.5 * (std::log(vars[c][a]) + kLog2Pi);
        inv_vars[c][a] = 1.0 / vars[c][a];
      }
    }

    // E-step, fused with the M-step's responsibility accumulation: each
    // shard writes its rows of `resp` (disjoint) and folds log-likelihood,
    // component masses nk, and weighted coordinate sums into private
    // buffers.
    ParallelFor(
        rows, kRowGrain,
        [&](size_t chunk, size_t begin, size_t end) {
          const kernels::KernelTable& kt = kernels::Active();
          shard_ll[chunk] = 0.0;
          shard_nk[chunk].assign(k, 0.0);
          shard_sums[chunk].assign(k * dims, 0.0);
          std::vector<double> log_probs(k);
          for (size_t row = begin; row < end; ++row) {
            const double* point = &points[row * dims];
            for (size_t c = 0; c < k; ++c) {
              const double quad = kt.quad_form(point, means[c].data(),
                                               inv_vars[c].data(), dims);
              log_probs[c] = log_weights[c] + log_norm[c] - 0.5 * quad;
            }
            const double lse = LogSumExp(log_probs);
            shard_ll[chunk] += lse;
            for (size_t c = 0; c < k; ++c) {
              const double r = std::exp(log_probs[c] - lse);
              resp[row * k + c] = r;
              shard_nk[chunk][c] += r;
              kt.axpy(r, point, &shard_sums[chunk][c * dims], dims);
            }
          }
        },
        options.num_threads);

    double total_ll = 0.0;
    std::vector<double> nk(k, 0.0);
    std::vector<double> sums(k * dims, 0.0);
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      total_ll += shard_ll[chunk];
      for (size_t c = 0; c < k; ++c) nk[c] += shard_nk[chunk][c];
      for (size_t i = 0; i < k * dims; ++i) sums[i] += shard_sums[chunk][i];
    }

    // M-step, means and dead-component reseeds. Reseeds consume the rng in
    // ascending component order, matching the serial formulation.
    std::vector<uint8_t> dead(k, 0);
    for (size_t c = 0; c < k; ++c) {
      if (nk[c] < 1e-9) {
        // Dead component: reseed at a random point with the global variance.
        dead[c] = 1;
        const size_t row = rng.UniformInt(rows);
        for (size_t a = 0; a < dims; ++a) {
          means[c][a] = points[row * dims + a];
        }
        vars[c] = global_var;
        log_weights[c] = std::log(1.0 / static_cast<double>(rows));
        continue;
      }
      for (size_t a = 0; a < dims; ++a) {
        means[c][a] = sums[c * dims + a] / nk[c];
      }
      log_weights[c] = std::log(nk[c] / static_cast<double>(rows));
    }

    // M-step, variances: needs the updated means, so it is a second sharded
    // pass over the rows.
    ParallelFor(
        rows, kRowGrain,
        [&](size_t chunk, size_t begin, size_t end) {
          const kernels::KernelTable& kt = kernels::Active();
          shard_sq[chunk].assign(k * dims, 0.0);
          for (size_t row = begin; row < end; ++row) {
            const double* point = &points[row * dims];
            for (size_t c = 0; c < k; ++c) {
              if (dead[c]) continue;
              kt.weighted_sq_acc(resp[row * k + c], point, means[c].data(),
                                 &shard_sq[chunk][c * dims], dims);
            }
          }
        },
        options.num_threads);
    for (size_t c = 0; c < k; ++c) {
      if (dead[c]) continue;
      for (size_t a = 0; a < dims; ++a) {
        double sq = 0.0;
        for (size_t chunk = 0; chunk < chunks; ++chunk) {
          sq += shard_sq[chunk][c * dims + a];
        }
        vars[c][a] = std::max(options.variance_floor, sq / nk[c]);
      }
    }

    const double mean_ll = total_ll / static_cast<double>(rows);
    if (iter > 0 && mean_ll - prev_ll < options.tolerance) break;
    prev_ll = mean_ll;
  }

  return std::unique_ptr<ClusteringFunction>(new GmmClustering(
      dataset.schema(), std::move(log_weights), std::move(means),
      std::move(vars)));
}

}  // namespace dpclustx
