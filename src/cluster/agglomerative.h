// Agglomerative (hierarchical) clustering with average linkage.
//
// Evaluation method (iv) of the paper. Exact hierarchical clustering is
// O(n²) in memory, which is why the paper excludes it from the Census runs;
// we fit on a uniform row sample, cut the dendrogram at k clusters, and
// extend to the full domain by nearest-centroid assignment in the [0,1]^d
// embedding (which also makes the result a total clustering function, as
// DPClustX requires).

#ifndef DPCLUSTX_CLUSTER_AGGLOMERATIVE_H_
#define DPCLUSTX_CLUSTER_AGGLOMERATIVE_H_

#include <memory>

#include "cluster/clustering.h"
#include "common/status.h"

namespace dpclustx {

struct AgglomerativeOptions {
  size_t num_clusters = 5;
  /// Rows sampled for the O(s²) linkage computation.
  size_t max_sample = 400;
  uint64_t seed = 1;
};

/// Fits sampled average-linkage agglomerative clustering. Requires
/// num_clusters >= 1 and at least num_clusters rows.
StatusOr<std::unique_ptr<ClusteringFunction>> FitAgglomerative(
    const Dataset& dataset, const AgglomerativeOptions& options);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_AGGLOMERATIVE_H_
