#include "cluster/clustering.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/kernels/kernel_table.h"

namespace dpclustx {

namespace {

// Rows per shard of AssignAll / EmbedDataset. Assignments are pure per-row
// maps into disjoint label slots, so any shard schedule writes the same
// labels.
constexpr size_t kAssignGrain = 2048;

// Rows per tile of the Hamming kernel; the distance block
// (k × 256 × 4 bytes) and its narrow partials stay in L1 while every
// attribute streams over it.
constexpr size_t kTileRows = 256;

// Rows per tile of the embedding kernels. The embedded block is written
// once per attribute in dims-strided doubles, so it must fit in L1 to make
// those re-touches free: 64 × dims × 8 bytes ≈ 35 KB at Census width.
constexpr size_t kEmbedTileRows = 64;

}  // namespace

void ClusteringFunction::AssignBatch(const Dataset& dataset, size_t begin,
                                     size_t end, ClusterId* out) const {
  // Fallback for clusterings without a columnar kernel: one scratch tuple
  // reused across the whole batch instead of a fresh allocation per row.
  std::vector<ValueCode> scratch;
  scratch.reserve(dataset.num_attributes());
  for (size_t row = begin; row < end; ++row) {
    dataset.RowInto(row, &scratch);
    out[row - begin] = Assign(scratch);
  }
}

std::vector<ClusterId> ClusteringFunction::AssignAll(
    const Dataset& dataset) const {
  std::vector<ClusterId> labels(dataset.num_rows());
  ParallelFor(dataset.num_rows(), kAssignGrain,
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                AssignBatch(dataset, begin, end, labels.data() + begin);
              });
  return labels;
}

void EmbedScales(const Schema& schema, std::vector<double>* scales,
                 std::vector<double>* offsets) {
  const size_t dims = schema.num_attributes();
  scales->resize(dims);
  offsets->resize(dims);
  for (size_t a = 0; a < dims; ++a) {
    const size_t domain = schema.attribute(static_cast<AttrIndex>(a))
                              .domain_size();
    (*scales)[a] = domain > 1 ? 1.0 / static_cast<double>(domain - 1) : 0.0;
    (*offsets)[a] = domain > 1 ? 0.0 : 0.5;
  }
}

std::vector<double> EmbedTuple(const Schema& schema,
                               const std::vector<ValueCode>& tuple) {
  DPX_CHECK_EQ(tuple.size(), schema.num_attributes());
  std::vector<double> point(tuple.size());
  for (size_t a = 0; a < tuple.size(); ++a) {
    const size_t domain = schema.attribute(static_cast<AttrIndex>(a))
                              .domain_size();
    // Same scale/offset arithmetic as EmbedRows, so the per-tuple and
    // batched paths produce bitwise-identical coordinates.
    const double scale =
        domain > 1 ? 1.0 / static_cast<double>(domain - 1) : 0.0;
    const double offset = domain > 1 ? 0.0 : 0.5;
    point[a] = offset + scale * static_cast<double>(tuple[a]);
  }
  return point;
}

void EmbedRows(const Dataset& dataset, size_t begin, size_t end,
               const double* scales, const double* offsets, double* out) {
  const size_t dims = dataset.num_attributes();
  const kernels::KernelTable& kt = kernels::Active();
  for (size_t a = 0; a < dims; ++a) {
    VisitColumn(dataset.column(static_cast<AttrIndex>(a)),
                [&](const auto* codes) {
                  kernels::EmbedFn(kt, codes)(codes, begin, end, scales[a],
                                              offsets[a], out + a, dims);
                });
  }
}

std::vector<double> EmbedDataset(const Dataset& dataset) {
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  std::vector<double> points(rows * dims);
  std::vector<double> scales, offsets;
  EmbedScales(dataset.schema(), &scales, &offsets);
  // Tiled so each output block is written while cache-resident (the old
  // whole-column sweep re-touched every output cache line once per
  // attribute). Elementwise writes into disjoint slots: identical output at
  // any thread count and tile size.
  ParallelFor(rows, kAssignGrain,
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t tb = begin; tb < end; tb += kEmbedTileRows) {
                  const size_t te = std::min(end, tb + kEmbedTileRows);
                  EmbedRows(dataset, tb, te, scales.data(), offsets.data(),
                            points.data() + tb * dims);
                }
              });
  return points;
}

namespace {

// Accumulates per-mode mismatch counts for one width class of attributes
// into `dist[c·kTileRows + r]`. The compare and the add run at the codes'
// own width (T partials, T-cast mode codes), so the inner loop vectorizes
// at full lane width instead of widening every element to 32 bits; partials
// flush into the 32-bit distances every ≤ max(T) attributes, before they
// can overflow. Hamming distance is a sum of exact 0/1 integers, so
// processing attributes per width class (rather than in schema order)
// changes nothing about the result.
template <typename T>
void AccumulateMismatches(const Dataset& dataset,
                          const std::vector<AttrIndex>& attrs,
                          const std::vector<std::vector<ValueCode>>& modes,
                          size_t tb, size_t n, const T* (ColumnView::*ptr)()
                              const,
                          std::vector<T>& partial, uint32_t* dist) {
  const size_t k = modes.size();
  const size_t block = std::numeric_limits<T>::max();
  const kernels::KernelTable& kt = kernels::Active();
  for (size_t ab = 0; ab < attrs.size(); ab += block) {
    const size_t ae = std::min(attrs.size(), ab + block);
    std::fill(partial.begin(), partial.end(), T{0});
    for (size_t i = ab; i < ae; ++i) {
      const AttrIndex a = attrs[i];
      const T* col = (dataset.column(a).*ptr)() + tb;
      for (size_t c = 0; c < k; ++c) {
        kernels::HammingFn(kt, col)(col, n, static_cast<T>(modes[c][a]),
                                    partial.data() + c * kTileRows);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      const T* __restrict p = partial.data() + c * kTileRows;
      uint32_t* __restrict d = dist + c * kTileRows;
      for (size_t r = 0; r < n; ++r) d[r] += p[r];
    }
  }
}

}  // namespace

void AssignNearestModes(const Dataset& dataset,
                        const std::vector<std::vector<ValueCode>>& modes,
                        size_t begin, size_t end, ClusterId* out) {
  const size_t k = modes.size();
  const size_t dims = dataset.num_attributes();
  DPX_CHECK_GT(k, 0u);
  // Attributes partitioned by storage width, so each class accumulates at
  // its own lane width (see AccumulateMismatches).
  std::vector<AttrIndex> attrs8, attrs16, attrs32;
  for (size_t a = 0; a < dims; ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    switch (dataset.column_width(attr)) {
      case ColumnWidth::k8: attrs8.push_back(attr); break;
      case ColumnWidth::k16: attrs16.push_back(attr); break;
      case ColumnWidth::k32: attrs32.push_back(attr); break;
    }
  }
  // Distance block dist[c·kTileRows + r]: contiguous in r, as are the
  // narrow per-class partials.
  std::vector<uint32_t> dist(k * kTileRows);
  std::vector<uint8_t> partial8(attrs8.empty() ? 0 : k * kTileRows);
  std::vector<uint16_t> partial16(attrs16.empty() ? 0 : k * kTileRows);
  for (size_t tb = begin; tb < end; tb += kTileRows) {
    const size_t te = std::min(end, tb + kTileRows);
    const size_t n = te - tb;
    std::fill(dist.begin(), dist.end(), 0u);
    if (!attrs8.empty()) {
      AccumulateMismatches<uint8_t>(dataset, attrs8, modes, tb, n,
                                    &ColumnView::u8, partial8, dist.data());
    }
    if (!attrs16.empty()) {
      AccumulateMismatches<uint16_t>(dataset, attrs16, modes, tb, n,
                                     &ColumnView::u16, partial16,
                                     dist.data());
    }
    // 32-bit attributes accumulate straight into the distance block — the
    // partial and the distance share a width, so no flush step is needed.
    const kernels::KernelTable& kt = kernels::Active();
    for (const AttrIndex a : attrs32) {
      const uint32_t* col = dataset.column(a).u32() + tb;
      for (size_t c = 0; c < k; ++c) {
        kt.hamming_u32(col, n, modes[c][a], dist.data() + c * kTileRows);
      }
    }
    // Hamming distances are exact integers, so this argmin (ties to the
    // lower label) matches the per-row Assign scan exactly.
    for (size_t r = 0; r < n; ++r) {
      ClusterId best = 0;
      uint32_t best_dist = dist[r];
      for (size_t c = 1; c < k; ++c) {
        const uint32_t dc = dist[c * kTileRows + r];
        if (dc < best_dist) {
          best_dist = dc;
          best = static_cast<ClusterId>(c);
        }
      }
      out[tb - begin + r] = best;
    }
  }
}

CentroidClustering::CentroidClustering(
    Schema schema, std::vector<std::vector<double>> centers, std::string name)
    : schema_(std::move(schema)),
      centers_(std::move(centers)),
      name_(std::move(name)) {
  DPX_CHECK(!centers_.empty());
  for (const auto& center : centers_) {
    DPX_CHECK_EQ(center.size(), schema_.num_attributes());
  }
}

ClusterId CentroidClustering::AssignEmbedded(const double* point) const {
  const size_t dims = schema_.num_attributes();
  const kernels::KernelTable& kt = kernels::Active();
  ClusterId best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers_.size(); ++c) {
    const double dist = kt.squared_distance(point, centers_[c].data(), dims);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<ClusterId>(c);
    }
  }
  return best;
}

ClusterId CentroidClustering::Assign(
    const std::vector<ValueCode>& tuple) const {
  const std::vector<double> point = EmbedTuple(schema_, tuple);
  return AssignEmbedded(point.data());
}

void CentroidClustering::AssignBatch(const Dataset& dataset, size_t begin,
                                     size_t end, ClusterId* out) const {
  DPX_CHECK_EQ(dataset.num_attributes(), schema_.num_attributes());
  const size_t dims = schema_.num_attributes();
  std::vector<double> scales, offsets;
  EmbedScales(dataset.schema(), &scales, &offsets);
  // Embed one tile at a time straight from the narrow codes — the old path
  // materialized the full n × d double matrix first — then score it against
  // the centers while it is cache-hot. Same per-row arithmetic, same labels.
  std::vector<double> tile(kEmbedTileRows * dims);
  for (size_t tb = begin; tb < end; tb += kEmbedTileRows) {
    const size_t te = std::min(end, tb + kEmbedTileRows);
    EmbedRows(dataset, tb, te, scales.data(), offsets.data(), tile.data());
    for (size_t row = tb; row < te; ++row) {
      out[row - begin] = AssignEmbedded(&tile[(row - tb) * dims]);
    }
  }
}

ModeClustering::ModeClustering(Schema schema,
                               std::vector<std::vector<ValueCode>> modes,
                               std::string name)
    : schema_(std::move(schema)),
      modes_(std::move(modes)),
      name_(std::move(name)) {
  DPX_CHECK(!modes_.empty());
  for (const auto& mode : modes_) {
    DPX_CHECK_EQ(mode.size(), schema_.num_attributes());
  }
}

ClusterId ModeClustering::Assign(const std::vector<ValueCode>& tuple) const {
  DPX_CHECK_EQ(tuple.size(), schema_.num_attributes());
  ClusterId best = 0;
  size_t best_dist = std::numeric_limits<size_t>::max();
  for (size_t c = 0; c < modes_.size(); ++c) {
    size_t dist = 0;
    for (size_t a = 0; a < tuple.size(); ++a) {
      dist += (tuple[a] != modes_[c][a]) ? 1 : 0;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<ClusterId>(c);
    }
  }
  return best;
}

void ModeClustering::AssignBatch(const Dataset& dataset, size_t begin,
                                 size_t end, ClusterId* out) const {
  DPX_CHECK_EQ(dataset.num_attributes(), schema_.num_attributes());
  AssignNearestModes(dataset, modes_, begin, end, out);
}

std::vector<size_t> ClusterSizes(const std::vector<ClusterId>& labels,
                                 size_t num_clusters) {
  std::vector<size_t> sizes(num_clusters, 0);
  for (ClusterId label : labels) {
    DPX_CHECK_LT(label, num_clusters);
    ++sizes[label];
  }
  return sizes;
}

std::vector<std::vector<uint32_t>> ClusterRowIndices(
    const std::vector<ClusterId>& labels, size_t num_clusters) {
  std::vector<std::vector<uint32_t>> indices(num_clusters);
  for (size_t row = 0; row < labels.size(); ++row) {
    DPX_CHECK_LT(labels[row], num_clusters);
    indices[labels[row]].push_back(static_cast<uint32_t>(row));
  }
  return indices;
}

}  // namespace dpclustx
