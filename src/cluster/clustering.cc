#include "cluster/clustering.h"

#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace dpclustx {

namespace {

// Rows per shard of the AssignAll fast paths. Assignments are pure per-row
// maps into disjoint label slots, so any shard schedule writes the same
// labels.
constexpr size_t kAssignGrain = 2048;

}  // namespace

std::vector<ClusterId> ClusteringFunction::AssignAll(
    const Dataset& dataset) const {
  std::vector<ClusterId> labels(dataset.num_rows());
  ParallelFor(dataset.num_rows(), kAssignGrain,
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t row = begin; row < end; ++row) {
                  labels[row] = Assign(dataset.Row(row));
                }
              });
  return labels;
}

std::vector<double> EmbedTuple(const Schema& schema,
                               const std::vector<ValueCode>& tuple) {
  DPX_CHECK_EQ(tuple.size(), schema.num_attributes());
  std::vector<double> point(tuple.size());
  for (size_t a = 0; a < tuple.size(); ++a) {
    const size_t domain = schema.attribute(static_cast<AttrIndex>(a))
                              .domain_size();
    point[a] = domain > 1 ? static_cast<double>(tuple[a]) /
                                static_cast<double>(domain - 1)
                          : 0.5;
  }
  return point;
}

std::vector<double> EmbedDataset(const Dataset& dataset) {
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  std::vector<double> points(rows * dims);
  for (size_t a = 0; a < dims; ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    const size_t domain = dataset.schema().attribute(attr).domain_size();
    const double scale =
        domain > 1 ? 1.0 / static_cast<double>(domain - 1) : 0.0;
    const double offset = domain > 1 ? 0.0 : 0.5;
    const std::vector<ValueCode>& col = dataset.column(attr);
    for (size_t row = 0; row < rows; ++row) {
      points[row * dims + a] =
          offset + scale * static_cast<double>(col[row]);
    }
  }
  return points;
}

CentroidClustering::CentroidClustering(
    Schema schema, std::vector<std::vector<double>> centers, std::string name)
    : schema_(std::move(schema)),
      centers_(std::move(centers)),
      name_(std::move(name)) {
  DPX_CHECK(!centers_.empty());
  for (const auto& center : centers_) {
    DPX_CHECK_EQ(center.size(), schema_.num_attributes());
  }
}

ClusterId CentroidClustering::AssignEmbedded(const double* point) const {
  const size_t dims = schema_.num_attributes();
  ClusterId best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers_.size(); ++c) {
    double dist = 0.0;
    const std::vector<double>& center = centers_[c];
    for (size_t a = 0; a < dims; ++a) {
      const double diff = point[a] - center[a];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<ClusterId>(c);
    }
  }
  return best;
}

ClusterId CentroidClustering::Assign(
    const std::vector<ValueCode>& tuple) const {
  const std::vector<double> point = EmbedTuple(schema_, tuple);
  return AssignEmbedded(point.data());
}

std::vector<ClusterId> CentroidClustering::AssignAll(
    const Dataset& dataset) const {
  DPX_CHECK_EQ(dataset.num_attributes(), schema_.num_attributes());
  const std::vector<double> points = EmbedDataset(dataset);
  const size_t dims = schema_.num_attributes();
  std::vector<ClusterId> labels(dataset.num_rows());
  ParallelFor(dataset.num_rows(), kAssignGrain,
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t row = begin; row < end; ++row) {
                  labels[row] = AssignEmbedded(&points[row * dims]);
                }
              });
  return labels;
}

ModeClustering::ModeClustering(Schema schema,
                               std::vector<std::vector<ValueCode>> modes,
                               std::string name)
    : schema_(std::move(schema)),
      modes_(std::move(modes)),
      name_(std::move(name)) {
  DPX_CHECK(!modes_.empty());
  for (const auto& mode : modes_) {
    DPX_CHECK_EQ(mode.size(), schema_.num_attributes());
  }
}

ClusterId ModeClustering::Assign(const std::vector<ValueCode>& tuple) const {
  DPX_CHECK_EQ(tuple.size(), schema_.num_attributes());
  ClusterId best = 0;
  size_t best_dist = std::numeric_limits<size_t>::max();
  for (size_t c = 0; c < modes_.size(); ++c) {
    size_t dist = 0;
    for (size_t a = 0; a < tuple.size(); ++a) {
      dist += (tuple[a] != modes_[c][a]) ? 1 : 0;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<ClusterId>(c);
    }
  }
  return best;
}

std::vector<size_t> ClusterSizes(const std::vector<ClusterId>& labels,
                                 size_t num_clusters) {
  std::vector<size_t> sizes(num_clusters, 0);
  for (ClusterId label : labels) {
    DPX_CHECK_LT(label, num_clusters);
    ++sizes[label];
  }
  return sizes;
}

std::vector<std::vector<uint32_t>> ClusterRowIndices(
    const std::vector<ClusterId>& labels, size_t num_clusters) {
  std::vector<std::vector<uint32_t>> indices(num_clusters);
  for (size_t row = 0; row < labels.size(); ++row) {
    DPX_CHECK_LT(labels[row], num_clusters);
    indices[labels[row]].push_back(static_cast<uint32_t>(row));
  }
  return indices;
}

}  // namespace dpclustx
