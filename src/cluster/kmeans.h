// Lloyd's k-means in the [0,1]^d categorical embedding, with k-means++
// initialization. The non-private clustering baseline of the paper's
// evaluation (§6.1, method (i)).

#ifndef DPCLUSTX_CLUSTER_KMEANS_H_
#define DPCLUSTX_CLUSTER_KMEANS_H_

#include <memory>

#include "cluster/clustering.h"
#include "common/status.h"

namespace dpclustx {

struct KMeansOptions {
  size_t num_clusters = 5;
  size_t max_iterations = 50;
  /// Stop when no assignment changes (always also bounded by
  /// max_iterations).
  uint64_t seed = 1;
  /// Parallelism cap for the per-row assignment/accumulation pass
  /// (0 = compute-pool width). Chunked accumulators merge in fixed shard
  /// order, so the fit is identical for a given seed at any thread count.
  size_t num_threads = 0;
};

/// Fits k-means on `dataset`. Requires num_clusters >= 1 and a non-empty
/// dataset with at least num_clusters rows.
StatusOr<std::unique_ptr<ClusteringFunction>> FitKMeans(
    const Dataset& dataset, const KMeansOptions& options);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_KMEANS_H_
