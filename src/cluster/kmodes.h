// k-modes clustering (Huang 1998): the categorical analogue of k-means.
// Centers are mode vectors; distance is Hamming distance; the update step
// sets each center coordinate to the in-cluster mode. Evaluation method
// (iii) of the paper.

#ifndef DPCLUSTX_CLUSTER_KMODES_H_
#define DPCLUSTX_CLUSTER_KMODES_H_

#include <memory>

#include "cluster/clustering.h"
#include "common/status.h"

namespace dpclustx {

struct KModesOptions {
  size_t num_clusters = 5;
  size_t max_iterations = 30;
  uint64_t seed = 1;
  /// Parallelism cap for the assignment pass and the fused count-based mode
  /// update (0 = compute-pool width). Assignment is a pure per-row map and
  /// the update merges integer counts, so the fit is identical for a given
  /// seed at any thread count.
  size_t num_threads = 0;
};

/// Fits k-modes on `dataset`. Requires num_clusters >= 1 and at least
/// num_clusters rows.
StatusOr<std::unique_ptr<ClusteringFunction>> FitKModes(
    const Dataset& dataset, const KModesOptions& options);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_KMODES_H_
