// Differentially private k-means (DPLloyd, Su et al. 2016).
//
// The paper clusters with DP-k-means at ε = 1 before explaining (§6.1). Each
// of a fixed number of Lloyd iterations releases noisy cluster counts and
// noisy per-dimension coordinate sums under the Laplace mechanism, then
// recomputes centers from the noisy statistics. In the [0,1]^d embedding,
// adding or removing one tuple changes one cluster's count by 1 and its sums
// by at most 1 per dimension, so the L1 sensitivity of the per-iteration
// release is d + 1; the per-iteration budget is ε / max_iterations.
// Initialization draws centers uniformly from [0,1]^d (data-independent, so
// it costs no budget).

#ifndef DPCLUSTX_CLUSTER_DP_KMEANS_H_
#define DPCLUSTX_CLUSTER_DP_KMEANS_H_

#include <memory>

#include "cluster/clustering.h"
#include "common/status.h"
#include "dp/privacy_budget.h"

namespace dpclustx {

struct DpKMeansOptions {
  size_t num_clusters = 5;
  /// DPLloyd runs a small fixed number of iterations; more iterations split
  /// the budget thinner per iteration.
  size_t iterations = 5;
  /// Total privacy budget ε_clust of the clustering step.
  double epsilon = 1.0;
  uint64_t seed = 1;
};

/// Fits DP-k-means. The returned clustering function (its centers) is an
/// ε-DP release; composing with a DPClustX explanation at ε_exp gives
/// (ε + ε_exp)-DP overall (paper §3). If `budget` is non-null, ε is charged
/// to it (and the fit fails with OutOfBudget if it does not fit).
StatusOr<std::unique_ptr<ClusteringFunction>> FitDpKMeans(
    const Dataset& dataset, const DpKMeansOptions& options,
    PrivacyBudget* budget = nullptr);

}  // namespace dpclustx

#endif  // DPCLUSTX_CLUSTER_DP_KMEANS_H_
