// Per-(cluster, attribute) count statistics, computed once per explanation
// run.
//
// Every quality function in DPClustX — low-sensitivity or original — is a
// function of the exact histograms h_A(D) and h_A(D_c). One O(n·d) pass over
// the columnar dataset materializes all of them, after which every score
// evaluation is O(domain size). This realizes the paper's complexity budget
// of O(|A|·|C|) count group-by queries for Stage-1 and makes the k^|C|
// enumeration of Stage-2 cheap.
//
// The cache holds *exact* counts of the sensitive dataset. It must never be
// released; only DP mechanism outputs derived from it leave the framework.

#ifndef DPCLUSTX_CORE_STATS_CACHE_H_
#define DPCLUSTX_CORE_STATS_CACHE_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "data/dataset.h"

namespace dpclustx {

class StatsCache {
 public:
  /// Builds the cache from a dataset and per-row cluster labels. Requires
  /// labels.size() == dataset.num_rows() and every label < num_clusters.
  /// num_clusters may exceed the number of labels present (empty clusters
  /// are legal throughout the framework). The counting pass is one fused
  /// sharded sweep over all columns (Dataset::ComputeAllGroupHistograms);
  /// `num_threads` caps its parallelism (0 = compute-pool width) and never
  /// changes the result — shards merge by exact integer addition, so the
  /// cache is bitwise-identical at any thread count.
  static StatusOr<StatsCache> Build(const Dataset& dataset,
                                    const std::vector<ClusterId>& labels,
                                    size_t num_clusters,
                                    size_t num_threads = 0);

  /// Delta-build for append-only ingest: extends `base` with the rows of
  /// `tail` (same schema) labeled by `tail_labels`. Every histogram bin is
  /// an integer-valued double far below 2^53, so adding the tail's exact
  /// counts onto the base's is exact and associative — the result is
  /// bitwise-identical to a cold Build over the concatenated dataset, at
  /// any thread count and ISA level (tests/dataset_layout_test enforces
  /// this). Cost is O(tail), not O(base + tail).
  static StatusOr<StatsCache> BuildAppended(
      const StatsCache& base, const Dataset& tail,
      const std::vector<ClusterId>& tail_labels, size_t num_threads = 0);

  /// Builds a cache directly from histograms — used by the DP-Naive baseline
  /// to evaluate quality functions over *noisy* counts as post-processing.
  /// `cluster_histograms[attr][cluster]`; all histograms of attribute `attr`
  /// must share dom(attr). Cluster sizes are inferred from the histogram
  /// totals of attribute 0 and the row count from its full histogram.
  static StatusOr<StatsCache> FromHistograms(
      Schema schema, std::vector<Histogram> full_histograms,
      std::vector<std::vector<Histogram>> cluster_histograms);

  const Schema& schema() const { return schema_; }
  size_t num_clusters() const { return cluster_sizes_.size(); }
  size_t num_attributes() const { return full_histograms_.size(); }
  size_t num_rows() const { return num_rows_; }

  size_t cluster_size(ClusterId c) const { return cluster_sizes_[c]; }
  const std::vector<size_t>& cluster_sizes() const { return cluster_sizes_; }

  /// Exact h_A(D).
  const Histogram& full_histogram(AttrIndex attr) const {
    return full_histograms_[attr];
  }

  /// Exact h_A(D_c).
  const Histogram& cluster_histogram(ClusterId c, AttrIndex attr) const {
    return cluster_histograms_[attr][c];
  }

 private:
  StatsCache() = default;

  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<size_t> cluster_sizes_;
  std::vector<Histogram> full_histograms_;                 // [attr]
  std::vector<std::vector<Histogram>> cluster_histograms_; // [attr][cluster]
};

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_STATS_CACHE_H_
