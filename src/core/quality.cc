#include "core/quality.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dpclustx {

Status GlobalWeights::Validate() const {
  if (interestingness < 0.0 || sufficiency < 0.0 || diversity < 0.0) {
    return Status::InvalidArgument("global weights must be non-negative");
  }
  const double sum = interestingness + sufficiency + diversity;
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("global weights must sum to 1; got " +
                                   std::to_string(sum));
  }
  return Status::OK();
}

SingleClusterWeights GlobalWeights::ConditionalSingleClusterWeights() const {
  const double denom = interestingness + sufficiency;
  if (denom <= 0.0) return {0.5, 0.5};
  return {interestingness / denom, sufficiency / denom};
}

double InterestingnessP(const StatsCache& stats, ClusterId c,
                        AttrIndex attr) {
  const Histogram& cluster = stats.cluster_histogram(c, attr);
  const Histogram& full = stats.full_histogram(attr);
  const double ratio =
      SafeDivide(static_cast<double>(stats.cluster_size(c)),
                 static_cast<double>(stats.num_rows()));
  double l1 = 0.0;
  for (size_t a = 0; a < full.domain_size(); ++a) {
    const auto code = static_cast<ValueCode>(a);
    l1 += std::fabs(cluster.bin(code) - ratio * full.bin(code));
  }
  return 0.5 * l1;
}

double SufficiencyP(const StatsCache& stats, ClusterId c, AttrIndex attr) {
  const Histogram& cluster = stats.cluster_histogram(c, attr);
  const Histogram& full = stats.full_histogram(attr);
  double score = 0.0;
  for (size_t a = 0; a < full.domain_size(); ++a) {
    const auto code = static_cast<ValueCode>(a);
    const double in_cluster = cluster.bin(code);
    // Sum only over the cluster's active domain; a value in D_c is in D, so
    // on exact counts the denominator is at least the numerator whenever the
    // numerator is positive. The max() guard only engages on *noisy* caches
    // (DP-Naive post-processing), where per-bin consistency can be violated.
    if (in_cluster > 0.0) {
      score += in_cluster * in_cluster / std::max(full.bin(code), in_cluster);
    }
  }
  return score;
}

double PairDiversity(const StatsCache& stats, ClusterId c, ClusterId c_prime,
                     AttrIndex attr_c, AttrIndex attr_c_prime) {
  const double size_c = static_cast<double>(stats.cluster_size(c));
  const double size_cp = static_cast<double>(stats.cluster_size(c_prime));
  const double factor = std::min(size_c, size_cp);
  if (attr_c != attr_c_prime) return factor;
  if (factor == 0.0) return 0.0;
  // Shared attribute: min(|D_c|, |D_c'|)·TVD between the cluster
  // distributions, with max(|D_c|, 1) denominators (Def. 4.7).
  const Histogram& hist_c = stats.cluster_histogram(c, attr_c);
  const Histogram& hist_cp = stats.cluster_histogram(c_prime, attr_c);
  const double denom_c = std::max(size_c, 1.0);
  const double denom_cp = std::max(size_cp, 1.0);
  double l1 = 0.0;
  for (size_t a = 0; a < hist_c.domain_size(); ++a) {
    const auto code = static_cast<ValueCode>(a);
    l1 += std::fabs(hist_c.bin(code) / denom_c - hist_cp.bin(code) / denom_cp);
  }
  return factor * 0.5 * l1;
}

double DiversityP(const StatsCache& stats, const AttributeCombination& ac) {
  const size_t clusters = stats.num_clusters();
  DPX_CHECK_EQ(ac.size(), clusters);
  if (clusters < 2) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t cp = c + 1; cp < clusters; ++cp) {
      sum += PairDiversity(stats, static_cast<ClusterId>(c),
                           static_cast<ClusterId>(cp), ac[c], ac[cp]);
    }
  }
  return sum / PairCount(clusters);
}

double SingleClusterScore(const StatsCache& stats, ClusterId c,
                          AttrIndex attr, const SingleClusterWeights& gamma) {
  return gamma.interestingness * InterestingnessP(stats, c, attr) +
         gamma.sufficiency * SufficiencyP(stats, c, attr);
}

double GlobalScore(const StatsCache& stats, const AttributeCombination& ac,
                   const GlobalWeights& lambda) {
  const size_t clusters = stats.num_clusters();
  DPX_CHECK_EQ(ac.size(), clusters);
  double mean_int = 0.0;
  double mean_suf = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    if (lambda.interestingness > 0.0) {
      mean_int += InterestingnessP(stats, cluster, ac[c]);
    }
    if (lambda.sufficiency > 0.0) {
      mean_suf += SufficiencyP(stats, cluster, ac[c]);
    }
  }
  mean_int /= static_cast<double>(clusters);
  mean_suf /= static_cast<double>(clusters);
  const double div =
      lambda.diversity > 0.0 ? DiversityP(stats, ac) : 0.0;
  return lambda.interestingness * mean_int + lambda.sufficiency * mean_suf +
         lambda.diversity * div;
}

double GlobalScoreRangeBound(const StatsCache& stats,
                             const GlobalWeights& lambda) {
  const size_t clusters = stats.num_clusters();
  double mean_size = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    mean_size += static_cast<double>(stats.cluster_size(
        static_cast<ClusterId>(c)));
  }
  mean_size /= static_cast<double>(clusters);

  // R_Div (Prop. 4.8): (1 / C(|C|,2)) · Σ_i (|C| − i)·|D_{c_(i)}| over
  // clusters sorted by increasing size.
  double r_div = 0.0;
  if (clusters >= 2) {
    std::vector<double> sizes(clusters);
    for (size_t c = 0; c < clusters; ++c) {
      sizes[c] = static_cast<double>(stats.cluster_size(
          static_cast<ClusterId>(c)));
    }
    std::sort(sizes.begin(), sizes.end());
    for (size_t i = 0; i < clusters; ++i) {
      r_div += static_cast<double>(clusters - i - 1) * sizes[i];
    }
    r_div /= PairCount(clusters);
  }
  return (lambda.interestingness + lambda.sufficiency) * mean_size +
         lambda.diversity * r_div;
}

}  // namespace dpclustx
