#include "core/serialization.h"

#include "common/json.h"
#include "common/logging.h"

namespace dpclustx {

namespace {

JsonValue HistogramToJson(const Histogram& histogram) {
  JsonValue bins = JsonValue::Array();
  for (size_t i = 0; i < histogram.domain_size(); ++i) {
    bins.Append(JsonValue::Number(histogram.bin(static_cast<ValueCode>(i))));
  }
  return bins;
}

StatusOr<Histogram> HistogramFromJson(const JsonValue& json,
                                      size_t expected_domain) {
  if (json.type() != JsonValue::Type::kArray) {
    return Status::InvalidArgument("histogram must be an array");
  }
  if (json.size() != expected_domain) {
    return Status::InvalidArgument(
        "histogram has " + std::to_string(json.size()) + " bins, domain has " +
        std::to_string(expected_domain));
  }
  Histogram histogram(expected_domain);
  for (size_t i = 0; i < json.size(); ++i) {
    if (json.at(i).type() != JsonValue::Type::kNumber) {
      return Status::InvalidArgument("histogram bins must be numbers");
    }
    histogram.set_bin(static_cast<ValueCode>(i), json.at(i).AsNumber());
  }
  return histogram;
}

std::string NoiseName(HistogramNoise noise) {
  switch (noise) {
    case HistogramNoise::kGeometric:
      return "geometric";
    case HistogramNoise::kLaplace:
      return "laplace";
    case HistogramNoise::kHierarchical:
      return "hierarchical";
  }
  return "geometric";
}

StatusOr<HistogramNoise> NoiseFromName(const std::string& name) {
  if (name == "geometric") return HistogramNoise::kGeometric;
  if (name == "laplace") return HistogramNoise::kLaplace;
  if (name == "hierarchical") return HistogramNoise::kHierarchical;
  return Status::InvalidArgument("unknown noise family '" + name + "'");
}

}  // namespace

JsonValue SchemaToJsonValue(const Schema& schema) {
  JsonValue attributes = JsonValue::Array();
  for (const Attribute& attr : schema.attributes()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(attr.name()));
    JsonValue labels = JsonValue::Array();
    for (const std::string& label : attr.value_labels()) {
      labels.Append(JsonValue::String(label));
    }
    entry.Set("domain", std::move(labels));
    attributes.Append(std::move(entry));
  }
  JsonValue root = JsonValue::Object();
  root.Set("attributes", std::move(attributes));
  return root;
}

std::string SchemaToJson(const Schema& schema) {
  return SchemaToJsonValue(schema).Dump();
}

StatusOr<Schema> SchemaFromJson(const std::string& json) {
  DPX_ASSIGN_OR_RETURN(const JsonValue root, JsonValue::Parse(json));
  if (root.type() != JsonValue::Type::kObject || !root.Has("attributes")) {
    return Status::InvalidArgument("schema JSON must have 'attributes'");
  }
  const JsonValue& attributes = root.at("attributes");
  if (attributes.type() != JsonValue::Type::kArray) {
    return Status::InvalidArgument("'attributes' must be an array");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(attributes.size());
  for (size_t i = 0; i < attributes.size(); ++i) {
    const JsonValue& entry = attributes.at(i);
    if (entry.type() != JsonValue::Type::kObject) {
      return Status::InvalidArgument("attribute entries must be objects");
    }
    DPX_ASSIGN_OR_RETURN(const std::string name, entry.GetString("name"));
    if (!entry.Has("domain") ||
        entry.at("domain").type() != JsonValue::Type::kArray) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' must have a 'domain' array");
    }
    const JsonValue& domain = entry.at("domain");
    std::vector<std::string> labels;
    labels.reserve(domain.size());
    for (size_t v = 0; v < domain.size(); ++v) {
      if (domain.at(v).type() != JsonValue::Type::kString) {
        return Status::InvalidArgument("domain labels must be strings");
      }
      labels.push_back(domain.at(v).AsString());
    }
    attrs.emplace_back(name, std::move(labels));
  }
  Schema schema(std::move(attrs));
  DPX_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

std::string ExplanationToJson(const GlobalExplanation& explanation,
                              const Schema& schema) {
  JsonValue root = JsonValue::Object();

  JsonValue combination = JsonValue::Array();
  for (AttrIndex attr : explanation.combination) {
    DPX_CHECK_LT(attr, schema.num_attributes());
    combination.Append(JsonValue::String(schema.attribute(attr).name()));
  }
  root.Set("combination", std::move(combination));

  JsonValue candidate_sets = JsonValue::Array();
  for (const auto& set : explanation.candidate_sets) {
    JsonValue entry = JsonValue::Array();
    for (AttrIndex attr : set) {
      DPX_CHECK_LT(attr, schema.num_attributes());
      entry.Append(JsonValue::String(schema.attribute(attr).name()));
    }
    candidate_sets.Append(std::move(entry));
  }
  root.Set("candidate_sets", std::move(candidate_sets));

  JsonValue clusters = JsonValue::Array();
  for (const SingleClusterExplanation& e : explanation.per_cluster) {
    JsonValue entry = JsonValue::Object();
    entry.Set("cluster", JsonValue::Number(static_cast<double>(e.cluster)));
    entry.Set("attribute",
              JsonValue::String(schema.attribute(e.attribute).name()));
    entry.Set("inside", HistogramToJson(e.inside));
    entry.Set("outside", HistogramToJson(e.outside));
    if (e.epsilon_inside > 0.0) {
      entry.Set("epsilon_inside", JsonValue::Number(e.epsilon_inside));
      entry.Set("epsilon_full", JsonValue::Number(e.epsilon_full));
      entry.Set("noise", JsonValue::String(NoiseName(e.noise)));
    }
    clusters.Append(std::move(entry));
  }
  root.Set("clusters", std::move(clusters));
  return root.Dump();
}

StatusOr<GlobalExplanation> ExplanationFromJson(const std::string& json,
                                                const Schema& schema) {
  DPX_ASSIGN_OR_RETURN(const JsonValue root, JsonValue::Parse(json));
  if (root.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("explanation JSON must be an object");
  }
  GlobalExplanation explanation;

  if (!root.Has("combination") ||
      root.at("combination").type() != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing 'combination' array");
  }
  const JsonValue& combination = root.at("combination");
  for (size_t i = 0; i < combination.size(); ++i) {
    if (combination.at(i).type() != JsonValue::Type::kString) {
      return Status::InvalidArgument("combination entries must be strings");
    }
    DPX_ASSIGN_OR_RETURN(const AttrIndex attr,
                         schema.FindAttribute(combination.at(i).AsString()));
    explanation.combination.push_back(attr);
  }

  if (root.Has("candidate_sets")) {
    const JsonValue& sets = root.at("candidate_sets");
    if (sets.type() != JsonValue::Type::kArray) {
      return Status::InvalidArgument("'candidate_sets' must be an array");
    }
    for (size_t c = 0; c < sets.size(); ++c) {
      const JsonValue& entry = sets.at(c);
      if (entry.type() != JsonValue::Type::kArray) {
        return Status::InvalidArgument("candidate sets must be arrays");
      }
      std::vector<AttrIndex> set;
      for (size_t i = 0; i < entry.size(); ++i) {
        DPX_ASSIGN_OR_RETURN(const AttrIndex attr,
                             schema.FindAttribute(entry.at(i).AsString()));
        set.push_back(attr);
      }
      explanation.candidate_sets.push_back(std::move(set));
    }
  }

  if (root.Has("clusters")) {
    const JsonValue& clusters = root.at("clusters");
    if (clusters.type() != JsonValue::Type::kArray) {
      return Status::InvalidArgument("'clusters' must be an array");
    }
    for (size_t i = 0; i < clusters.size(); ++i) {
      const JsonValue& entry = clusters.at(i);
      SingleClusterExplanation e;
      DPX_ASSIGN_OR_RETURN(const double cluster, entry.GetNumber("cluster"));
      e.cluster = static_cast<ClusterId>(cluster);
      DPX_ASSIGN_OR_RETURN(const std::string attr_name,
                           entry.GetString("attribute"));
      DPX_ASSIGN_OR_RETURN(e.attribute, schema.FindAttribute(attr_name));
      const size_t domain = schema.attribute(e.attribute).domain_size();
      if (!entry.Has("inside") || !entry.Has("outside")) {
        return Status::InvalidArgument("cluster entry missing histograms");
      }
      DPX_ASSIGN_OR_RETURN(e.inside,
                           HistogramFromJson(entry.at("inside"), domain));
      DPX_ASSIGN_OR_RETURN(e.outside,
                           HistogramFromJson(entry.at("outside"), domain));
      if (entry.Has("epsilon_inside")) {
        DPX_ASSIGN_OR_RETURN(e.epsilon_inside,
                             entry.GetNumber("epsilon_inside"));
        DPX_ASSIGN_OR_RETURN(e.epsilon_full,
                             entry.GetNumber("epsilon_full"));
        DPX_ASSIGN_OR_RETURN(const std::string noise_name,
                             entry.GetString("noise"));
        DPX_ASSIGN_OR_RETURN(e.noise, NoiseFromName(noise_name));
      }
      explanation.per_cluster.push_back(std::move(e));
    }
  }
  return explanation;
}

}  // namespace dpclustx
