#include "core/candidate_selection.h"

#include <algorithm>
#include <numeric>

#include "dp/mechanisms.h"
#include "dp/sparse_vector.h"
#include "dp/topk.h"

namespace dpclustx {

namespace {

// Exact single-cluster scores of every attribute for cluster c.
std::vector<double> ScoreAllAttributes(const StatsCache& stats, ClusterId c,
                                       const SingleClusterWeights& gamma) {
  std::vector<double> scores(stats.num_attributes());
  for (size_t a = 0; a < scores.size(); ++a) {
    scores[a] =
        SingleClusterScore(stats, c, static_cast<AttrIndex>(a), gamma);
  }
  return scores;
}

Status ValidateK(const StatsCache& stats, size_t k) {
  if (k == 0 || k > stats.num_attributes()) {
    return Status::InvalidArgument(
        "candidate-set size k=" + std::to_string(k) +
        " must lie in [1, num_attributes=" +
        std::to_string(stats.num_attributes()) + "]");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<std::vector<AttrIndex>>> SelectCandidates(
    const StatsCache& stats, const CandidateSelectionOptions& options,
    Rng& rng) {
  DPX_RETURN_IF_ERROR(ValidateK(stats, options.k));
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon_cand_set must be positive");
  }
  // Algorithm 1, line 1: each cluster's top-k selection runs at
  // ε_Topk = ε_CandSet / |C| (sequential composition across clusters).
  const double eps_topk =
      options.epsilon / static_cast<double>(stats.num_clusters());

  std::vector<std::vector<AttrIndex>> candidate_sets;
  candidate_sets.reserve(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    DPX_RETURN_IF_ERROR(options.deadline.Check("stage1 top-k"));
    const std::vector<double> scores =
        ScoreAllAttributes(stats, static_cast<ClusterId>(c), options.gamma);
    // One-shot top-k with σ = 2·Δ·k/ε_Topk, Δ_SScore = 1 (Prop. 4.10).
    DPX_ASSIGN_OR_RETURN(
        const std::vector<size_t> top,
        OneShotTopK(scores, kSScoreSensitivity, eps_topk, options.k, rng));
    std::vector<AttrIndex> set;
    set.reserve(top.size());
    for (size_t index : top) set.push_back(static_cast<AttrIndex>(index));
    candidate_sets.push_back(std::move(set));
  }
  return candidate_sets;
}

StatusOr<std::vector<std::vector<AttrIndex>>> SelectCandidatesExact(
    const StatsCache& stats, size_t k, const SingleClusterWeights& gamma) {
  DPX_RETURN_IF_ERROR(ValidateK(stats, k));
  std::vector<std::vector<AttrIndex>> candidate_sets;
  candidate_sets.reserve(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    const std::vector<double> scores =
        ScoreAllAttributes(stats, static_cast<ClusterId>(c), gamma);
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(), [&](size_t a, size_t b) {
                        return scores[a] > scores[b];
                      });
    std::vector<AttrIndex> set;
    set.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      set.push_back(static_cast<AttrIndex>(order[i]));
    }
    candidate_sets.push_back(std::move(set));
  }
  return candidate_sets;
}

StatusOr<std::vector<std::vector<AttrIndex>>> SvtSelectCandidates(
    const StatsCache& stats, const SvtCandidateOptions& options, Rng& rng) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("SVT stage-1: epsilon must be positive");
  }
  if (options.max_candidates == 0 ||
      options.max_candidates > stats.num_attributes()) {
    return Status::InvalidArgument("SVT stage-1: bad max_candidates");
  }
  if (options.threshold_fraction <= 0.0 ||
      options.threshold_fraction >= 1.0) {
    return Status::InvalidArgument(
        "SVT stage-1: threshold_fraction must lie in (0, 1)");
  }
  if (options.size_budget_share <= 0.0 ||
      options.size_budget_share >= 1.0) {
    return Status::InvalidArgument(
        "SVT stage-1: size_budget_share must lie in (0, 1)");
  }

  const double eps_cluster =
      options.epsilon / static_cast<double>(stats.num_clusters());
  const double eps_size = options.size_budget_share * eps_cluster;
  const double eps_svt = eps_cluster - eps_size;

  std::vector<std::vector<AttrIndex>> candidate_sets;
  candidate_sets.reserve(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    DPX_RETURN_IF_ERROR(options.deadline.Check("stage1 svt"));
    const auto cluster = static_cast<ClusterId>(c);
    // Noisy cluster size (sensitivity-1 count) sets a data-calibrated bar.
    DPX_ASSIGN_OR_RETURN(
        const int64_t noisy_count,
        GeometricMechanism(static_cast<int64_t>(stats.cluster_size(cluster)),
                           /*sensitivity=*/1.0, eps_size, rng));
    const double noisy_size =
        std::max(0.0, static_cast<double>(noisy_count));
    const double threshold = options.threshold_fraction * noisy_size;

    std::vector<double> scores(stats.num_attributes());
    for (size_t a = 0; a < scores.size(); ++a) {
      scores[a] = SingleClusterScore(stats, cluster,
                                     static_cast<AttrIndex>(a),
                                     options.gamma);
    }
    DPX_ASSIGN_OR_RETURN(
        const std::vector<size_t> positives,
        SvtAboveThreshold(scores, threshold, kSScoreSensitivity, eps_svt,
                          options.max_candidates, rng));
    std::vector<AttrIndex> set;
    set.reserve(positives.size());
    for (size_t index : positives) {
      set.push_back(static_cast<AttrIndex>(index));
    }
    if (set.empty()) set.push_back(0);  // data-independent fallback
    candidate_sets.push_back(std::move(set));
  }
  return candidate_sets;
}

}  // namespace dpclustx
