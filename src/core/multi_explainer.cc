#include "core/multi_explainer.h"

#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/math_util.h"
#include "core/candidate_selection.h"
#include "dp/dp_histogram.h"

namespace dpclustx {

namespace {

// All ℓ-subsets of {0, ..., k-1}, each sorted ascending.
std::vector<std::vector<size_t>> Subsets(size_t k, size_t l) {
  std::vector<std::vector<size_t>> out;
  // Lexicographic combination enumeration.
  std::vector<size_t> idx(l);
  for (size_t i = 0; i < l; ++i) idx[i] = i;
  while (true) {
    out.push_back(idx);
    // Rightmost position that can still be incremented.
    size_t i = l;
    while (i > 0 && idx[i - 1] == i - 1 + k - l) --i;
    if (i == 0) break;
    ++idx[i - 1];
    for (size_t j = i; j < l; ++j) idx[j] = idx[j - 1] + 1;
  }
  return out;
}

// Flattened candidate list {(cluster, attribute)} of a multi-combination.
std::vector<std::pair<ClusterId, AttrIndex>> Candidates(
    const std::vector<std::vector<AttrIndex>>& ac) {
  std::vector<std::pair<ClusterId, AttrIndex>> cands;
  for (size_t c = 0; c < ac.size(); ++c) {
    for (AttrIndex attr : ac[c]) {
      cands.emplace_back(static_cast<ClusterId>(c), attr);
    }
  }
  return cands;
}

}  // namespace

double MultiGlobalScore(const StatsCache& stats,
                        const std::vector<std::vector<AttrIndex>>& ac,
                        const GlobalWeights& lambda) {
  DPX_CHECK_EQ(ac.size(), stats.num_clusters());
  const auto cands = Candidates(ac);
  DPX_CHECK(!cands.empty());
  double mean_int = 0.0, mean_suf = 0.0;
  for (const auto& [cluster, attr] : cands) {
    if (lambda.interestingness > 0.0) {
      mean_int += InterestingnessP(stats, cluster, attr);
    }
    if (lambda.sufficiency > 0.0) {
      mean_suf += SufficiencyP(stats, cluster, attr);
    }
  }
  mean_int /= static_cast<double>(cands.size());
  mean_suf /= static_cast<double>(cands.size());
  double div = 0.0;
  if (lambda.diversity > 0.0 && cands.size() >= 2) {
    for (size_t i = 0; i < cands.size(); ++i) {
      for (size_t j = i + 1; j < cands.size(); ++j) {
        div += PairDiversity(stats, cands[i].first, cands[j].first,
                             cands[i].second, cands[j].second);
      }
    }
    div /= PairCount(cands.size());
  }
  return lambda.interestingness * mean_int + lambda.sufficiency * mean_suf +
         lambda.diversity * div;
}

StatusOr<MultiGlobalExplanation> ExplainDpClustXMultiWithLabels(
    const Dataset& dataset, const std::vector<ClusterId>& labels,
    size_t num_clusters, const MultiExplainOptions& options,
    PrivacyBudget* budget) {
  const DpClustXOptions& base = options.base;
  DPX_RETURN_IF_ERROR(base.lambda.Validate());
  const size_t l = options.attrs_per_cluster;
  if (l == 0 || l > base.num_candidates) {
    return Status::InvalidArgument(
        "attrs_per_cluster must lie in [1, num_candidates]");
  }
  if (base.epsilon_cand_set <= 0.0 || base.epsilon_top_comb <= 0.0) {
    return Status::InvalidArgument("stage budgets must be positive");
  }
  if (base.generate_histograms && base.epsilon_hist <= 0.0) {
    return Status::InvalidArgument("epsilon_hist must be positive");
  }
  DPX_ASSIGN_OR_RETURN(const StatsCache stats,
                       StatsCache::Build(dataset, labels, num_clusters,
                                         base.num_threads));

  if (budget != nullptr) {
    DPX_RETURN_IF_ERROR(
        budget->Spend(base.epsilon_cand_set, "dpclustx-multi/stage1"));
    DPX_RETURN_IF_ERROR(
        budget->Spend(base.epsilon_top_comb, "dpclustx-multi/stage2"));
    if (base.generate_histograms) {
      DPX_RETURN_IF_ERROR(
          budget->Spend(base.epsilon_hist, "dpclustx-multi/histograms"));
    }
  }

  Rng rng(base.seed);

  // Stage-1 (unchanged from the single-explanation algorithm).
  CandidateSelectionOptions stage1;
  stage1.epsilon = base.epsilon_cand_set;
  stage1.k = base.num_candidates;
  stage1.gamma = base.lambda.ConditionalSingleClusterWeights();
  DPX_ASSIGN_OR_RETURN(auto candidate_sets,
                       SelectCandidates(stats, stage1, rng));

  // Stage-2: EM over C(k, ℓ)^|C| subset combinations.
  const std::vector<std::vector<size_t>> subsets =
      Subsets(base.num_candidates, l);
  size_t num_combinations = 1;
  for (size_t c = 0; c < num_clusters; ++c) {
    if (num_combinations > base.max_combinations / subsets.size()) {
      return Status::InvalidArgument(
          "multi-explanation combination space exceeds max_combinations");
    }
    num_combinations *= subsets.size();
  }

  auto materialize = [&](const std::vector<size_t>& choice) {
    std::vector<std::vector<AttrIndex>> ac(num_clusters);
    for (size_t c = 0; c < num_clusters; ++c) {
      for (size_t position : subsets[choice[c]]) {
        ac[c].push_back(candidate_sets[c][position]);
      }
    }
    return ac;
  };

  const double scale =
      base.epsilon_top_comb / (2.0 * kGlScoreSensitivity);
  std::vector<size_t> choice(num_clusters, 0);
  std::vector<size_t> best_choice(num_clusters, 0);
  double best_value = -std::numeric_limits<double>::infinity();
  for (size_t combo = 0; combo < num_combinations; ++combo) {
    const double score =
        MultiGlobalScore(stats, materialize(choice), base.lambda);
    const double value = scale * score + rng.Gumbel(1.0);
    if (value > best_value) {
      best_value = value;
      best_choice = choice;
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      if (++choice[c] < subsets.size()) break;
      choice[c] = 0;
    }
  }

  MultiGlobalExplanation result;
  result.combination = materialize(best_choice);
  result.candidate_sets = std::move(candidate_sets);
  if (!base.generate_histograms) return result;

  // Histogram release: ε_Hist/2 over the distinct selected attributes
  // (full-dataset side), ε_Hist/2 per cluster split across its ℓ histograms
  // (cluster side; parallel across clusters).
  std::set<AttrIndex> distinct;
  for (const auto& attrs : result.combination) {
    distinct.insert(attrs.begin(), attrs.end());
  }
  const double eps_hist_all =
      base.epsilon_hist / (2.0 * static_cast<double>(distinct.size()));
  const double eps_hist_cluster =
      base.epsilon_hist / (2.0 * static_cast<double>(l));

  std::vector<Histogram> noisy_full(stats.num_attributes());
  for (AttrIndex attr : distinct) {
    DPX_ASSIGN_OR_RETURN(
        noisy_full[attr],
        ReleaseDpHistogram(stats.full_histogram(attr), eps_hist_all, rng,
                           base.histogram));
  }

  result.explanations.resize(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    for (AttrIndex attr : result.combination[c]) {
      SingleClusterExplanation e;
      e.cluster = cluster;
      e.attribute = attr;
      DPX_ASSIGN_OR_RETURN(
          e.inside,
          ReleaseDpHistogram(stats.cluster_histogram(cluster, attr),
                             eps_hist_cluster, rng, base.histogram));
      e.outside = noisy_full[attr].SubtractClamped(e.inside);
      result.explanations[c].push_back(std::move(e));
    }
  }
  return result;
}

StatusOr<MultiGlobalExplanation> ExplainDpClustXMulti(
    const Dataset& dataset, const ClusteringFunction& clustering,
    const MultiExplainOptions& options, PrivacyBudget* budget) {
  const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
  return ExplainDpClustXMultiWithLabels(dataset, labels,
                                        clustering.num_clusters(), options,
                                        budget);
}

}  // namespace dpclustx
