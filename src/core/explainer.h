// Stage-2 of DPClustX and the end-to-end entry point (Algorithm 2).
//
// Pipeline (paper §5.2):
//   1. Stage-1 candidate sets S_c at budget ε_CandSet (Algorithm 1).
//   2. Exponential mechanism over the k^|C| candidate attribute combinations
//      {AC | AC(c) ∈ S_c}, scored by GlScore_λ (Δ = 1), at budget ε_TopComb.
//   3. Noisy histograms *only* for the selected attributes: full-dataset
//      histograms at ε_Hist/(2·|A'|) each (sequential over the distinct
//      selected attributes A'), per-cluster histograms at ε_Hist/2 each
//      (parallel composition over disjoint clusters); out-of-cluster
//      histograms by clamped subtraction (post-processing).
// Total privacy cost: ε_CandSet + ε_TopComb + ε_Hist (Theorem 5.2).

#ifndef DPCLUSTX_CORE_EXPLAINER_H_
#define DPCLUSTX_CORE_EXPLAINER_H_

#include "cluster/clustering.h"
#include "common/deadline.h"
#include "common/status.h"
#include "core/explanation.h"
#include "core/quality.h"
#include "core/stats_cache.h"
#include "dp/dp_histogram.h"
#include "dp/privacy_budget.h"

namespace dpclustx {

/// Which Stage-1 candidate-selection mechanism to run.
enum class Stage1Selector {
  kOneShotTopK,  // Algorithm 1 (default): per-cluster noisy top-k
  kSvt,          // AboveThreshold scan; see SvtSelectCandidates
};

struct DpClustXOptions {
  /// Stage-1 mechanism.
  Stage1Selector stage1 = Stage1Selector::kOneShotTopK;
  /// Threshold fraction for the SVT selector (ignored by top-k).
  double svt_threshold_fraction = 0.3;
  /// Stage-1 budget ε_CandSet.
  double epsilon_cand_set = 0.1;
  /// Stage-2 combination-selection budget ε_TopComb.
  double epsilon_top_comb = 0.1;
  /// Histogram-release budget ε_Hist.
  double epsilon_hist = 0.1;
  /// Candidate-set size k (paper default 3, ablated in Fig. 7).
  size_t num_candidates = 3;
  /// Quality-function weights λ (paper default: equal thirds).
  GlobalWeights lambda;
  /// Noise family and clamping for M_hist.
  DpHistogramOptions histogram;
  /// When false, stops after combination selection and leaves the histograms
  /// empty, spending only ε_CandSet + ε_TopComb. The paper's attribute-
  /// quality experiments run in this mode ("histogram generation is not
  /// needed", §6.2).
  bool generate_histograms = true;
  /// Refuse runs whose Stage-2 search space k^|C| exceeds this (the paper's
  /// own runtime grows exponentially in |C|; Fig. 9a).
  size_t max_combinations = 20000000;
  /// Seed for all mechanism noise in this run.
  uint64_t seed = 1;
  /// Threads for the Stage-2 combination enumeration (k^|C| grows
  /// exponentially; the search shards perfectly) and parallelism cap for the
  /// StatsCache counting pass. 1 = serial. The shard count — not the
  /// execution width — determines Stage-2's forked noise streams, so this
  /// value is part of the run's noise seed. The selection distribution is
  /// identical either way (independent Gumbel draws), but runs with
  /// different num_threads draw different noise at the same seed. The
  /// StatsCache build is bitwise-identical at any value.
  size_t num_threads = 1;
  /// Cooperative cancellation bound for the whole run. Checked between
  /// Stage-1 clusters, every few thousand Stage-2 combinations, and between
  /// histogram releases. Default: no deadline. A DeadlineExceeded return
  /// does NOT refund budget already reserved up front — the accountant may
  /// overstate, never understate, the released ε (see DESIGN.md, failure
  /// semantics).
  Deadline deadline;
};

/// Runs DPClustX against a black-box clustering function: labels the dataset
/// with `clustering.AssignAll`, then explains. If `budget` is non-null the
/// spent epsilons are charged to it (failing with OutOfBudget before any
/// noise is drawn if they do not fit).
StatusOr<GlobalExplanation> ExplainDpClustX(
    const Dataset& dataset, const ClusteringFunction& clustering,
    const DpClustXOptions& options, PrivacyBudget* budget = nullptr);

/// Same, with precomputed labels (callers that already materialized the
/// clustering; labels[i] < num_clusters).
StatusOr<GlobalExplanation> ExplainDpClustXWithLabels(
    const Dataset& dataset, const std::vector<ClusterId>& labels,
    size_t num_clusters, const DpClustXOptions& options,
    PrivacyBudget* budget = nullptr);

/// Same, with a prebuilt StatsCache — skips the O(n·d) counting pass, so a
/// server that shares one cache across many requests pays only the
/// per-request mechanism cost. The cache is read-only here and safe to share
/// across concurrent calls.
StatusOr<GlobalExplanation> ExplainDpClustXWithStats(
    const StatsCache& stats, const DpClustXOptions& options,
    PrivacyBudget* budget = nullptr);

namespace core_internal {

/// Precomputed score tables for the combination enumeration: any global
/// score of the form Σ_c unary(c, AC(c)) + Σ_{c<c'} pair(c, c', AC(c),
/// AC(c')) fits (both GlScore_λ and the baselines' sensitive scores do).
struct CombinationScoreTables {
  /// unary[c][j]: contribution of choosing candidate j for cluster c.
  std::vector<std::vector<double>> unary;
  /// pair[c][cp] (cp > c, else empty): row-major k_c × k_cp matrix of pair
  /// contributions. Leave the whole structure empty to skip pair terms.
  std::vector<std::vector<std::vector<double>>> pair;
};

/// Tables realizing GlScore_λ over the candidate sets.
CombinationScoreTables BuildLowSensitivityTables(
    const StatsCache& stats,
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const GlobalWeights& lambda);

/// Selects an attribute combination from per-cluster candidate sets
/// (Algorithm 2, lines 4–5): the exponential mechanism at `epsilon` over the
/// table-defined score (Gumbel-max implementation), or the exact argmax when
/// epsilon <= 0 (the non-private TabEE limit). Exposed for the baselines and
/// tests.
StatusOr<AttributeCombination> SearchCombination(
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const CombinationScoreTables& tables, double epsilon, double sensitivity,
    size_t max_combinations, Rng& rng, const Deadline& deadline = {});

/// Multithreaded variant: shards the combination space across
/// `num_threads` workers, each with an independent noise stream forked from
/// `rng`. Shards execute on the shared compute pool (ParallelFor); the
/// shard structure — and thus the noise stream — is fixed by `num_threads`
/// even when the pool runs them on fewer threads. Exact mode (epsilon <= 0)
/// returns the same argmax as the serial search; private mode realizes the
/// same exponential-mechanism distribution with different draws.
StatusOr<AttributeCombination> SearchCombinationParallel(
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const CombinationScoreTables& tables, double epsilon, double sensitivity,
    size_t max_combinations, Rng& rng, size_t num_threads,
    const Deadline& deadline = {});

}  // namespace core_internal

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_EXPLAINER_H_
