// Multiple explanations per cluster — the paper's Appendix B extension.
//
// Generalizes the attribute combination to AC : C → {S ⊆ A : |S| = ℓ}. The
// global score averages Int_p/Suf_p over all (cluster, attribute) candidates
// and averages pair diversity over all distinct candidate pairs (including
// pairs inside one cluster); it remains a convex combination of
// sensitivity-1 functions, so Δ = 1 still calibrates the exponential
// mechanism. Stage-1 is unchanged; Stage-2 enumerates C(k, ℓ)^|C|
// combinations, and the histogram budget per cluster is split across the ℓ
// released histograms (sequential within a cluster, parallel across
// clusters).

#ifndef DPCLUSTX_CORE_MULTI_EXPLAINER_H_
#define DPCLUSTX_CORE_MULTI_EXPLAINER_H_

#include "cluster/clustering.h"
#include "common/status.h"
#include "core/explainer.h"
#include "core/explanation.h"

namespace dpclustx {

struct MultiExplainOptions {
  /// Underlying DPClustX parameters (budgets, k, λ, noise, seed).
  DpClustXOptions base;
  /// Number of explanation attributes per cluster (ℓ). Requires
  /// 1 <= ℓ <= k.
  size_t attrs_per_cluster = 2;
};

/// A global explanation carrying ℓ single-cluster explanations per cluster.
struct MultiGlobalExplanation {
  /// combination[c] is the ℓ-subset selected for cluster c (sorted by
  /// decreasing Stage-1 rank).
  std::vector<std::vector<AttrIndex>> combination;
  /// explanations[c][i] explains cluster c with combination[c][i].
  std::vector<std::vector<SingleClusterExplanation>> explanations;
  std::vector<std::vector<AttrIndex>> candidate_sets;
};

/// Runs the multi-explanation variant with precomputed labels.
StatusOr<MultiGlobalExplanation> ExplainDpClustXMultiWithLabels(
    const Dataset& dataset, const std::vector<ClusterId>& labels,
    size_t num_clusters, const MultiExplainOptions& options,
    PrivacyBudget* budget = nullptr);

/// Runs the multi-explanation variant against a clustering function.
StatusOr<MultiGlobalExplanation> ExplainDpClustXMulti(
    const Dataset& dataset, const ClusteringFunction& clustering,
    const MultiExplainOptions& options, PrivacyBudget* budget = nullptr);

/// Extended global score of Appendix B for a multi-attribute combination
/// (exposed for tests): λ_Int·Int_ℓ + λ_Suf·Suf_ℓ + λ_Div·Div_ℓ.
double MultiGlobalScore(const StatsCache& stats,
                        const std::vector<std::vector<AttrIndex>>& ac,
                        const GlobalWeights& lambda);

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_MULTI_EXPLAINER_H_
