// Explanation output types (paper Defs. 3.1–3.2) and presentation helpers.

#ifndef DPCLUSTX_CORE_EXPLANATION_H_
#define DPCLUSTX_CORE_EXPLANATION_H_

#include <string>
#include <vector>

#include "core/quality.h"
#include "dp/dp_histogram.h"
#include "data/histogram.h"
#include "data/schema.h"

namespace dpclustx {

/// Single-cluster HBE e_c = (c, A, h_A(D \ D_c), h_A(D_c)) (Def. 3.1). In DP
/// output the histograms are noisy releases.
struct SingleClusterExplanation {
  ClusterId cluster = 0;
  AttrIndex attribute = 0;
  Histogram outside;  // values outside the cluster (h^{−c})
  Histogram inside;   // values inside the cluster  (h^{c})

  /// Release metadata for accuracy annotation (0 = exact histograms, as in
  /// the non-private TabEE output): the budgets the inside and full-dataset
  /// histograms were released at, and the noise family used. The outside
  /// histogram is the clamped difference of the two releases, so its noise
  /// quantile is bounded by the sum of theirs.
  double epsilon_inside = 0.0;
  double epsilon_full = 0.0;
  HistogramNoise noise = HistogramNoise::kGeometric;
};

/// Global HBE: one single-cluster explanation per cluster label (Def. 3.2),
/// plus the attribute combination that produced it.
struct GlobalExplanation {
  std::vector<SingleClusterExplanation> per_cluster;  // indexed by ClusterId
  AttributeCombination combination;

  /// Each cluster's candidate set from Stage-1 (attribute indices), recorded
  /// for auditability; combination[c] ∈ candidate_sets[c].
  std::vector<std::vector<AttrIndex>> candidate_sets;
};

/// Deterministic, rule-based textual summary of a single-cluster HBE in the
/// style of the paper's Fig. 2(b): names the attribute, locates the split
/// point where the inside/outside cumulative distributions diverge most
/// (over the domain's code order), and reports the mass on each side.
std::string DescribeExplanation(const SingleClusterExplanation& explanation,
                                const Schema& schema);

/// Multi-line report of a whole global explanation: per cluster, the chosen
/// attribute, side-by-side ASCII histograms, and the textual summary.
std::string RenderGlobalExplanation(const GlobalExplanation& explanation,
                                    const Schema& schema);

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_EXPLANATION_H_
