#include "core/explanation.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx {

std::string DescribeExplanation(const SingleClusterExplanation& explanation,
                                const Schema& schema) {
  const Attribute& attr = schema.attribute(explanation.attribute);
  const std::vector<double> inside = explanation.inside.Normalized();
  const std::vector<double> outside = explanation.outside.Normalized();
  const size_t domain = inside.size();

  // Kolmogorov–Smirnov-style split: the code boundary where the cumulative
  // inside/outside distributions diverge most.
  size_t best_split = 0;  // split after code best_split
  double best_gap = 0.0;
  double cum_in = 0.0, cum_out = 0.0;
  bool inside_below = false;
  for (size_t a = 0; a + 1 < domain; ++a) {
    cum_in += inside[a];
    cum_out += outside[a];
    const double gap = std::fabs(cum_in - cum_out);
    if (gap > best_gap) {
      best_gap = gap;
      best_split = a;
      inside_below = cum_in > cum_out;
    }
  }

  const double tvd =
      Histogram::Tvd(explanation.inside, explanation.outside);
  char buf[512];
  if (domain < 2 || best_gap < 0.05) {
    std::snprintf(buf, sizeof(buf),
                  "The `%s` column distribution of Cluster %u is close to "
                  "the rest of the data (TVD %.2f).",
                  attr.name().c_str(), explanation.cluster, tvd);
    return buf;
  }

  double in_low = 0.0, out_low = 0.0;
  for (size_t a = 0; a <= best_split; ++a) {
    in_low += inside[a];
    out_low += outside[a];
  }
  const std::string& boundary = attr.label(
      static_cast<ValueCode>(best_split));
  // Peak bins, in the style of the paper's Fig. 2 caption ("peaking at
  // [60, 70)").
  const std::string& inside_peak =
      attr.label(explanation.inside.ArgMax());
  const std::string& outside_peak =
      attr.label(explanation.outside.ArgMax());
  if (inside_below) {
    std::snprintf(
        buf, sizeof(buf),
        "The `%s` column values differ significantly (TVD %.2f). Cluster %u "
        "is concentrated in the lower range (%.0f%% at or below %s, peaking "
        "at %s), while outside the cluster only %.0f%% of values lie there "
        "(peak at %s).",
        attr.name().c_str(), tvd, explanation.cluster, 100.0 * in_low,
        boundary.c_str(), inside_peak.c_str(), 100.0 * out_low,
        outside_peak.c_str());
  } else {
    std::snprintf(
        buf, sizeof(buf),
        "The `%s` column values differ significantly (TVD %.2f). Values "
        "outside Cluster %u are concentrated in the lower range (%.0f%% at "
        "or below %s, peaking at %s), while the cluster contains mainly "
        "higher values (%.0f%% above %s, peaking at %s).",
        attr.name().c_str(), tvd, explanation.cluster, 100.0 * out_low,
        boundary.c_str(), outside_peak.c_str(), 100.0 * (1.0 - in_low),
        boundary.c_str(), inside_peak.c_str());
  }
  return buf;
}

std::string RenderGlobalExplanation(const GlobalExplanation& explanation,
                                    const Schema& schema) {
  std::string out;
  for (const SingleClusterExplanation& e : explanation.per_cluster) {
    const Attribute& attr = schema.attribute(e.attribute);
    out += "Cluster " + std::to_string(e.cluster) + " — attribute `" +
           attr.name() + "`";
    if (e.epsilon_inside > 0.0) {
      // Per-bin 95% noise quantile of the inside release, for calibration.
      const double q = DpHistogramBinNoiseQuantile(
          e.noise, e.inside.domain_size(), e.epsilon_inside, 0.95);
      char note[96];
      std::snprintf(note, sizeof(note),
                    "  (DP release; per-bin noise <= %.0f w.p. 95%%)", q);
      out += note;
    }
    out += "\n";
    out += " inside cluster:\n" + e.inside.ToAsciiArt(attr);
    out += " outside cluster:\n" + e.outside.ToAsciiArt(attr);
    out += " " + DescribeExplanation(e, schema) + "\n\n";
  }
  return out;
}

}  // namespace dpclustx
