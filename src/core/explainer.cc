#include "core/explainer.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "core/candidate_selection.h"
#include "obs/trace.h"

namespace dpclustx {

namespace core_internal {

namespace {
// Combinations scanned between deadline checks. Power of two so the
// checkpoint is a mask test; coarse enough (a few µs of lookups per block)
// that the steady_clock read is amortized to noise.
constexpr size_t kDeadlineCheckStride = 4096;
}  // namespace

CombinationScoreTables BuildLowSensitivityTables(
    const StatsCache& stats,
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const GlobalWeights& lambda) {
  const size_t clusters = candidate_sets.size();
  CombinationScoreTables tables;
  // Per-(cluster, candidate) interestingness/sufficiency terms; each of the
  // k^|C| combinations is then scored with table lookups only.
  tables.unary.resize(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    tables.unary[c].resize(candidate_sets[c].size());
    for (size_t j = 0; j < candidate_sets[c].size(); ++j) {
      const auto cluster = static_cast<ClusterId>(c);
      const AttrIndex attr = candidate_sets[c][j];
      tables.unary[c][j] =
          (lambda.interestingness * InterestingnessP(stats, cluster, attr) +
           lambda.sufficiency * SufficiencyP(stats, cluster, attr)) /
          static_cast<double>(clusters);
    }
  }
  // pair[c][cp]: λ_Div-weighted pair diversities divided by C(|C|,2).
  const double pair_norm =
      clusters >= 2 ? lambda.diversity / PairCount(clusters) : 0.0;
  if (pair_norm > 0.0) {
    tables.pair.resize(clusters);
    for (size_t c = 0; c < clusters; ++c) {
      tables.pair[c].resize(clusters);
      for (size_t cp = c + 1; cp < clusters; ++cp) {
        auto& matrix = tables.pair[c][cp];
        matrix.resize(candidate_sets[c].size() * candidate_sets[cp].size());
        for (size_t j = 0; j < candidate_sets[c].size(); ++j) {
          for (size_t jp = 0; jp < candidate_sets[cp].size(); ++jp) {
            matrix[j * candidate_sets[cp].size() + jp] =
                pair_norm *
                PairDiversity(stats, static_cast<ClusterId>(c),
                              static_cast<ClusterId>(cp),
                              candidate_sets[c][j], candidate_sets[cp][jp]);
          }
        }
      }
    }
  }
  return tables;
}

StatusOr<AttributeCombination> SearchCombination(
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const CombinationScoreTables& tables, double epsilon, double sensitivity,
    size_t max_combinations, Rng& rng, const Deadline& deadline) {
  const size_t clusters = candidate_sets.size();
  if (clusters == 0) {
    return Status::InvalidArgument("need at least one cluster");
  }
  if (tables.unary.size() != clusters) {
    return Status::InvalidArgument("score tables do not match clusters");
  }
  // Search-space size k_1·k_2·...·k_|C| with overflow-safe accumulation.
  size_t num_combinations = 1;
  for (const auto& set : candidate_sets) {
    if (set.empty()) {
      return Status::InvalidArgument("empty candidate set");
    }
    if (num_combinations > max_combinations / set.size()) {
      return Status::InvalidArgument(
          "combination space exceeds max_combinations=" +
          std::to_string(max_combinations) +
          "; reduce the candidate-set size k or the number of clusters");
    }
    num_combinations *= set.size();
  }

  const bool has_pairs = !tables.pair.empty();
  // Stream over all combinations with an odometer; track the argmax of
  // score·ε/(2Δ) + Gumbel(1) (the exponential mechanism via Gumbel-max), or
  // the exact argmax when epsilon <= 0 (non-private limit).
  const bool private_selection = epsilon > 0.0;
  if (private_selection && sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  const double scale =
      private_selection ? epsilon / (2.0 * sensitivity) : 1.0;
  std::vector<size_t> choice(clusters, 0);
  std::vector<size_t> best_choice(clusters, 0);
  double best_value = -std::numeric_limits<double>::infinity();
  for (size_t combo = 0; combo < num_combinations; ++combo) {
    if ((combo & (kDeadlineCheckStride - 1)) == 0) {
      DPX_RETURN_IF_ERROR(deadline.Check("stage2 search"));
    }
    double score = 0.0;
    for (size_t c = 0; c < clusters; ++c) {
      score += tables.unary[c][choice[c]];
    }
    if (has_pairs) {
      for (size_t c = 0; c < clusters; ++c) {
        for (size_t cp = c + 1; cp < clusters; ++cp) {
          score += tables.pair[c][cp][choice[c] * candidate_sets[cp].size() +
                                      choice[cp]];
        }
      }
    }
    const double value =
        scale * score + (private_selection ? rng.Gumbel(1.0) : 0.0);
    if (value > best_value) {
      best_value = value;
      best_choice = choice;
    }
    // Odometer increment.
    for (size_t c = 0; c < clusters; ++c) {
      if (++choice[c] < candidate_sets[c].size()) break;
      choice[c] = 0;
    }
  }

  AttributeCombination combination(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    combination[c] = candidate_sets[c][best_choice[c]];
  }
  return combination;
}

StatusOr<AttributeCombination> SearchCombinationParallel(
    const std::vector<std::vector<AttrIndex>>& candidate_sets,
    const CombinationScoreTables& tables, double epsilon, double sensitivity,
    size_t max_combinations, Rng& rng, size_t num_threads,
    const Deadline& deadline) {
  const size_t clusters = candidate_sets.size();
  if (clusters == 0) {
    return Status::InvalidArgument("need at least one cluster");
  }
  if (tables.unary.size() != clusters) {
    return Status::InvalidArgument("score tables do not match clusters");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  size_t num_combinations = 1;
  for (const auto& set : candidate_sets) {
    if (set.empty()) return Status::InvalidArgument("empty candidate set");
    if (num_combinations > max_combinations / set.size()) {
      return Status::InvalidArgument("combination space exceeds limit");
    }
    num_combinations *= set.size();
  }
  const bool private_selection = epsilon > 0.0;
  if (private_selection && sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  const double scale =
      private_selection ? epsilon / (2.0 * sensitivity) : 1.0;
  const bool has_pairs = !tables.pair.empty();
  const size_t workers = std::min(num_threads, num_combinations);

  struct ShardResult {
    double best_value = -std::numeric_limits<double>::infinity();
    std::vector<size_t> best_choice;
  };
  std::vector<ShardResult> results(workers);
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) shard_rngs.push_back(rng.Fork());

  // ParallelFor bodies cannot propagate Status, so cancellation is a shared
  // flag: the first shard to observe the deadline raises it, every shard
  // polls it at the same stride and bails, and the Status is materialized
  // after the join. Relaxed ordering suffices — the flag gates no data.
  std::atomic<bool> cancelled{false};

  auto scan_shard = [&](size_t worker) {
    const size_t begin = worker * num_combinations / workers;
    const size_t end = (worker + 1) * num_combinations / workers;
    if (begin >= end) return;
    Rng& shard_rng = shard_rngs[worker];
    ShardResult& result = results[worker];
    // Decode the first index (mixed radix, cluster 0 least significant —
    // matching the serial odometer), then advance incrementally.
    std::vector<size_t> choice(clusters);
    size_t remainder = begin;
    for (size_t c = 0; c < clusters; ++c) {
      choice[c] = remainder % candidate_sets[c].size();
      remainder /= candidate_sets[c].size();
    }
    for (size_t combo = begin; combo < end; ++combo) {
      if ((combo & (kDeadlineCheckStride - 1)) == 0) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        if (deadline.Expired()) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
      }
      double score = 0.0;
      for (size_t c = 0; c < clusters; ++c) {
        score += tables.unary[c][choice[c]];
      }
      if (has_pairs) {
        for (size_t c = 0; c < clusters; ++c) {
          for (size_t cp = c + 1; cp < clusters; ++cp) {
            score +=
                tables.pair[c][cp][choice[c] * candidate_sets[cp].size() +
                                   choice[cp]];
          }
        }
      }
      const double value =
          scale * score +
          (private_selection ? shard_rng.Gumbel(1.0) : 0.0);
      // Exact mode tie-break: prefer the lowest combination index, like the
      // serial scan (strict > keeps the first maximum within a shard; the
      // merge below prefers lower shards on ties).
      if (value > result.best_value) {
        result.best_value = value;
        result.best_choice = choice;
      }
      for (size_t c = 0; c < clusters; ++c) {
        if (++choice[c] < candidate_sets[c].size()) break;
        choice[c] = 0;
      }
    }
  };

  // The shard structure (and thus each shard's forked noise stream) is fixed
  // by num_threads; execution runs on the shared compute pool, which may use
  // fewer threads without changing which shard scans which range.
  ParallelFor(
      workers, /*grain=*/1,
      [&](size_t /*chunk*/, size_t begin, size_t end) {
        for (size_t w = begin; w < end; ++w) scan_shard(w);
      },
      workers);
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("deadline exceeded in stage2 search");
  }

  size_t best_worker = 0;
  for (size_t w = 1; w < workers; ++w) {
    if (results[w].best_value > results[best_worker].best_value) {
      best_worker = w;
    }
  }
  const std::vector<size_t>& best = results[best_worker].best_choice;
  DPX_CHECK(!best.empty());
  AttributeCombination combination(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    combination[c] = candidate_sets[c][best[c]];
  }
  return combination;
}

}  // namespace core_internal

namespace {

Status ValidateOptions(const DpClustXOptions& options) {
  DPX_RETURN_IF_ERROR(options.lambda.Validate());
  if (options.epsilon_cand_set <= 0.0 || options.epsilon_top_comb <= 0.0) {
    return Status::InvalidArgument(
        "epsilon_cand_set and epsilon_top_comb must be positive");
  }
  if (options.generate_histograms && options.epsilon_hist <= 0.0) {
    return Status::InvalidArgument(
        "epsilon_hist must be positive when histograms are generated");
  }
  if (options.num_candidates == 0) {
    return Status::InvalidArgument("num_candidates must be >= 1");
  }
  return Status::OK();
}

}  // namespace

StatusOr<GlobalExplanation> ExplainDpClustXWithLabels(
    const Dataset& dataset, const std::vector<ClusterId>& labels,
    size_t num_clusters, const DpClustXOptions& options,
    PrivacyBudget* budget) {
  DPX_RETURN_IF_ERROR(ValidateOptions(options));
  DPX_ASSIGN_OR_RETURN(const StatsCache stats,
                       StatsCache::Build(dataset, labels, num_clusters,
                                         options.num_threads));
  return ExplainDpClustXWithStats(stats, options, budget);
}

StatusOr<GlobalExplanation> ExplainDpClustXWithStats(
    const StatsCache& stats, const DpClustXOptions& options,
    PrivacyBudget* budget) {
  DPX_RETURN_IF_ERROR(ValidateOptions(options));
  // Check the deadline BEFORE reserving budget: a request that expired while
  // queued must charge nothing. Checkpoints past this point do not refund —
  // the accountant may overstate, never understate, the released ε.
  DPX_RETURN_IF_ERROR(options.deadline.Check("explain start"));

  // Reserve the whole run's budget up front so a failure cannot leave a
  // partially-released explanation.
  {
    DPX_SPAN("budget_reserve");
    if (budget != nullptr) {
      DPX_RETURN_IF_ERROR(budget->Spend(options.epsilon_cand_set,
                                        "dpclustx/stage1-candidates"));
      DPX_RETURN_IF_ERROR(budget->Spend(options.epsilon_top_comb,
                                        "dpclustx/stage2-selection"));
      if (options.generate_histograms) {
        DPX_RETURN_IF_ERROR(
            budget->Spend(options.epsilon_hist, "dpclustx/histograms"));
      }
    }
  }

  Rng rng(options.seed);

  // Algorithm 2, lines 1–2: conditional single-cluster weights γ from λ,
  // then the configured Stage-1 mechanism. (Spans time the stages only —
  // they never touch the Rng, so the noise-stream contract is untouched.)
  std::vector<std::vector<AttrIndex>> candidate_sets;
  {
    DPX_SPAN("stage1_candidates");
    const SingleClusterWeights gamma =
        options.lambda.ConditionalSingleClusterWeights();
    switch (options.stage1) {
      case Stage1Selector::kOneShotTopK: {
        CandidateSelectionOptions stage1;
        stage1.epsilon = options.epsilon_cand_set;
        stage1.k = options.num_candidates;
        stage1.gamma = gamma;
        stage1.deadline = options.deadline;
        DPX_ASSIGN_OR_RETURN(candidate_sets,
                             SelectCandidates(stats, stage1, rng));
        break;
      }
      case Stage1Selector::kSvt: {
        SvtCandidateOptions stage1;
        stage1.epsilon = options.epsilon_cand_set;
        stage1.max_candidates = options.num_candidates;
        stage1.threshold_fraction = options.svt_threshold_fraction;
        stage1.gamma = gamma;
        stage1.deadline = options.deadline;
        DPX_ASSIGN_OR_RETURN(candidate_sets,
                             SvtSelectCandidates(stats, stage1, rng));
        break;
      }
    }
  }

  // Lines 4–5: exponential mechanism over candidate combinations.
  AttributeCombination combination;
  {
    DPX_SPAN("stage2_select");
    const core_internal::CombinationScoreTables tables =
        core_internal::BuildLowSensitivityTables(stats, candidate_sets,
                                                 options.lambda);
    StatusOr<AttributeCombination> selected =
        options.num_threads > 1
            ? core_internal::SearchCombinationParallel(
                  candidate_sets, tables, options.epsilon_top_comb,
                  kGlScoreSensitivity, options.max_combinations, rng,
                  options.num_threads, options.deadline)
            : core_internal::SearchCombination(
                  candidate_sets, tables, options.epsilon_top_comb,
                  kGlScoreSensitivity, options.max_combinations, rng,
                  options.deadline);
    DPX_RETURN_IF_ERROR(selected.status());
    combination = std::move(selected).value();
  }

  GlobalExplanation explanation;
  explanation.combination = combination;
  explanation.candidate_sets = std::move(candidate_sets);
  if (!options.generate_histograms) return explanation;

  DPX_SPAN("stage2_histograms");
  // Line 6: distinct selected attributes A'.
  const std::set<AttrIndex> distinct(combination.begin(), combination.end());
  // Line 7: budget split between full-dataset and cluster histograms.
  const double eps_hist_all =
      options.epsilon_hist / (2.0 * static_cast<double>(distinct.size()));
  const double eps_hist_cluster = options.epsilon_hist / 2.0;

  // Lines 8–10: noisy full-dataset histograms (sequential composition over
  // the |A'| attributes).
  std::vector<Histogram> noisy_full(stats.num_attributes());
  for (AttrIndex attr : distinct) {
    DPX_RETURN_IF_ERROR(options.deadline.Check("full histograms"));
    DPX_ASSIGN_OR_RETURN(
        noisy_full[attr],
        ReleaseDpHistogram(stats.full_histogram(attr), eps_hist_all, rng,
                           options.histogram));
  }

  // Lines 11–15: per-cluster noisy histograms (parallel composition across
  // the disjoint clusters) and post-processed out-of-cluster histograms.
  explanation.per_cluster.resize(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    DPX_RETURN_IF_ERROR(options.deadline.Check("cluster histograms"));
    const auto cluster = static_cast<ClusterId>(c);
    const AttrIndex attr = combination[c];
    SingleClusterExplanation& e = explanation.per_cluster[c];
    e.cluster = cluster;
    e.attribute = attr;
    e.epsilon_inside = eps_hist_cluster;
    e.epsilon_full = eps_hist_all;
    e.noise = options.histogram.noise;
    DPX_ASSIGN_OR_RETURN(
        e.inside,
        ReleaseDpHistogram(stats.cluster_histogram(cluster, attr),
                           eps_hist_cluster, rng, options.histogram));
    e.outside = noisy_full[attr].SubtractClamped(e.inside);
  }
  return explanation;
}

StatusOr<GlobalExplanation> ExplainDpClustX(const Dataset& dataset,
                                            const ClusteringFunction& clustering,
                                            const DpClustXOptions& options,
                                            PrivacyBudget* budget) {
  const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
  return ExplainDpClustXWithLabels(dataset, labels, clustering.num_clusters(),
                                   options, budget);
}

}  // namespace dpclustx
