// Low-sensitivity quality functions (paper §4).
//
// The original interestingness/sufficiency/diversity measures of TabEE have
// sensitivity ≥ ½ against ranges of [0, 1], which makes their DP noise
// overwhelm the signal. The paper's low-sensitivity variants scale each
// single-cluster score by the cluster size: the attribute ranking *within a
// fixed dataset and clustering* is unchanged (Int_p = |D_c|·TVD;
// Suf_p ranking matches Suf via |D|·Suf = Σ_c Suf_p), but the sensitivity of
// each function drops to 1 against a range of [0, |D_c|], leaving room for
// calibrated noise.
//
// Sensitivity constants (proved in the paper):
//   Int_p     — Δ = 1, range [0, |D_c|]               (Prop. 4.4)
//   Suf_p     — Δ = 1, range [0, |D_c|]               (Prop. 4.6)
//   d (pair)  — Δ = 1, range [0, min(|D_c|, |D_c'|)]  (Lemma A.9)
//   Div_p     — Δ ≤ 1 (convex combination)            (Prop. 4.8)
//   SScore_γ  — Δ ≤ 1                                 (Prop. 4.10)
//   GlScore_λ — Δ ≤ 1                                 (Prop. 4.12)

#ifndef DPCLUSTX_CORE_QUALITY_H_
#define DPCLUSTX_CORE_QUALITY_H_

#include <vector>

#include "common/status.h"
#include "core/stats_cache.h"

namespace dpclustx {

/// Sensitivity of SScore_γ and GlScore_λ (both bounded by 1 for convex
/// weights).
inline constexpr double kSScoreSensitivity = 1.0;
inline constexpr double kGlScoreSensitivity = 1.0;

/// An attribute combination AC : C → A (paper §3), indexed by cluster id.
using AttributeCombination = std::vector<AttrIndex>;

/// Weights of the single-cluster score (Def. 4.9). Non-negative, sum 1.
struct SingleClusterWeights {
  double interestingness = 0.5;
  double sufficiency = 0.5;
};

/// Weights of the global score (Def. 4.11). Non-negative, sum 1.
struct GlobalWeights {
  double interestingness = 1.0 / 3.0;
  double sufficiency = 1.0 / 3.0;
  double diversity = 1.0 / 3.0;

  /// Validates non-negativity and unit sum (tolerance 1e-9).
  Status Validate() const;

  /// The conditional single-cluster weights γ = λ restricted to {Int, Suf}
  /// and renormalized (Algorithm 2, line 1). Falls back to (½, ½) when both
  /// are zero.
  SingleClusterWeights ConditionalSingleClusterWeights() const;
};

/// Low-sensitivity interestingness Int_p(D, f, c, A) (Def. 4.2):
///   ½ · || h_A(D_c) − (|D_c|/|D|)·h_A(D) ||₁  =  |D_c| · TVD(π_A(D), π_A(D_c)).
double InterestingnessP(const StatsCache& stats, ClusterId c, AttrIndex attr);

/// Low-sensitivity sufficiency Suf_p(D, f, c, A) (Def. 4.5):
///   Σ_{a ∈ dom_{D_c}(A)} cnt_{A=a}(D_c)² / cnt_{A=a}(D).
double SufficiencyP(const StatsCache& stats, ClusterId c, AttrIndex attr);

/// Pairwise diversity d(D, f, c, c', A_c, A_c') (Def. 4.7):
/// min(|D_c|, |D_c'|) times 1 for distinct attributes, or the TVD between
/// the two cluster distributions for a shared attribute.
double PairDiversity(const StatsCache& stats, ClusterId c, ClusterId c_prime,
                     AttrIndex attr_c, AttrIndex attr_c_prime);

/// Global diversity Div_p (Def. 4.8): mean pairwise diversity over all
/// unordered cluster pairs. Returns 0 for fewer than two clusters.
double DiversityP(const StatsCache& stats, const AttributeCombination& ac);

/// Single-cluster score SScore_γ (Def. 4.9).
double SingleClusterScore(const StatsCache& stats, ClusterId c,
                          AttrIndex attr, const SingleClusterWeights& gamma);

/// Global score GlScore_λ (Def. 4.11): λ_Int·mean_c Int_p + λ_Suf·mean_c
/// Suf_p + λ_Div·Div_p. Requires ac.size() == stats.num_clusters().
double GlobalScore(const StatsCache& stats, const AttributeCombination& ac,
                   const GlobalWeights& lambda);

/// Range upper bound R_GlScore of Prop. 4.12 (used in tests and utility
/// reports).
double GlobalScoreRangeBound(const StatsCache& stats,
                             const GlobalWeights& lambda);

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_QUALITY_H_
