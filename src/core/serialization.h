// JSON serialization of explanations and schemas.
//
// The DPClustX demo renders explanations in a UI; this module produces (and
// re-reads) the interchange payload: attribute names instead of indices,
// value labels alongside bin estimates, and the Stage-1 candidate sets for
// auditability. Serialization is pure post-processing of the DP release —
// it never touches sensitive data.

#ifndef DPCLUSTX_CORE_SERIALIZATION_H_
#define DPCLUSTX_CORE_SERIALIZATION_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "core/explanation.h"
#include "data/schema.h"

namespace dpclustx {

/// Serializes a schema (attribute names + domains).
std::string SchemaToJson(const Schema& schema);

/// Same document as SchemaToJson, as a JsonValue — for callers embedding
/// the schema into a larger payload (the `schema` service op, snapshot
/// provenance) without a dump/re-parse round trip.
JsonValue SchemaToJsonValue(const Schema& schema);

/// Parses a schema produced by SchemaToJson.
StatusOr<Schema> SchemaFromJson(const std::string& json);

/// Serializes a global explanation against its schema. Attribute references
/// are serialized by name. Requires every attribute index to be valid for
/// `schema`.
std::string ExplanationToJson(const GlobalExplanation& explanation,
                              const Schema& schema);

/// Parses an explanation produced by ExplanationToJson, resolving attribute
/// names against `schema`. Returns InvalidArgument on shape mismatches and
/// NotFound for unknown attribute names.
StatusOr<GlobalExplanation> ExplanationFromJson(const std::string& json,
                                                const Schema& schema);

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_SERIALIZATION_H_
