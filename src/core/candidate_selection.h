// Stage-1 of DPClustX: Select-Candidates (Algorithm 1).
//
// For each cluster, privately selects the top-k explanation attributes by
// the single-cluster score SScore_γ using the one-shot top-k mechanism at
// per-cluster budget ε_CandSet / |C|. Parallel composition does NOT apply —
// an attribute's score for one cluster depends on the *whole* dataset (the
// full-dataset histogram appears in Int_p and Suf_p), so the per-cluster
// selections compose sequentially (paper §5.1).

#ifndef DPCLUSTX_CORE_CANDIDATE_SELECTION_H_
#define DPCLUSTX_CORE_CANDIDATE_SELECTION_H_

#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/quality.h"
#include "core/stats_cache.h"

namespace dpclustx {

struct CandidateSelectionOptions {
  /// Total budget ε_CandSet of Stage-1.
  double epsilon = 0.1;
  /// Candidate-set size k per cluster.
  size_t k = 3;
  /// γ weights of the single-cluster score.
  SingleClusterWeights gamma;
  /// Cooperative cancellation bound, checked between clusters. Default: no
  /// deadline. A DeadlineExceeded return after some clusters were scanned is
  /// safe: the caller has already paid the stage's full ε up front and no
  /// partial selection escapes.
  Deadline deadline;
};

/// Runs Algorithm 1. Returns one candidate set per cluster (attribute
/// indices, ordered by decreasing noisy score). Requires k <=
/// num_attributes and epsilon > 0.
StatusOr<std::vector<std::vector<AttrIndex>>> SelectCandidates(
    const StatsCache& stats, const CandidateSelectionOptions& options,
    Rng& rng);

/// Noise-free variant (exact top-k by SScore_γ); used by the non-private
/// TabEE baseline and by tests as the ε → ∞ limit.
StatusOr<std::vector<std::vector<AttrIndex>>> SelectCandidatesExact(
    const StatsCache& stats, size_t k, const SingleClusterWeights& gamma);

/// Alternative Stage-1 built on the Sparse Vector Technique: instead of a
/// fixed candidate count, report (up to max_candidates) attributes whose
/// single-cluster score clears a per-cluster bar of threshold_fraction ·
/// |D_c|. Because |D_c| is sensitive, a small slice of each cluster's
/// budget buys a noisy size first; the rest drives AboveThreshold. Natural
/// when the analyst can name a meaningful score level ("at least 30% of the
/// cluster's mass must shift") rather than a count; the trade-off is that
/// SVT keeps the *first* qualifying attributes in scan order, not the best
/// ones (see the stage1-selector ablation bench).
struct SvtCandidateOptions {
  /// Total budget ε_CandSet across all clusters.
  double epsilon = 0.1;
  /// Cap on candidates per cluster (SVT's c parameter).
  size_t max_candidates = 3;
  /// The bar, as a fraction of the (noisy) cluster size; SScore_γ ranges
  /// over [0, |D_c|].
  double threshold_fraction = 0.3;
  /// Slice of each cluster's budget spent on the noisy cluster size.
  double size_budget_share = 0.1;
  SingleClusterWeights gamma;
  /// Cooperative cancellation bound, checked between clusters (see
  /// CandidateSelectionOptions::deadline).
  Deadline deadline;
};

/// Runs the SVT Stage-1. A cluster with no qualifying attribute falls back
/// to the data-independent candidate {attribute 0} so Stage-2 always has a
/// non-empty set. Satisfies ε-DP overall.
StatusOr<std::vector<std::vector<AttrIndex>>> SvtSelectCandidates(
    const StatsCache& stats, const SvtCandidateOptions& options, Rng& rng);

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_CANDIDATE_SELECTION_H_
