#include "core/stats_cache.h"

#include <cmath>

#include "obs/trace.h"

namespace dpclustx {

StatusOr<StatsCache> StatsCache::Build(const Dataset& dataset,
                                       const std::vector<ClusterId>& labels,
                                       size_t num_clusters,
                                       size_t num_threads) {
  DPX_SPAN("stats_cache_build");
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  // One fused sharded sweep over every column fills all |A|·|C| histograms
  // (it also validates label range and size); the old per-attribute variant
  // re-read the label vector |A| times. Counts are merged by exact integer
  // addition, so the result is bitwise-identical at any thread count.
  DPX_ASSIGN_OR_RETURN(
      std::vector<std::vector<Histogram>> cluster_histograms,
      dataset.ComputeAllGroupHistograms(labels, num_clusters, num_threads));

  StatsCache cache;
  cache.schema_ = dataset.schema();
  cache.num_rows_ = dataset.num_rows();
  cache.cluster_sizes_.assign(num_clusters, 0);
  for (ClusterId label : labels) ++cache.cluster_sizes_[label];

  const size_t attrs = dataset.num_attributes();
  cache.full_histograms_.reserve(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    // The full histogram is the in-place bin-wise sum of the per-cluster
    // histograms (clusters partition the dataset; integer bins, exact).
    Histogram full(dataset.schema().attribute(attr).domain_size());
    for (const Histogram& h : cluster_histograms[a]) full.PlusInPlace(h);
    cache.full_histograms_.push_back(std::move(full));
  }
  cache.cluster_histograms_ = std::move(cluster_histograms);
  return cache;
}

StatusOr<StatsCache> StatsCache::BuildAppended(
    const StatsCache& base, const Dataset& tail,
    const std::vector<ClusterId>& tail_labels, size_t num_threads) {
  DPX_SPAN("stats_cache_build_appended");
  if (tail.num_attributes() != base.num_attributes()) {
    return Status::InvalidArgument(
        "tail has " + std::to_string(tail.num_attributes()) +
        " attributes, base cache has " +
        std::to_string(base.num_attributes()));
  }
  for (size_t a = 0; a < base.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    if (tail.schema().attribute(attr).domain_size() !=
        base.schema().attribute(attr).domain_size()) {
      return Status::InvalidArgument("tail domain mismatch on attribute '" +
                                     tail.schema().attribute(attr).name() +
                                     "'");
    }
  }
  // Count only the tail, with the same fused sweep Build uses, then add
  // the counts onto the base bin by bin. Same kernels, same merge order,
  // exact integer addition throughout.
  DPX_ASSIGN_OR_RETURN(std::vector<std::vector<Histogram>> tail_histograms,
                       tail.ComputeAllGroupHistograms(
                           tail_labels, base.num_clusters(), num_threads));

  StatsCache cache;
  cache.schema_ = base.schema_;
  cache.num_rows_ = base.num_rows_ + tail.num_rows();
  cache.cluster_sizes_ = base.cluster_sizes_;
  for (ClusterId label : tail_labels) ++cache.cluster_sizes_[label];

  cache.cluster_histograms_ = std::move(tail_histograms);
  cache.full_histograms_.reserve(base.num_attributes());
  for (size_t a = 0; a < base.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    for (size_t c = 0; c < base.num_clusters(); ++c) {
      cache.cluster_histograms_[a][c].PlusInPlace(
          base.cluster_histogram(static_cast<ClusterId>(c), attr));
    }
    // Rebuild the full histogram the same way Build does — as the bin-wise
    // sum of the per-cluster histograms in cluster order — so the float
    // add chain matches a cold build exactly.
    Histogram full(cache.schema_.attribute(attr).domain_size());
    for (const Histogram& h : cache.cluster_histograms_[a]) {
      full.PlusInPlace(h);
    }
    cache.full_histograms_.push_back(std::move(full));
  }
  return cache;
}

StatusOr<StatsCache> StatsCache::FromHistograms(
    Schema schema, std::vector<Histogram> full_histograms,
    std::vector<std::vector<Histogram>> cluster_histograms) {
  DPX_RETURN_IF_ERROR(schema.Validate());
  if (full_histograms.size() != schema.num_attributes() ||
      cluster_histograms.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "need one full and one per-cluster histogram list per attribute");
  }
  const size_t num_clusters = cluster_histograms.empty()
                                  ? 0
                                  : cluster_histograms[0].size();
  if (num_clusters == 0) {
    return Status::InvalidArgument("need at least one cluster");
  }
  for (size_t a = 0; a < full_histograms.size(); ++a) {
    const size_t domain =
        schema.attribute(static_cast<AttrIndex>(a)).domain_size();
    if (full_histograms[a].domain_size() != domain) {
      return Status::InvalidArgument("full histogram domain mismatch");
    }
    if (cluster_histograms[a].size() != num_clusters) {
      return Status::InvalidArgument("inconsistent cluster counts");
    }
    for (const Histogram& h : cluster_histograms[a]) {
      if (h.domain_size() != domain) {
        return Status::InvalidArgument("cluster histogram domain mismatch");
      }
    }
  }

  StatsCache cache;
  cache.schema_ = std::move(schema);
  cache.num_rows_ = static_cast<size_t>(
      std::max(0.0, std::round(full_histograms[0].Total())));
  cache.cluster_sizes_.resize(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    cache.cluster_sizes_[c] = static_cast<size_t>(
        std::max(0.0, std::round(cluster_histograms[0][c].Total())));
  }
  cache.full_histograms_ = std::move(full_histograms);
  cache.cluster_histograms_ = std::move(cluster_histograms);
  return cache;
}

}  // namespace dpclustx
