#include "core/pipeline.h"

#include "cluster/agglomerative.h"
#include "cluster/dp_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "obs/trace.h"

namespace dpclustx {

StatusOr<ClusteringMethod> ParseClusteringMethod(const std::string& name) {
  if (name == "k-means") return ClusteringMethod::kKMeans;
  if (name == "dp-k-means") return ClusteringMethod::kDpKMeans;
  if (name == "k-modes") return ClusteringMethod::kKModes;
  if (name == "agglomerative") return ClusteringMethod::kAgglomerative;
  if (name == "gmm") return ClusteringMethod::kGmm;
  return Status::InvalidArgument("unknown clustering method '" + name + "'");
}

StatusOr<PipelineResult> RunPipeline(const Dataset& dataset,
                                     const PipelineOptions& options,
                                     PrivacyBudget* budget) {
  StatusOr<std::unique_ptr<ClusteringFunction>> clustering =
      Status::Internal("unset");
  {
    DPX_SPAN("clustering_fit");
    switch (options.method) {
      case ClusteringMethod::kKMeans: {
        KMeansOptions fit;
        fit.num_clusters = options.num_clusters;
        fit.seed = options.clustering_seed;
        fit.num_threads = options.clustering_threads;
        clustering = FitKMeans(dataset, fit);
        break;
      }
      case ClusteringMethod::kDpKMeans: {
        DpKMeansOptions fit;
        fit.num_clusters = options.num_clusters;
        fit.epsilon = options.epsilon_clustering;
        fit.seed = options.clustering_seed;
        clustering = FitDpKMeans(dataset, fit, budget);
        break;
      }
      case ClusteringMethod::kKModes: {
        KModesOptions fit;
        fit.num_clusters = options.num_clusters;
        fit.seed = options.clustering_seed;
        fit.num_threads = options.clustering_threads;
        clustering = FitKModes(dataset, fit);
        break;
      }
      case ClusteringMethod::kAgglomerative: {
        AgglomerativeOptions fit;
        fit.num_clusters = options.num_clusters;
        fit.seed = options.clustering_seed;
        clustering = FitAgglomerative(dataset, fit);
        break;
      }
      case ClusteringMethod::kGmm: {
        GmmOptions fit;
        fit.num_components = options.num_clusters;
        fit.seed = options.clustering_seed;
        fit.num_threads = options.clustering_threads;
        clustering = FitGmm(dataset, fit);
        break;
      }
    }
  }  // DPX_SPAN("clustering_fit")
  DPX_RETURN_IF_ERROR(clustering.status());

  std::vector<ClusterId> labels;
  {
    DPX_SPAN("assign_all");
    labels = (*clustering)->AssignAll(dataset);
  }
  DPX_ASSIGN_OR_RETURN(
      StatsCache stats,
      StatsCache::Build(dataset, labels, options.num_clusters,
                        options.explain.num_threads));
  DPX_ASSIGN_OR_RETURN(
      GlobalExplanation explanation,
      ExplainDpClustXWithLabels(dataset, labels, options.num_clusters,
                                options.explain, budget));
  PipelineResult result{std::move(explanation), std::move(labels),
                        std::move(stats), (*clustering)->name()};
  return result;
}

}  // namespace dpclustx
