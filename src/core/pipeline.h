// One-call pipeline facade: cluster a dataset and explain it under a single
// privacy budget. This is the API surface the command-line tools and most
// downstream adopters want — pick a clustering method and the budgets, get
// back the explanation, the labels, and the evaluation-ready statistics.

#ifndef DPCLUSTX_CORE_PIPELINE_H_
#define DPCLUSTX_CORE_PIPELINE_H_

#include <string>

#include "cluster/clustering.h"
#include "common/status.h"
#include "core/explainer.h"
#include "core/stats_cache.h"
#include "dp/privacy_budget.h"

namespace dpclustx {

enum class ClusteringMethod {
  kKMeans,
  kDpKMeans,
  kKModes,
  kAgglomerative,
  kGmm,
};

/// Parses "k-means" / "dp-k-means" / "k-modes" / "agglomerative" / "gmm".
StatusOr<ClusteringMethod> ParseClusteringMethod(const std::string& name);

struct PipelineOptions {
  ClusteringMethod method = ClusteringMethod::kKMeans;
  size_t num_clusters = 5;
  /// Budget of the clustering step; only consumed by kDpKMeans (the other
  /// methods are non-private and MUST only be used on non-sensitive data or
  /// for evaluation).
  double epsilon_clustering = 1.0;
  /// DPClustX explanation parameters (budgets, k, λ, noise, seed, threads).
  DpClustXOptions explain;
  /// Seed for the clustering fit (the explanation uses explain.seed).
  uint64_t clustering_seed = 1;
  /// Parallelism cap for the clustering fit's per-row passes (k-means,
  /// k-modes, gmm; 0 = compute-pool width). Fits are identical for a given
  /// clustering_seed at any value, so this is a pure performance knob —
  /// unlike explain.num_threads, which participates in the noise stream.
  size_t clustering_threads = 0;
};

struct PipelineResult {
  GlobalExplanation explanation;
  /// Per-row labels of the fitted clustering.
  std::vector<ClusterId> labels;
  /// Exact statistics of the clustering — SENSITIVE; for evaluation only,
  /// never for release.
  StatsCache stats;
  /// Description of the fitted clustering ("dp-k-means(k=5)").
  std::string clustering_name;
};

/// Runs cluster-then-explain. If `budget` is non-null, both stages charge
/// it (DP clustering first, so an insufficient budget fails before any
/// explanation noise is drawn).
StatusOr<PipelineResult> RunPipeline(const Dataset& dataset,
                                     const PipelineOptions& options,
                                     PrivacyBudget* budget = nullptr);

}  // namespace dpclustx

#endif  // DPCLUSTX_CORE_PIPELINE_H_
