// Durable snapshot of the hot explanation-service state.
//
// ServiceSnapshot is a plain-data mirror of everything a dpclustx_serve
// worker must not lose across a crash or restart:
//
//   - every registered dataset: schema (as serialization JSON), the narrow
//     column bytes exactly as stored (PR 4 layout) — or, for memory-mapped
//     DPXCOL datasets, a by-reference (path, file uid, rows) triple instead
//     of the bytes — the source fingerprint
//     and registry uid (uids are pinned across restore so cached release
//     keys stay valid), the cross-session ε cap and its ledger, and every
//     published clustering view (labels only — the StatsCache is rebuilt
//     deterministically on load, bitwise-identical per the PR 2 contract);
//   - every open session's budget ledger, entry by entry, in charge order
//     (so the floating-point spend total reconstructs bit-for-bit);
//   - the release cache in LRU order (a DP release is paid-for bytes;
//     losing it costs ε on the next identical request);
//   - the audit-log cursor (next_seq) plus its exact per-tenant totals and
//     retained tail. The cursor is the replay anchor: crash recovery loads
//     the snapshot, then replays the durable audit journal strictly after
//     the cursor, so every ε charge lands exactly once.
//
// This layer is deliberately below src/service: it defines the state
// structs and the byte codec only. Harvesting live service objects into a
// ServiceSnapshot and applying one back is the service layer's job
// (ServiceEngine::SaveSnapshotToFile / RestoreFromFiles), which keeps the
// format testable without a running engine.
//
// Versioning rules (DESIGN.md §11): the file carries a format version;
// loading refuses any version newer than this build (forward-refusing).
// Within a version, unknown section ids are skipped — appending sections
// is a compatible change; any other layout change bumps the version.

#ifndef DPCLUSTX_SNAPSHOT_SNAPSHOT_H_
#define DPCLUSTX_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "snapshot/snapshot_io.h"

namespace dpclustx::snapshot {

/// One budget-ledger entry (mirrors PrivacyBudget::LedgerEntry).
struct LedgerEntryState {
  std::string label;
  double epsilon = 0.0;
};

/// One published clustering view: labels only; the StatsCache is rebuilt on
/// load from (columns, labels) and is bitwise-identical by construction.
struct ClusteringState {
  std::string id;
  std::string description;
  std::string fingerprint;
  uint64_t num_clusters = 0;
  std::vector<uint32_t> labels;
};

/// One column's physical bytes, exactly as NarrowColumn stores them.
struct ColumnState {
  uint8_t width_tag = 0;  // ColumnWidth as u8: 0 = k8, 1 = k16, 2 = k32
  uint64_t rows = 0;
  std::string bytes;  // rows * width bytes, host-order codes
};

/// One registered dataset. Heap datasets inline their column bytes in
/// `columns`; memory-mapped (DPXCOL) datasets are saved *by reference*
/// instead — `columnar_path` names the file, `columnar_file_uid` pins its
/// identity (the restore refuses a swapped file), and `columnar_rows` is the
/// row count at save time (the file may have grown since: appends are
/// durable in the file itself, and the restore maps exactly the saved
/// prefix so the rebuilt state matches the snapshot's ledgers and caches).
struct DatasetState {
  std::string name;
  std::string source;
  uint64_t uid = 0;
  /// Append generation at save time (format v2+; 0 in v1 files). Release
  /// cache keys embed it, so it is pinned across restore like the uid.
  uint64_t epoch = 0;
  uint8_t width_policy = 0;  // WidthPolicy as u8
  double cap_epsilon = 0.0;  // <= 0 = uncapped
  std::vector<LedgerEntryState> cap_ledger;
  std::string schema_json;  // serialization::SchemaToJson payload
  /// Non-empty = by-reference DPXCOL dataset (format v2+): `columns` is
  /// empty and the data lives in this file.
  std::string columnar_path;
  uint64_t columnar_file_uid = 0;
  uint64_t columnar_rows = 0;
  std::vector<ColumnState> columns;
  std::vector<ClusteringState> clusterings;
};

/// One open session's ledger. `spent` is the ledger total at save time;
/// after replaying `ledger` into a fresh budget the rebuilt total must
/// equal it bit-for-bit (checked on load — a mismatch means corruption).
struct SessionState {
  std::string id;
  std::string dataset_name;
  uint64_t dataset_uid = 0;
  double total_epsilon = 0.0;
  double spent = 0.0;
  /// True when, at save time, the audit log's per-tenant granted total
  /// equaled this ledger's spent total exactly (the PR 5 invariant; false
  /// only when a closed session's records share the tenant id). Recovery
  /// re-asserts the equality after replay only when it held at save.
  bool audit_matches_ledger = true;
  std::vector<LedgerEntryState> ledger;
};

/// One release-cache entry. Entries are saved least- to most-recently used
/// so a restore rebuilds the same LRU order.
struct CacheEntryState {
  std::string key;
  std::string payload;
};

/// One audit record (mirrors obs::AuditRecord).
struct AuditRecordState {
  uint64_t seq = 0;
  std::string tenant;
  std::string dataset;
  std::string label;
  double epsilon = 0.0;
  bool granted = false;
  std::string reason;
};

/// Exact audit totals for one tenant (or the global roll-up).
struct AuditTotalsState {
  std::string tenant;  // empty for the global totals
  double epsilon_charged = 0.0;
  double epsilon_denied = 0.0;
  uint64_t charges = 0;
  uint64_t denials = 0;
};

/// Audit-log cursor + totals + retained tail.
struct AuditState {
  uint64_t next_seq = 1;  // replay anchor: journal records >= next_seq apply
  uint64_t dropped = 0;
  AuditTotalsState global;
  std::vector<AuditTotalsState> tenants;
  std::vector<AuditRecordState> tail;
};

/// The whole worker state.
struct ServiceSnapshot {
  /// The format version this state was decoded from (kSnapshotFormatVersion
  /// when built fresh for encoding). Older-version files load with the new
  /// fields at their defaults (epoch 0, no columnar reference).
  uint32_t format_version = kSnapshotFormatVersion;
  std::vector<DatasetState> datasets;
  std::vector<SessionState> sessions;
  std::vector<CacheEntryState> cache;  // LRU order, oldest first
  AuditState audit;
};

/// Encodes to the complete snapshot file image (magic + version + CRC'd
/// sections). Deterministic: the same state encodes to the same bytes.
std::string EncodeServiceSnapshot(const ServiceSnapshot& state);

/// Decodes and verifies a snapshot file image. IoError on corruption or
/// truncation, FailedPrecondition on an unsupported (newer) format version.
StatusOr<ServiceSnapshot> DecodeServiceSnapshot(const std::string& bytes);

/// Writes the snapshot atomically (tmp + rename) to `path`.
Status SaveSnapshotFile(const std::string& path, const ServiceSnapshot& state);

/// Reads and decodes `path`. NotFound when the file does not exist.
StatusOr<ServiceSnapshot> LoadSnapshotFile(const std::string& path);

}  // namespace dpclustx::snapshot

#endif  // DPCLUSTX_SNAPSHOT_SNAPSHOT_H_
