// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over a byte span.
//
// Every snapshot section carries the CRC of its payload so a torn write,
// bit rot, or a hand-edited file is refused at load time instead of being
// replayed into wrong budget ledgers. Table-driven, no dependencies; the
// 256-entry table is built once on first use.

#ifndef DPCLUSTX_SNAPSHOT_CRC32_H_
#define DPCLUSTX_SNAPSHOT_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace dpclustx::snapshot {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

/// CRC-32 of `size` bytes at `data`. Pass the previous return value as
/// `seed` to checksum a discontiguous stream.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto& table = Crc32Table();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace dpclustx::snapshot

#endif  // DPCLUSTX_SNAPSHOT_CRC32_H_
