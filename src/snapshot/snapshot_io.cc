#include "snapshot/snapshot_io.h"

#include <cstring>

#include "snapshot/crc32.h"

namespace dpclustx::snapshot {

void ByteWriter::PutU32(uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xffu);
  }
  buffer_.append(bytes, sizeof(bytes));
}

void ByteWriter::PutU64(uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xffu);
  }
  buffer_.append(bytes, sizeof(bytes));
}

void ByteWriter::PutDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(const std::string& value) {
  PutU64(value.size());
  buffer_.append(value);
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status ByteReader::Need(size_t bytes) const {
  if (size_ - pos_ < bytes) {
    return Status::IoError("snapshot truncated: need " +
                           std::to_string(bytes) + " bytes at offset " +
                           std::to_string(pos_) + ", have " +
                           std::to_string(size_ - pos_));
  }
  return Status::OK();
}

StatusOr<uint8_t> ByteReader::GetU8() {
  DPX_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> ByteReader::GetU32() {
  DPX_RETURN_IF_ERROR(Need(4));
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  DPX_RETURN_IF_ERROR(Need(8));
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

StatusOr<double> ByteReader::GetDouble() {
  DPX_ASSIGN_OR_RETURN(const uint64_t bits, GetU64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

StatusOr<std::string> ByteReader::GetString() {
  DPX_ASSIGN_OR_RETURN(const uint64_t size, GetU64());
  // The length is attacker-controlled in a corrupted file; bound it by the
  // bytes actually present before allocating.
  return GetBytes(size);
}

StatusOr<std::string> ByteReader::GetBytes(size_t size) {
  DPX_RETURN_IF_ERROR(Need(size));
  std::string value(data_ + pos_, size);
  pos_ += size;
  return value;
}

SectionWriter::SectionWriter(uint32_t version) {
  file_.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  ByteWriter header;
  header.PutU32(version);
  file_.append(header.buffer());
}

void SectionWriter::AddSection(SectionId id, const std::string& payload) {
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(id));
  frame.PutU64(payload.size());
  frame.PutU32(Crc32(payload.data(), payload.size()));
  file_.append(frame.buffer());
  file_.append(payload);
}

StatusOr<std::vector<Section>> ParseSnapshotFile(const std::string& bytes,
                                                 uint32_t* version_out) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::IoError("not a DPClustX snapshot (bad magic)");
  }
  ByteReader reader(bytes.data() + sizeof(kSnapshotMagic),
                    bytes.size() - sizeof(kSnapshotMagic));
  DPX_ASSIGN_OR_RETURN(const uint32_t version, reader.GetU32());
  if (version == 0 || version > kSnapshotFormatVersion) {
    // Forward-refusing: a newer format is rejected whole, never half-read.
    return Status::FailedPrecondition(
        "snapshot format version " + std::to_string(version) +
        " is not supported by this build (max " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (version_out != nullptr) *version_out = version;

  std::vector<Section> sections;
  while (!reader.AtEnd()) {
    DPX_ASSIGN_OR_RETURN(const uint32_t id, reader.GetU32());
    DPX_ASSIGN_OR_RETURN(const uint64_t length, reader.GetU64());
    DPX_ASSIGN_OR_RETURN(const uint32_t expected_crc, reader.GetU32());
    if (reader.remaining() < length) {
      return Status::IoError("snapshot truncated inside section " +
                             std::to_string(id) + " (need " +
                             std::to_string(length) + " bytes, have " +
                             std::to_string(reader.remaining()) + ")");
    }
    Section section;
    section.id = static_cast<SectionId>(id);
    DPX_ASSIGN_OR_RETURN(std::string payload, reader.GetBytes(length));
    const uint32_t actual_crc = Crc32(payload.data(), payload.size());
    if (actual_crc != expected_crc) {
      return Status::IoError("snapshot section " + std::to_string(id) +
                             " failed its CRC check (file corrupt)");
    }
    section.payload = std::move(payload);
    sections.push_back(std::move(section));
  }
  return sections;
}

}  // namespace dpclustx::snapshot
