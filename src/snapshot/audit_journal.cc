#include "snapshot/audit_journal.h"

#include <cerrno>
#include <cstring>

#include "common/file_util.h"
#include "common/json.h"

namespace dpclustx::snapshot {

AuditJournal::~AuditJournal() { Close(); }

Status AuditJournal::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("audit journal already open: " + path_);
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open audit journal " + path + ": " +
                           std::strerror(errno));
  }
  file_ = file;
  path_ = path;
  return Status::OK();
}

bool AuditJournal::is_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_ != nullptr;
}

Status AuditJournal::Append(const AuditRecordState& record) {
  const std::string line = AuditRecordToJsonLine(record) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("audit journal is not open");
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Status::IoError("audit journal write failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

void AuditJournal::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string AuditRecordToJsonLine(const AuditRecordState& record) {
  JsonValue obj = JsonValue::Object();
  obj.Set("seq", JsonValue::Number(static_cast<double>(record.seq)));
  obj.Set("tenant", JsonValue::String(record.tenant));
  obj.Set("dataset", JsonValue::String(record.dataset));
  obj.Set("label", JsonValue::String(record.label));
  obj.Set("epsilon", JsonValue::Number(record.epsilon));
  obj.Set("granted", JsonValue::Bool(record.granted));
  obj.Set("reason", JsonValue::String(record.reason));
  return obj.Dump();
}

namespace {

StatusOr<AuditRecordState> ParseJournalLine(const std::string& line) {
  DPX_ASSIGN_OR_RETURN(const JsonValue obj, JsonValue::Parse(line));
  AuditRecordState record;
  DPX_ASSIGN_OR_RETURN(const double seq, obj.GetNumber("seq"));
  record.seq = static_cast<uint64_t>(seq);
  DPX_ASSIGN_OR_RETURN(record.tenant, obj.GetString("tenant"));
  DPX_ASSIGN_OR_RETURN(record.dataset, obj.GetString("dataset"));
  DPX_ASSIGN_OR_RETURN(record.label, obj.GetString("label"));
  DPX_ASSIGN_OR_RETURN(record.epsilon, obj.GetNumber("epsilon"));
  if (!obj.Has("granted") ||
      obj.at("granted").type() != JsonValue::Type::kBool) {
    return Status::InvalidArgument("journal record missing bool 'granted'");
  }
  record.granted = obj.at("granted").AsBool();
  DPX_ASSIGN_OR_RETURN(record.reason, obj.GetString("reason"));
  return record;
}

}  // namespace

StatusOr<std::vector<AuditRecordState>> ReadAuditJournal(
    const std::string& path) {
  DPX_ASSIGN_OR_RETURN(const std::string contents, ReadFileToString(path));
  std::vector<AuditRecordState> records;
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t newline = contents.find('\n', pos);
    if (newline == std::string::npos) {
      // No terminating newline: the process died mid-append. That record's
      // response was never sent, so skipping it keeps accounting exact.
      break;
    }
    const std::string line = contents.substr(pos, newline - pos);
    pos = newline + 1;
    if (line.empty()) continue;
    StatusOr<AuditRecordState> record = ParseJournalLine(line);
    if (!record.ok()) {
      return Status::IoError(
          "audit journal " + path + " is corrupt (not merely torn): " +
          record.status().message());
    }
    records.push_back(std::move(record).value());
  }
  return records;
}

}  // namespace dpclustx::snapshot
