#include "snapshot/snapshot.h"

#include "common/file_util.h"

namespace dpclustx::snapshot {

namespace {

// ---- encode helpers -------------------------------------------------------

void PutLedger(ByteWriter& w, const std::vector<LedgerEntryState>& ledger) {
  w.PutU64(ledger.size());
  for (const LedgerEntryState& entry : ledger) {
    w.PutString(entry.label);
    w.PutDouble(entry.epsilon);
  }
}

StatusOr<std::vector<LedgerEntryState>> GetLedger(ByteReader& r) {
  DPX_ASSIGN_OR_RETURN(const uint64_t count, r.GetU64());
  std::vector<LedgerEntryState> ledger;
  ledger.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LedgerEntryState entry;
    DPX_ASSIGN_OR_RETURN(entry.label, r.GetString());
    DPX_ASSIGN_OR_RETURN(entry.epsilon, r.GetDouble());
    ledger.push_back(std::move(entry));
  }
  return ledger;
}

void PutTotals(ByteWriter& w, const AuditTotalsState& totals) {
  w.PutString(totals.tenant);
  w.PutDouble(totals.epsilon_charged);
  w.PutDouble(totals.epsilon_denied);
  w.PutU64(totals.charges);
  w.PutU64(totals.denials);
}

StatusOr<AuditTotalsState> GetTotals(ByteReader& r) {
  AuditTotalsState totals;
  DPX_ASSIGN_OR_RETURN(totals.tenant, r.GetString());
  DPX_ASSIGN_OR_RETURN(totals.epsilon_charged, r.GetDouble());
  DPX_ASSIGN_OR_RETURN(totals.epsilon_denied, r.GetDouble());
  DPX_ASSIGN_OR_RETURN(totals.charges, r.GetU64());
  DPX_ASSIGN_OR_RETURN(totals.denials, r.GetU64());
  return totals;
}

std::string EncodeMeta(const ServiceSnapshot& state) {
  ByteWriter w;
  w.PutU64(state.datasets.size());
  w.PutU64(state.sessions.size());
  w.PutU64(state.cache.size());
  w.PutU64(state.audit.next_seq);
  return w.Take();
}

std::string EncodeDatasets(const ServiceSnapshot& state) {
  ByteWriter w;
  w.PutU64(state.datasets.size());
  for (const DatasetState& ds : state.datasets) {
    w.PutString(ds.name);
    w.PutString(ds.source);
    w.PutU64(ds.uid);
    w.PutU64(ds.epoch);  // v2
    w.PutU8(ds.width_policy);
    w.PutDouble(ds.cap_epsilon);
    PutLedger(w, ds.cap_ledger);
    w.PutString(ds.schema_json);
    // v2: by-reference DPXCOL source (empty path = inline columns below).
    w.PutString(ds.columnar_path);
    w.PutU64(ds.columnar_file_uid);
    w.PutU64(ds.columnar_rows);
    w.PutU64(ds.columns.size());
    for (const ColumnState& col : ds.columns) {
      w.PutU8(col.width_tag);
      w.PutU64(col.rows);
      w.PutString(col.bytes);
    }
    w.PutU64(ds.clusterings.size());
    for (const ClusteringState& cl : ds.clusterings) {
      w.PutString(cl.id);
      w.PutString(cl.description);
      w.PutString(cl.fingerprint);
      w.PutU64(cl.num_clusters);
      w.PutU64(cl.labels.size());
      for (const uint32_t label : cl.labels) w.PutU32(label);
    }
  }
  return w.Take();
}

StatusOr<std::vector<DatasetState>> DecodeDatasets(const std::string& payload,
                                                   uint32_t version) {
  ByteReader r(payload);
  DPX_ASSIGN_OR_RETURN(const uint64_t count, r.GetU64());
  std::vector<DatasetState> datasets;
  datasets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DatasetState ds;
    DPX_ASSIGN_OR_RETURN(ds.name, r.GetString());
    DPX_ASSIGN_OR_RETURN(ds.source, r.GetString());
    DPX_ASSIGN_OR_RETURN(ds.uid, r.GetU64());
    if (version >= 2) {
      DPX_ASSIGN_OR_RETURN(ds.epoch, r.GetU64());
    }
    DPX_ASSIGN_OR_RETURN(ds.width_policy, r.GetU8());
    DPX_ASSIGN_OR_RETURN(ds.cap_epsilon, r.GetDouble());
    DPX_ASSIGN_OR_RETURN(ds.cap_ledger, GetLedger(r));
    DPX_ASSIGN_OR_RETURN(ds.schema_json, r.GetString());
    if (version >= 2) {
      DPX_ASSIGN_OR_RETURN(ds.columnar_path, r.GetString());
      DPX_ASSIGN_OR_RETURN(ds.columnar_file_uid, r.GetU64());
      DPX_ASSIGN_OR_RETURN(ds.columnar_rows, r.GetU64());
    }
    DPX_ASSIGN_OR_RETURN(const uint64_t num_columns, r.GetU64());
    ds.columns.reserve(num_columns);
    for (uint64_t c = 0; c < num_columns; ++c) {
      ColumnState col;
      DPX_ASSIGN_OR_RETURN(col.width_tag, r.GetU8());
      DPX_ASSIGN_OR_RETURN(col.rows, r.GetU64());
      DPX_ASSIGN_OR_RETURN(col.bytes, r.GetString());
      ds.columns.push_back(std::move(col));
    }
    DPX_ASSIGN_OR_RETURN(const uint64_t num_clusterings, r.GetU64());
    ds.clusterings.reserve(num_clusterings);
    for (uint64_t c = 0; c < num_clusterings; ++c) {
      ClusteringState cl;
      DPX_ASSIGN_OR_RETURN(cl.id, r.GetString());
      DPX_ASSIGN_OR_RETURN(cl.description, r.GetString());
      DPX_ASSIGN_OR_RETURN(cl.fingerprint, r.GetString());
      DPX_ASSIGN_OR_RETURN(cl.num_clusters, r.GetU64());
      DPX_ASSIGN_OR_RETURN(const uint64_t num_labels, r.GetU64());
      cl.labels.reserve(num_labels);
      for (uint64_t l = 0; l < num_labels; ++l) {
        DPX_ASSIGN_OR_RETURN(const uint32_t label, r.GetU32());
        cl.labels.push_back(label);
      }
      ds.clusterings.push_back(std::move(cl));
    }
    datasets.push_back(std::move(ds));
  }
  return datasets;
}

std::string EncodeSessions(const ServiceSnapshot& state) {
  ByteWriter w;
  w.PutU64(state.sessions.size());
  for (const SessionState& session : state.sessions) {
    w.PutString(session.id);
    w.PutString(session.dataset_name);
    w.PutU64(session.dataset_uid);
    w.PutDouble(session.total_epsilon);
    w.PutDouble(session.spent);
    w.PutU8(session.audit_matches_ledger ? 1 : 0);
    PutLedger(w, session.ledger);
  }
  return w.Take();
}

StatusOr<std::vector<SessionState>> DecodeSessions(
    const std::string& payload) {
  ByteReader r(payload);
  DPX_ASSIGN_OR_RETURN(const uint64_t count, r.GetU64());
  std::vector<SessionState> sessions;
  sessions.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SessionState session;
    DPX_ASSIGN_OR_RETURN(session.id, r.GetString());
    DPX_ASSIGN_OR_RETURN(session.dataset_name, r.GetString());
    DPX_ASSIGN_OR_RETURN(session.dataset_uid, r.GetU64());
    DPX_ASSIGN_OR_RETURN(session.total_epsilon, r.GetDouble());
    DPX_ASSIGN_OR_RETURN(session.spent, r.GetDouble());
    DPX_ASSIGN_OR_RETURN(const uint8_t matches, r.GetU8());
    session.audit_matches_ledger = matches != 0;
    DPX_ASSIGN_OR_RETURN(session.ledger, GetLedger(r));
    sessions.push_back(std::move(session));
  }
  return sessions;
}

std::string EncodeCache(const ServiceSnapshot& state) {
  ByteWriter w;
  w.PutU64(state.cache.size());
  for (const CacheEntryState& entry : state.cache) {
    w.PutString(entry.key);
    w.PutString(entry.payload);
  }
  return w.Take();
}

StatusOr<std::vector<CacheEntryState>> DecodeCache(
    const std::string& payload) {
  ByteReader r(payload);
  DPX_ASSIGN_OR_RETURN(const uint64_t count, r.GetU64());
  std::vector<CacheEntryState> cache;
  cache.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CacheEntryState entry;
    DPX_ASSIGN_OR_RETURN(entry.key, r.GetString());
    DPX_ASSIGN_OR_RETURN(entry.payload, r.GetString());
    cache.push_back(std::move(entry));
  }
  return cache;
}

std::string EncodeAudit(const ServiceSnapshot& state) {
  const AuditState& audit = state.audit;
  ByteWriter w;
  w.PutU64(audit.next_seq);
  w.PutU64(audit.dropped);
  PutTotals(w, audit.global);
  w.PutU64(audit.tenants.size());
  for (const AuditTotalsState& totals : audit.tenants) PutTotals(w, totals);
  w.PutU64(audit.tail.size());
  for (const AuditRecordState& record : audit.tail) {
    w.PutU64(record.seq);
    w.PutString(record.tenant);
    w.PutString(record.dataset);
    w.PutString(record.label);
    w.PutDouble(record.epsilon);
    w.PutU8(record.granted ? 1 : 0);
    w.PutString(record.reason);
  }
  return w.Take();
}

StatusOr<AuditState> DecodeAudit(const std::string& payload) {
  ByteReader r(payload);
  AuditState audit;
  DPX_ASSIGN_OR_RETURN(audit.next_seq, r.GetU64());
  DPX_ASSIGN_OR_RETURN(audit.dropped, r.GetU64());
  DPX_ASSIGN_OR_RETURN(audit.global, GetTotals(r));
  DPX_ASSIGN_OR_RETURN(const uint64_t num_tenants, r.GetU64());
  audit.tenants.reserve(num_tenants);
  for (uint64_t i = 0; i < num_tenants; ++i) {
    DPX_ASSIGN_OR_RETURN(AuditTotalsState totals, GetTotals(r));
    audit.tenants.push_back(std::move(totals));
  }
  DPX_ASSIGN_OR_RETURN(const uint64_t num_records, r.GetU64());
  audit.tail.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    AuditRecordState record;
    DPX_ASSIGN_OR_RETURN(record.seq, r.GetU64());
    DPX_ASSIGN_OR_RETURN(record.tenant, r.GetString());
    DPX_ASSIGN_OR_RETURN(record.dataset, r.GetString());
    DPX_ASSIGN_OR_RETURN(record.label, r.GetString());
    DPX_ASSIGN_OR_RETURN(record.epsilon, r.GetDouble());
    DPX_ASSIGN_OR_RETURN(const uint8_t granted, r.GetU8());
    record.granted = granted != 0;
    DPX_ASSIGN_OR_RETURN(record.reason, r.GetString());
    audit.tail.push_back(std::move(record));
  }
  return audit;
}

}  // namespace

std::string EncodeServiceSnapshot(const ServiceSnapshot& state) {
  SectionWriter writer;
  writer.AddSection(SectionId::kMeta, EncodeMeta(state));
  writer.AddSection(SectionId::kDatasets, EncodeDatasets(state));
  writer.AddSection(SectionId::kSessions, EncodeSessions(state));
  writer.AddSection(SectionId::kCache, EncodeCache(state));
  writer.AddSection(SectionId::kAudit, EncodeAudit(state));
  return writer.Take();
}

StatusOr<ServiceSnapshot> DecodeServiceSnapshot(const std::string& bytes) {
  uint32_t version = 0;
  DPX_ASSIGN_OR_RETURN(const std::vector<Section> sections,
                       ParseSnapshotFile(bytes, &version));
  ServiceSnapshot state;
  state.format_version = version;
  bool saw_datasets = false, saw_sessions = false, saw_audit = false;
  for (const Section& section : sections) {
    switch (section.id) {
      case SectionId::kMeta:
        // Counts are advisory; the per-section payloads are authoritative.
        break;
      case SectionId::kDatasets: {
        DPX_ASSIGN_OR_RETURN(state.datasets,
                             DecodeDatasets(section.payload, version));
        saw_datasets = true;
        break;
      }
      case SectionId::kSessions: {
        DPX_ASSIGN_OR_RETURN(state.sessions,
                             DecodeSessions(section.payload));
        saw_sessions = true;
        break;
      }
      case SectionId::kCache: {
        DPX_ASSIGN_OR_RETURN(state.cache, DecodeCache(section.payload));
        break;
      }
      case SectionId::kAudit: {
        DPX_ASSIGN_OR_RETURN(state.audit, DecodeAudit(section.payload));
        saw_audit = true;
        break;
      }
      default:
        // Unknown-but-CRC-valid sections within a supported version are
        // skipped (compatible append; see header).
        break;
    }
  }
  if (!saw_datasets || !saw_sessions || !saw_audit) {
    return Status::IoError(
        "snapshot is missing a required section (datasets/sessions/audit)");
  }
  return state;
}

Status SaveSnapshotFile(const std::string& path,
                        const ServiceSnapshot& state) {
  return WriteFileAtomic(path, EncodeServiceSnapshot(state));
}

StatusOr<ServiceSnapshot> LoadSnapshotFile(const std::string& path) {
  DPX_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DecodeServiceSnapshot(bytes);
}

}  // namespace dpclustx::snapshot
