// Durable audit journal: the write-ahead log for budget charges.
//
// The in-memory AuditLog (src/obs) is bounded and drops its oldest records
// under pressure; replaying a lossy ring cannot reconstruct ledgers. The
// journal fixes that: every audit record is appended as one JSON line and
// flushed *before* the response leaves the worker, so after a SIGKILL the
// journal holds every charge whose release a client could have observed.
// Crash recovery = load the last snapshot, then apply journal records with
// seq >= the snapshot's audit cursor, in order — exactly-once for every
// observable ε charge.
//
// One JSON line per record:
//
//   {"dataset":"d","epsilon":0.5,"granted":true,"label":"explain",
//    "reason":"","seq":7,"tenant":"t"}
//
// Doubles go through the %.17g JSON writer, which round-trips exactly, so a
// replayed charge is bit-for-bit the charge that was made. A crash can tear
// at most the final line; the reader tolerates exactly that (a trailing
// partial line is ignored — its response was never sent, so dropping it is
// the correct accounting) and refuses anything else.

#ifndef DPCLUSTX_SNAPSHOT_AUDIT_JOURNAL_H_
#define DPCLUSTX_SNAPSHOT_AUDIT_JOURNAL_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "snapshot/snapshot.h"

namespace dpclustx::snapshot {

/// Append-only JSONL writer. Thread-safe; each Append is written and
/// flushed before it returns.
class AuditJournal {
 public:
  AuditJournal() = default;
  ~AuditJournal();

  AuditJournal(const AuditJournal&) = delete;
  AuditJournal& operator=(const AuditJournal&) = delete;

  /// Opens `path` for append, creating it if absent.
  Status Open(const std::string& path);

  /// True when Open succeeded and Close has not been called.
  bool is_open() const;

  /// Serializes `record` as one JSON line, writes it, and flushes. IoError
  /// if the write or flush fails (the caller must treat that as fatal for
  /// durability: an unjournaled charge cannot be recovered).
  Status Append(const AuditRecordState& record);

  void Close();

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Serializes one record to its JSON line (no trailing newline). Exposed so
/// tests can forge journals byte-for-byte.
std::string AuditRecordToJsonLine(const AuditRecordState& record);

/// Reads every record from a journal file, in file order. An empty or
/// absent read is not an error at this layer (the caller decides whether a
/// missing journal is fatal) — a missing file yields NotFound, an empty
/// file yields an empty vector. A torn *final* line is skipped; a malformed
/// line anywhere else is IoError (the journal is corrupt, not torn).
StatusOr<std::vector<AuditRecordState>> ReadAuditJournal(
    const std::string& path);

}  // namespace dpclustx::snapshot

#endif  // DPCLUSTX_SNAPSHOT_AUDIT_JOURNAL_H_
