// Binary wire primitives for the snapshot format.
//
// A snapshot file is:
//
//   magic   "DPXSNAP\n"                                   (8 bytes)
//   version u32 little-endian format version              (4 bytes)
//   section*                                              (repeated)
//
// and each section is:
//
//   id      u32   section identifier (SectionId)
//   length  u64   payload byte count
//   crc32   u32   CRC-32 of the payload bytes
//   payload length bytes
//
// All integers are little-endian regardless of host; doubles travel as the
// IEEE-754 bit pattern in a u64 so save→load→save is bit-for-bit. The
// loader is *forward-refusing*: a file whose format version is newer than
// this build understands is rejected outright (FailedPrecondition) rather
// than half-parsed — budget ledgers rebuilt from a misread file are worse
// than a refused restore. Unknown section ids within a supported version
// are skipped (they are CRC-framed, so skipping is safe), which is what
// lets a *newer* writer stay loadable by an older reader when it only
// appends sections.
//
// ByteWriter/ByteReader are the primitive layer; SectionWriter/SectionReader
// add the framing. ByteReader is hard against truncated and hostile input:
// every read is bounds-checked and returns Status instead of reading past
// the end.

#ifndef DPCLUSTX_SNAPSHOT_SNAPSHOT_IO_H_
#define DPCLUSTX_SNAPSHOT_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpclustx::snapshot {

/// 8-byte file magic; the trailing newline catches ASCII-mode mangling the
/// way the PNG magic does.
inline constexpr char kSnapshotMagic[8] = {'D', 'P', 'X', 'S',
                                           'N', 'A', 'P', '\n'};

/// Current snapshot format version. Bump on any incompatible layout change;
/// the loader refuses anything newer (see file comment). History:
///   1  initial layout (PR 6)
///   2  DatasetState gains epoch + an optional by-reference DPXCOL source
///      (path, file uid, row count) instead of inline column bytes
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Section identifiers. Values are part of the on-disk format — append new
/// ones, never renumber.
enum class SectionId : uint32_t {
  kMeta = 1,      // counts + provenance
  kDatasets = 2,  // registry entries: schema, columns, caps, clusterings
  kSessions = 3,  // per-tenant budget ledgers
  kCache = 4,     // explanation/hist release cache, LRU order
  kAudit = 5,     // audit cursor + exact totals + retained tail
};

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  /// IEEE-754 bit pattern in a u64 — exact, never printf-rounded.
  void PutDouble(double value);
  /// u64 length followed by the raw bytes.
  void PutString(const std::string& value);
  void PutBytes(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked little-endian reads over a byte span. Never reads past
/// the end: truncation yields IoError, not UB.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<double> GetDouble();
  StatusOr<std::string> GetString();
  /// Exactly `size` raw bytes (no length prefix).
  StatusOr<std::string> GetBytes(size_t size);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t bytes) const;

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Assembles a whole snapshot file: magic + version header, then one
/// CRC-framed section per AddSection call.
class SectionWriter {
 public:
  explicit SectionWriter(uint32_t version = kSnapshotFormatVersion);

  void AddSection(SectionId id, const std::string& payload);

  /// The complete file image.
  std::string Take() { return std::move(file_); }

 private:
  std::string file_;
};

/// One parsed section.
struct Section {
  SectionId id;
  std::string payload;  // CRC-verified
};

/// Parses and verifies a snapshot file image: checks magic, refuses
/// versions newer than kSnapshotFormatVersion, walks every section frame,
/// and verifies each payload CRC. Returns the sections in file order.
StatusOr<std::vector<Section>> ParseSnapshotFile(const std::string& bytes,
                                                 uint32_t* version_out);

}  // namespace dpclustx::snapshot

#endif  // DPCLUSTX_SNAPSHOT_SNAPSHOT_IO_H_
