#include "common/file_util.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace dpclustx {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!FileExists(path)) {
      return Status::NotFound("no file '" + path + "'");
    }
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failure on '" + path + "'");
  }
  return buffer.str();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      return Status::IoError("write failure on '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename '" + tmp + "' to '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace dpclustx
