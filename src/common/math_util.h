// Small numeric helpers shared across modules.

#ifndef DPCLUSTX_COMMON_MATH_UTIL_H_
#define DPCLUSTX_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace dpclustx {

/// log(sum_i exp(x_i)) computed without overflow. Requires non-empty input.
double LogSumExp(const std::vector<double>& xs);

/// a / b, or `fallback` when b == 0.
double SafeDivide(double a, double b, double fallback = 0.0);

/// Arithmetic mean. Requires non-empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& xs);

/// n choose 2 as a double (convenient for averaging over pairs).
double PairCount(size_t n);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_MATH_UTIL_H_
