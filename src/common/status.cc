#include "common/status.h"

namespace dpclustx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfBudget:
      return "OutOfBudget";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dpclustx
