// Per-request deadlines with cooperative cancellation.
//
// A Deadline is a cheap value type (one time point + a flag) threaded from
// the service boundary down into long-running kernels. Code that can loop
// for a long time — the Stage-1 per-cluster selection, the Stage-2
// combination enumeration — calls Check() at coarse checkpoints (every few
// thousand iterations) and propagates the resulting DeadlineExceeded Status
// instead of pinning a worker forever on a pathological request.
//
// Cancellation is purely cooperative: a checkpoint that fires AFTER a
// privacy-budget charge does not refund the charge (the conservative
// direction — the accountant may overstate, never understate, released ε).
// Callers that want expiry to cost nothing must Check() before spending.

#ifndef DPCLUSTX_COMMON_DEADLINE_H_
#define DPCLUSTX_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dpclustx {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: Expired() is always false, Check() always OK.
  Deadline() = default;

  /// Expires `ms` milliseconds from now. ms <= 0 is already expired.
  static Deadline AfterMillis(int64_t ms) {
    return FromStart(Clock::now(), ms);
  }

  /// Expires `ms` milliseconds after `start` — lets an asynchronous server
  /// anchor the deadline at enqueue time so queue wait counts against it.
  static Deadline FromStart(Clock::time_point start, int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = start + std::chrono::milliseconds(ms);
    return d;
  }

  bool has_deadline() const { return has_deadline_; }

  bool Expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// OK while time remains; DeadlineExceeded naming `where` once expired.
  Status Check(const char* where) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string("deadline exceeded in ") +
                                    where);
  }

  /// Milliseconds until expiry (clamped at 0); meaningless without a
  /// deadline.
  int64_t remaining_millis() const {
    if (!has_deadline_) return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_DEADLINE_H_
