#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dpclustx {
namespace {

constexpr int kMaxFatalFlushHooks = 8;
std::atomic<FatalFlushHook> g_fatal_hooks[kMaxFatalFlushHooks] = {};
std::atomic<int> g_fatal_hook_count{0};

void RunFatalFlushHooks() {
  const int count = g_fatal_hook_count.load(std::memory_order_acquire);
  for (int i = 0; i < count && i < kMaxFatalFlushHooks; ++i) {
    FatalFlushHook hook = g_fatal_hooks[i].load(std::memory_order_acquire);
    if (hook != nullptr) hook();
  }
}

}  // namespace

void RegisterFatalFlushHook(FatalFlushHook hook) {
  if (hook == nullptr) return;
  const int idx = g_fatal_hook_count.fetch_add(1, std::memory_order_acq_rel);
  if (idx < kMaxFatalFlushHooks) {
    g_fatal_hooks[idx].store(hook, std::memory_order_release);
  }
}

}  // namespace dpclustx

namespace dpclustx::internal_logging {

struct FatalMessage::Impl {
  std::ostringstream stream;
};

FatalMessage::FatalMessage(const char* file, int line, const char* condition)
    : impl_(new Impl), stream_(&impl_->stream) {
  impl_->stream << "[DPX FATAL] " << file << ":" << line
                << " Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << impl_->stream.str() << std::endl;
  dpclustx::RunFatalFlushHooks();
  std::abort();
}

}  // namespace dpclustx::internal_logging
