// Fixed-size worker pool with a bounded task queue.
//
// The service layer (src/service) runs every request through one of these:
// a fixed number of workers drain a bounded FIFO queue, and submissions
// beyond the queue capacity are rejected with ResourceExhausted so an
// overloaded server sheds load instead of buffering unboundedly
// (backpressure). Shutdown stops intake, drains the queue, and joins the
// workers, so no accepted task is ever dropped.

#ifndef DPCLUSTX_COMMON_THREAD_POOL_H_
#define DPCLUSTX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dpclustx {

struct ThreadPoolOptions {
  /// Number of worker threads. Requires >= 1.
  size_t num_threads = 4;
  /// Maximum number of queued (not yet running) tasks before TrySubmit
  /// rejects. Requires >= 1.
  size_t queue_capacity = 256;
};

class ThreadPool {
 public:
  explicit ThreadPool(const ThreadPoolOptions& options);
  /// Joins via Shutdown(); queued tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` without blocking. Returns ResourceExhausted when the
  /// queue is full (the task is NOT enqueued) and FailedPrecondition after
  /// Shutdown.
  Status TrySubmit(std::function<void()> task);

  /// Enqueues `task`, blocking while the queue is full. Returns
  /// FailedPrecondition if the pool shuts down before a slot frees up.
  Status Submit(std::function<void()> task);

  /// Stops intake, runs every already-queued task, and joins the workers.
  /// Idempotent; safe to call from any thread except a worker. Concurrent
  /// callers all block until the drain completes: exactly one of them joins
  /// the worker threads, the others wait for it.
  void Shutdown();

  size_t num_threads() const { return num_threads_; }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks currently queued (excludes running ones). Advisory under
  /// concurrency.
  size_t queue_depth() const;

  /// Tasks that finished executing.
  uint64_t tasks_completed() const;

 private:
  void WorkerLoop();

  const size_t num_threads_;
  const size_t queue_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_nonfull_;
  std::condition_variable shutdown_done_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  bool shutdown_ = false;                    // guarded by mutex_
  bool joining_ = false;                     // guarded by mutex_
  uint64_t tasks_completed_ = 0;             // guarded by mutex_
  std::vector<std::thread> workers_;         // guarded by mutex_
};

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_THREAD_POOL_H_
