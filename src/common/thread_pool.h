// Fixed-size worker pool with a bounded task queue, plus the process-wide
// parallel-compute layer (ParallelFor) built on top of it.
//
// The service layer (src/service) runs every request through one of these:
// a fixed number of workers drain a bounded FIFO queue, and submissions
// beyond the queue capacity are rejected with ResourceExhausted so an
// overloaded server sheds load instead of buffering unboundedly
// (backpressure). Shutdown stops intake, drains the queue, and joins the
// workers, so no accepted task is ever dropped.
//
// ParallelFor runs row-order-independent kernels (counting sweeps,
// clustering assignment loops) over a separate lazily-created compute pool
// shared by the whole process. Its determinism contract: work is split into
// chunks whose boundaries depend only on (n, grain) — never on the thread
// count or scheduling — so a kernel that keeps one accumulator per chunk and
// merges them in ascending chunk order produces bit-identical results at any
// parallelism, including fully serial execution.

#ifndef DPCLUSTX_COMMON_THREAD_POOL_H_
#define DPCLUSTX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dpclustx {

struct ThreadPoolOptions {
  /// Number of worker threads. Requires >= 1.
  size_t num_threads = 4;
  /// Maximum number of queued (not yet running) tasks before TrySubmit
  /// rejects. Requires >= 1.
  size_t queue_capacity = 256;
};

class ThreadPool {
 public:
  explicit ThreadPool(const ThreadPoolOptions& options);
  /// Joins via Shutdown(); queued tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` without blocking. Returns ResourceExhausted when the
  /// queue is full (the task is NOT enqueued) and FailedPrecondition after
  /// Shutdown.
  Status TrySubmit(std::function<void()> task);

  /// Enqueues `task`, blocking while the queue is full. Returns
  /// FailedPrecondition if the pool shuts down before a slot frees up.
  Status Submit(std::function<void()> task);

  /// Stops intake, runs every already-queued task, and joins the workers.
  /// Idempotent; safe to call from any thread except a worker. Concurrent
  /// callers all block until the drain completes: exactly one of them joins
  /// the worker threads, the others wait for it.
  void Shutdown();

  size_t num_threads() const { return num_threads_; }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks currently queued (excludes running ones). Advisory under
  /// concurrency.
  size_t queue_depth() const;

  /// Tasks that finished executing.
  uint64_t tasks_completed() const;

  /// Workers currently running a task. Advisory under concurrency; used by
  /// the observability layer as a utilization gauge.
  size_t active_count() const;

 private:
  void WorkerLoop();

  const size_t num_threads_;
  const size_t queue_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_nonfull_;
  std::condition_variable shutdown_done_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  bool shutdown_ = false;                    // guarded by mutex_
  bool joining_ = false;                     // guarded by mutex_
  uint64_t tasks_completed_ = 0;             // guarded by mutex_
  size_t active_ = 0;                        // guarded by mutex_
  std::vector<std::thread> workers_;         // guarded by mutex_
};

/// Width of the process-wide compute pool: the DPCLUSTX_THREADS environment
/// variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1). Resolved once on first
/// call; the pool itself is created lazily on the first ParallelFor that can
/// use it and lives until process exit.
size_t ComputePoolWidth();

/// Number of chunks ParallelFor splits [0, n) into. Boundaries depend only
/// on n and grain: chunk i covers [i*g, min(n, (i+1)*g)) where g is `grain`,
/// widened only when ceil(n/grain) would exceed an internal shard cap (so
/// per-chunk scratch buffers stay bounded). Exposed so kernels can size
/// per-chunk accumulator arrays.
size_t ParallelForNumChunks(size_t n, size_t grain);

/// Runs body(chunk, begin, end) for every chunk of [0, n) (see
/// ParallelForNumChunks) and returns when all chunks have finished. Chunks
/// may run concurrently on the compute pool, in any order; the calling
/// thread always participates, so the call makes progress even when the
/// compute pool is saturated or has a single worker. Nested calls — a body
/// that itself calls ParallelFor — run the inner loop inline on the calling
/// thread (no pool re-entry, no oversubscription deadlock). `max_threads`
/// caps the number of threads working on this call (0 = compute-pool
/// width; 1 = serial inline). The chunk structure — and therefore any
/// chunk-merged result — is identical for every max_threads value.
/// `body` must not throw.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t chunk, size_t begin,
                                          size_t end)>& body,
                 size_t max_threads = 0);

/// Total ParallelFor invocations that dispatched to the compute pool (i.e.
/// ran with >1 thread) and total invocations overall. Advisory counters for
/// service stats / benchmarks.
uint64_t ParallelForCalls();
uint64_t ParallelForParallelCalls();

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_THREAD_POOL_H_
