#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace dpclustx {

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : num_threads_(options.num_threads),
      queue_capacity_(options.queue_capacity) {
  DPX_CHECK_GT(options.num_threads, 0u) << "thread pool needs >= 1 worker";
  DPX_CHECK_GT(options.queue_capacity, 0u) << "queue capacity must be >= 1";
  workers_.reserve(options.num_threads);
  for (size_t i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::ResourceExhausted(
          "task queue full (" + std::to_string(queue_capacity_) +
          " pending); retry later");
    }
    queue_.push_back(std::move(task));
  }
  queue_nonempty_.notify_one();
  return Status::OK();
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_nonfull_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    queue_.push_back(std::move(task));
  }
  queue_nonempty_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_ = true;
  if (!workers_.empty()) {
    // First caller: take sole ownership of the worker handles under the
    // lock, then join outside it (workers need the lock to drain the
    // queue). Concurrent callers see workers_ empty and wait below.
    std::vector<std::thread> workers;
    workers.swap(workers_);
    joining_ = true;
    lock.unlock();
    queue_nonempty_.notify_all();
    queue_nonfull_.notify_all();
    for (std::thread& worker : workers) worker.join();
    lock.lock();
    joining_ = false;
    shutdown_done_.notify_all();
    return;
  }
  // Later caller (or already shut down): Shutdown is synchronous for every
  // caller, so wait until the joiner finishes draining.
  shutdown_done_.wait(lock, [this] { return !joining_; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_completed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_nonempty_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_nonfull_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tasks_completed_;
    }
  }
}

}  // namespace dpclustx
