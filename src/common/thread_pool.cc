#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace dpclustx {

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : num_threads_(options.num_threads),
      queue_capacity_(options.queue_capacity) {
  DPX_CHECK_GT(options.num_threads, 0u) << "thread pool needs >= 1 worker";
  DPX_CHECK_GT(options.queue_capacity, 0u) << "queue capacity must be >= 1";
  workers_.reserve(options.num_threads);
  for (size_t i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::ResourceExhausted(
          "task queue full (" + std::to_string(queue_capacity_) +
          " pending); retry later");
    }
    queue_.push_back(std::move(task));
  }
  queue_nonempty_.notify_one();
  return Status::OK();
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_nonfull_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    queue_.push_back(std::move(task));
  }
  queue_nonempty_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_ = true;
  if (!workers_.empty()) {
    // First caller: take sole ownership of the worker handles under the
    // lock, then join outside it (workers need the lock to drain the
    // queue). Concurrent callers see workers_ empty and wait below.
    std::vector<std::thread> workers;
    workers.swap(workers_);
    joining_ = true;
    lock.unlock();
    queue_nonempty_.notify_all();
    queue_nonfull_.notify_all();
    for (std::thread& worker : workers) worker.join();
    lock.lock();
    joining_ = false;
    shutdown_done_.notify_all();
    return;
  }
  // Later caller (or already shut down): Shutdown is synchronous for every
  // caller, so wait until the joiner finishes draining.
  shutdown_done_.wait(lock, [this] { return !joining_; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_completed_;
}

size_t ThreadPool::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

namespace {

// A body already running on the compute pool (or the caller's drain loop)
// must not wait on the pool again: nested ParallelFor calls run inline.
thread_local bool tls_inside_parallel_for = false;

// Upper bound on ParallelForNumChunks: keeps per-chunk accumulator arrays
// (e.g. the StatsCache shard buffers) bounded on huge inputs while leaving
// plenty of chunks for work stealing. Chunk boundaries stay a pure function
// of (n, grain).
constexpr size_t kMaxChunks = 256;

std::atomic<uint64_t> g_parallel_for_calls{0};
std::atomic<uint64_t> g_parallel_for_parallel_calls{0};

size_t ResolveComputePoolWidth() {
  if (const char* env = std::getenv("DPCLUSTX_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<size_t>(value);
    }
    // Unparseable values fall through to the hardware default.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// Deliberately leaked: compute kernels may run until the last line of main,
// and joining detached static workers during static destruction is a
// shutdown-order trap. The OS reclaims the threads at process exit.
ThreadPool& ComputePool() {
  static ThreadPool* pool =
      new ThreadPool(ThreadPoolOptions{ComputePoolWidth(), 4096});
  return *pool;
}

size_t EffectiveGrain(size_t n, size_t grain) {
  // Widen the grain so no input produces more than kMaxChunks chunks.
  const size_t min_grain = (n + kMaxChunks - 1) / kMaxChunks;
  return std::max(grain, min_grain);
}

}  // namespace

size_t ComputePoolWidth() {
  static const size_t width = ResolveComputePoolWidth();
  return width;
}

size_t ParallelForNumChunks(size_t n, size_t grain) {
  DPX_CHECK_GT(grain, 0u) << "ParallelFor grain must be >= 1";
  if (n == 0) return 0;
  const size_t g = EffectiveGrain(n, grain);
  return (n + g - 1) / g;
}

uint64_t ParallelForCalls() {
  return g_parallel_for_calls.load(std::memory_order_relaxed);
}

uint64_t ParallelForParallelCalls() {
  return g_parallel_for_parallel_calls.load(std::memory_order_relaxed);
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& body,
                 size_t max_threads) {
  const size_t chunks = ParallelForNumChunks(n, grain);
  if (chunks == 0) return;
  g_parallel_for_calls.fetch_add(1, std::memory_order_relaxed);
  const size_t g = EffectiveGrain(n, grain);
  const size_t width =
      max_threads == 0 ? ComputePoolWidth() : std::min(max_threads,
                                                       ComputePoolWidth() + 1);
  if (chunks == 1 || width <= 1 || tls_inside_parallel_for) {
    // Serial path — same chunk structure, so chunk-merged accumulators are
    // bit-identical to any parallel run.
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      body(chunk, chunk * g, std::min(n, (chunk + 1) * g));
    }
    return;
  }
  g_parallel_for_parallel_calls.fetch_add(1, std::memory_order_relaxed);

  // Shared work-stealing state. Helpers submitted to the pool may start
  // after the caller has already finished every chunk and returned; they
  // then observe next >= chunks and exit without touching `body`, so the
  // state (not the body) is what must outlive the call.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t chunks = 0;
    size_t grain = 0;
    size_t n = 0;
    const std::function<void(size_t, size_t, size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();
  state->chunks = chunks;
  state->grain = g;
  state->n = n;
  state->body = &body;

  auto drain = [state] {
    const bool was_inside = tls_inside_parallel_for;
    tls_inside_parallel_for = true;
    for (;;) {
      const size_t chunk =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= state->chunks) break;
      (*state->body)(chunk, chunk * state->grain,
                     std::min(state->n, (chunk + 1) * state->grain));
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->chunks) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
    tls_inside_parallel_for = was_inside;
  };

  // Best-effort helpers: a full pool queue just means fewer threads help;
  // the caller's own drain below completes every chunk regardless, so this
  // call can never deadlock on pool capacity.
  const size_t helpers = std::min(width, chunks) - 1;
  for (size_t i = 0; i < helpers; ++i) {
    if (!ComputePool().TrySubmit(drain).ok()) break;
  }
  drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= state->chunks;
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_nonempty_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    queue_nonfull_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      ++tasks_completed_;
    }
  }
}

}  // namespace dpclustx
