#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace dpclustx {

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : queue_capacity_(options.queue_capacity) {
  DPX_CHECK_GT(options.num_threads, 0u) << "thread pool needs >= 1 worker";
  DPX_CHECK_GT(options.queue_capacity, 0u) << "queue capacity must be >= 1";
  workers_.reserve(options.num_threads);
  for (size_t i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::ResourceExhausted(
          "task queue full (" + std::to_string(queue_capacity_) +
          " pending); retry later");
    }
    queue_.push_back(std::move(task));
  }
  queue_nonempty_.notify_one();
  return Status::OK();
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_nonfull_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    queue_.push_back(std::move(task));
  }
  queue_nonempty_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  queue_nonempty_.notify_all();
  queue_nonfull_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_completed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_nonempty_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_nonfull_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tasks_completed_;
    }
  }
}

}  // namespace dpclustx
