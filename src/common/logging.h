// Minimal logging and assertion macros. DPX_CHECK* document and enforce
// internal invariants; they are active in all build types because the cost is
// negligible relative to the statistical work this library does.
//
// The header stays light on purpose (only <ostream>): FatalMessage's
// formatting machinery lives in logging.cc so that every translation unit
// using DPX_CHECK does not pay for <iostream>/<sstream>.

#ifndef DPCLUSTX_COMMON_LOGGING_H_
#define DPCLUSTX_COMMON_LOGGING_H_

#include <ostream>

namespace dpclustx {

/// Called (in registration order) after a fatal check's message is printed
/// and before std::abort(), so subsystems can flush in-memory telemetry
/// (active trace, metrics buffers) while the crashing thread still exists.
/// Hooks must be async-signal-unsafe-tolerant in the weak sense only: they
/// run on the crashing thread with other threads possibly wedged, so they
/// must not take locks another thread could hold. At most 8 hooks are kept;
/// later registrations are ignored.
using FatalFlushHook = void (*)();
void RegisterFatalFlushHook(FatalFlushHook hook);

}  // namespace dpclustx

namespace dpclustx::internal_logging {

// Accumulates a message and aborts on destruction. Used only by the CHECK
// macros below; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return *stream_; }

 private:
  struct Impl;
  Impl* impl_;  // leaked: the destructor never returns
  std::ostream* stream_;
};

}  // namespace dpclustx::internal_logging

/// Aborts with a diagnostic if `condition` is false. Extra context can be
/// streamed: DPX_CHECK(x > 0) << "x=" << x;
#define DPX_CHECK(condition)                                               \
  if (!(condition))                                                        \
  ::dpclustx::internal_logging::FatalMessage(__FILE__, __LINE__,           \
                                             #condition)                   \
      .stream()

#define DPX_CHECK_EQ(a, b) DPX_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPX_CHECK_NE(a, b) DPX_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPX_CHECK_LT(a, b) DPX_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPX_CHECK_LE(a, b) DPX_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPX_CHECK_GT(a, b) DPX_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DPX_CHECK_GE(a, b) DPX_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if a Status-returning expression fails. For use in tests, examples,
/// and benches where errors are programming mistakes rather than user input.
#define DPX_CHECK_OK(expr)                                                 \
  do {                                                                     \
    const ::dpclustx::Status _dpx_st = (expr);                             \
    DPX_CHECK(_dpx_st.ok()) << _dpx_st.ToString();                         \
  } while (false)

#endif  // DPCLUSTX_COMMON_LOGGING_H_
