// Whole-file read/write helpers.
//
// WriteFileAtomic is the durability primitive the snapshot layer (and the
// serve metrics dump) relies on: the payload lands in `path + ".tmp"` and is
// renamed over `path`, so a reader — or a process restoring after a crash —
// sees either the previous complete file or the new complete file, never a
// torn prefix. rename(2) on the same filesystem is atomic; a crash mid-write
// leaves at worst a stale .tmp beside an intact `path`.

#ifndef DPCLUSTX_COMMON_FILE_UTIL_H_
#define DPCLUSTX_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace dpclustx {

/// Reads the entire file into a string. NotFound when the file does not
/// exist; IoError on any other failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` atomically (tmp file + rename). IoError on
/// any failure; on failure `path` is untouched (the tmp file may remain).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_FILE_UTIL_H_
