#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx {

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  // Deliberately no finiteness check: aborting here would let any NaN
  // produced anywhere in a response take down the whole process (the
  // serving path feeds data-dependent doubles through this constructor).
  // Dump() serializes non-finite values as null; IsFinite() lets
  // boundaries detect and reject them.
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  DPX_CHECK(type_ == Type::kBool);
  return bool_;
}

double JsonValue::AsNumber() const {
  DPX_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::AsString() const {
  DPX_CHECK(type_ == Type::kString);
  return string_;
}

size_t JsonValue::size() const {
  DPX_CHECK(type_ == Type::kArray);
  return array_.size();
}

const JsonValue& JsonValue::at(size_t index) const {
  DPX_CHECK(type_ == Type::kArray);
  DPX_CHECK_LT(index, array_.size());
  return array_[index];
}

void JsonValue::Append(JsonValue value) {
  DPX_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

bool JsonValue::Has(const std::string& key) const {
  DPX_CHECK(type_ == Type::kObject);
  return object_.count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  DPX_CHECK(type_ == Type::kObject);
  const auto it = object_.find(key);
  DPX_CHECK(it != object_.end()) << "missing key '" << key << "'";
  return it->second;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  DPX_CHECK(type_ == Type::kObject);
  object_[key] = std::move(value);
}

void JsonValue::Remove(const std::string& key) {
  DPX_CHECK(type_ == Type::kObject);
  object_.erase(key);
}

std::vector<std::string> JsonValue::ObjectKeys() const {
  std::vector<std::string> keys;
  if (type_ != Type::kObject) return keys;
  keys.reserve(object_.size());
  for (const auto& [key, value] : object_) keys.push_back(key);
  return keys;
}

bool JsonValue::IsFinite() const {
  switch (type_) {
    case Type::kNumber:
      return std::isfinite(number_);
    case Type::kArray:
      for (const JsonValue& v : array_) {
        if (!v.IsFinite()) return false;
      }
      return true;
    case Type::kObject:
      for (const auto& [key, v] : object_) {
        if (!v.IsFinite()) return false;
      }
      return true;
    default:
      return true;
  }
}

StatusOr<double> JsonValue::GetNumber(const std::string& key) const {
  if (type_ != Type::kObject) {
    return Status::InvalidArgument("not an object");
  }
  const auto it = object_.find(key);
  if (it == object_.end() || it->second.type_ != Type::kNumber) {
    return Status::InvalidArgument("missing numeric field '" + key + "'");
  }
  return it->second.number_;
}

StatusOr<std::string> JsonValue::GetString(const std::string& key) const {
  if (type_ != Type::kObject) {
    return Status::InvalidArgument("not an object");
  }
  const auto it = object_.find(key);
  if (it == object_.end() || it->second.type_ != Type::kString) {
    return Status::InvalidArgument("missing string field '" + key + "'");
  }
  return it->second.string_;
}

namespace {

void EscapeInto(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void NumberInto(double x, std::string& out) {
  // JSON has no NaN/Inf literals; serialize them as null so output is
  // always parseable (boundaries that must not lose the value gate on
  // IsFinite() before dumping).
  if (!std::isfinite(x)) {
    out += "null";
    return;
  }
  // Integers print without exponent/decimals; others with enough digits to
  // round-trip.
  if (x == std::floor(x) && std::fabs(x) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(x));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    out += buf;
  }
}

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberInto(number_, out);
      break;
    case Type::kString:
      EscapeInto(string_, out);
      break;
    case Type::kArray: {
      out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].Dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        EscapeInto(key, out);
        out += ':';
        out += value.Dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

namespace {

// Recursive-descent parser over a string view with position tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    DPX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      DPX_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject() {
    Consume('{');
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      DPX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      DPX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    Consume('[');
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      DPX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape digit");
            }
            // BMP code points only; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    if (!std::isfinite(value)) return Error("non-finite number");
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace dpclustx
