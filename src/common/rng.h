// Deterministic random number generation for the whole library.
//
// All randomness — DP noise, clustering initialization, synthetic data —
// flows from an Rng instance so experiments are reproducible from a single
// seed. The engine is xoshiro256++ (public-domain algorithm by Blackman &
// Vigna) seeded through splitmix64, and the DP-relevant samplers (Laplace,
// Gumbel, two-sided geometric) are hand-rolled from their closed forms rather
// than delegated to the standard library, whose distributions are
// implementation-defined.

#ifndef DPCLUSTX_COMMON_RNG_H_
#define DPCLUSTX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dpclustx {

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can also be
/// plugged into <random> distributions where determinism across standard
/// library implementations is not required.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64(seed).
  explicit Xoshiro256(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next 64 random bits.
  result_type operator()();

 private:
  uint64_t state_[4];
};

/// High-level sampler over a Xoshiro256 engine.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in (0, 1) — never returns an endpoint; safe for log().
  double UniformOpenDouble();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the distribution is exactly uniform.
  uint64_t UniformInt(uint64_t n);

  /// Uniform double in [lo, hi).
  double UniformRange(double lo, double hi);

  /// Laplace(0, scale): density (1/2b)·exp(-|x|/b). Requires scale > 0.
  double Laplace(double scale);

  /// Gumbel(0, scale): CDF exp(-exp(-x/σ)). Requires scale > 0. This is the
  /// noise of the one-shot top-k mechanism (Durfee & Rogers 2019).
  double Gumbel(double scale);

  /// Two-sided (discrete) geometric noise with parameter alpha = exp(-eps):
  /// P(Z = z) ∝ alpha^|z|, the distribution of the Ghosh–Roughgarden–
  /// Sundararajan universally-optimal mechanism for sensitivity-1 counts.
  /// Requires eps > 0. Sampled as the difference of two geometric variables.
  int64_t TwoSidedGeometric(double eps);

  /// Standard normal via Box–Muller (spare value cached).
  double Gaussian();
  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Draws an index in [0, n) with probability proportional to weights[i].
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const double* weights, size_t n);

  /// Derives an independent child generator; used to give parallel components
  /// decorrelated streams from one master seed.
  Rng Fork();

  Xoshiro256& engine() { return engine_; }

 private:
  Xoshiro256 engine_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_RNG_H_
