#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace dpclustx {

namespace {

// splitmix64: expands a single seed into well-mixed 64-bit words.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Xoshiro256::operator()() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::UniformOpenDouble() {
  // (u + 0.5) / 2^53 lies in (0, 1) for u in [0, 2^53).
  return (static_cast<double>(engine_() >> 11) + 0.5) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  DPX_CHECK_GT(n, 0u);
  // Rejection sampling: discard the first (2^64 mod n) values so the
  // remaining range is an exact multiple of n. `0 - n` wraps to 2^64 − n,
  // whose remainder mod n equals 2^64 mod n.
  const uint64_t threshold = (0 - n) % n;
  uint64_t draw = engine_();
  while (draw < threshold) draw = engine_();
  return draw % n;
}

double Rng::UniformRange(double lo, double hi) {
  DPX_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Laplace(double scale) {
  DPX_CHECK_GT(scale, 0.0);
  // Inverse CDF: u ~ U(-1/2, 1/2); x = -b·sgn(u)·ln(1 - 2|u|).
  const double u = UniformOpenDouble() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Gumbel(double scale) {
  DPX_CHECK_GT(scale, 0.0);
  // Inverse CDF of exp(-exp(-x/σ)).
  return -scale * std::log(-std::log(UniformOpenDouble()));
}

int64_t Rng::TwoSidedGeometric(double eps) {
  DPX_CHECK_GT(eps, 0.0);
  // If G1, G2 are iid geometric (number of failures before first success)
  // with success probability p = 1 - exp(-eps), then G1 - G2 follows the
  // two-sided geometric distribution P(Z = z) ∝ exp(-eps·|z|).
  const double alpha = std::exp(-eps);
  auto geometric = [&]() -> int64_t {
    // Inverse CDF: floor(ln(u) / ln(alpha)) for u in (0, 1).
    const double u = UniformOpenDouble();
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
  };
  return geometric() - geometric();
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller.
  const double u1 = UniformOpenDouble();
  const double u2 = UniformOpenDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  DPX_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const double* weights, size_t n) {
  DPX_CHECK_GT(n, 0u);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    DPX_CHECK_GE(weights[i], 0.0);
    total += weights[i];
  }
  DPX_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;  // floating-point slack: attribute to the last bucket
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace dpclustx
