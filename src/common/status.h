// Status and StatusOr: exception-free error handling for the DPClustX
// library, following the RocksDB/Arrow idiom. Library entry points that can
// fail return Status (or StatusOr<T> when they produce a value); internal
// invariant violations use DPX_CHECK (logging.h) and abort.

#ifndef DPCLUSTX_COMMON_STATUS_H_
#define DPCLUSTX_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dpclustx {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed a malformed or out-of-range argument
  kOutOfBudget,       // a privacy-budget request exceeds the remaining budget
  kNotFound,          // a named entity (attribute, file, ...) does not exist
  kFailedPrecondition,  // object not in the required state for the call
  kIoError,           // filesystem / parsing failure
  kInternal,          // invariant violation that was recoverable
  kResourceExhausted, // a bounded resource (queue slot, cache, ...) is full
  kDeadlineExceeded,  // the operation ran past its cooperative deadline
};

/// Returns a stable human-readable name for a StatusCode ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a code and message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfBudget(std::string msg) {
    return Status(StatusCode::kOutOfBudget, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status. Accessing the value of a
/// failed StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from a non-OK Status keeps call
  /// sites readable: `return value;` / `return Status::InvalidArgument(...)`.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      // A StatusOr must be either a value or an error, never "OK, no value".
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns OK when a value is held, otherwise the held error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(rep_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(rep_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK Status to the caller. Usage:
///   DPX_RETURN_IF_ERROR(DoThing());
#define DPX_RETURN_IF_ERROR(expr)                          \
  do {                                                     \
    ::dpclustx::Status _dpx_status = (expr);               \
    if (!_dpx_status.ok()) return _dpx_status;             \
  } while (false)

/// Unwraps a StatusOr into a new variable, propagating errors. Usage:
///   DPX_ASSIGN_OR_RETURN(auto ds, LoadCsv(path));
#define DPX_ASSIGN_OR_RETURN(lhs, expr)                    \
  DPX_ASSIGN_OR_RETURN_IMPL_(                              \
      DPX_STATUS_CONCAT_(_dpx_statusor_, __LINE__), lhs, expr)

#define DPX_STATUS_CONCAT_INNER_(x, y) x##y
#define DPX_STATUS_CONCAT_(x, y) DPX_STATUS_CONCAT_INNER_(x, y)
#define DPX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)         \
  auto tmp = (expr);                                       \
  if (!tmp.ok()) return tmp.status();                      \
  lhs = std::move(tmp).value()

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_STATUS_H_
