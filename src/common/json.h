// Minimal JSON document model, writer, and parser.
//
// Supports the JSON subset the library emits (objects, arrays, strings with
// escapes, finite doubles, booleans, null). Used to serialize explanations
// and schemas for downstream consumers (the DPClustX demo UI renders
// exactly this kind of payload); kept dependency-free on purpose.

#ifndef DPCLUSTX_COMMON_JSON_H_
#define DPCLUSTX_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpclustx {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  /// Accepts any double, including NaN/Inf — constructing a number must
  /// never abort, because numbers on the serving path are data-dependent
  /// (a degenerate request can legitimately produce a non-finite metric).
  /// JSON has no non-finite literals, so Dump() serializes them as `null`;
  /// boundaries that must not emit such a hole check IsFinite() first and
  /// turn it into an error response (see ServiceEngine::Dispatch).
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// True when every number in this value (recursively) is finite — i.e.
  /// Dump() loses nothing. Serving boundaries use this to reject responses
  /// that picked up a NaN/Inf instead of silently emitting `null`.
  bool IsFinite() const;

  /// Typed accessors; DPX_CHECK on type mismatch (programming error — use
  /// the Typed* lookups below for data-dependent access).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;

  /// Array operations.
  size_t size() const;
  const JsonValue& at(size_t index) const;
  void Append(JsonValue value);

  /// Object operations. Keys are ordered lexicographically on output.
  bool Has(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  void Set(const std::string& key, JsonValue value);
  /// Drops `key` if present (no-op otherwise). Proxies use this to strip
  /// internal correlation fields before relaying a response.
  void Remove(const std::string& key);
  /// Object keys in output (lexicographic) order; empty for non-objects.
  /// For callers that fold one document into another (the router's fleet
  /// metrics rollup) without knowing the key set up front.
  std::vector<std::string> ObjectKeys() const;

  /// Checked lookups returning Status on shape mismatches; for parsing
  /// untrusted documents.
  StatusOr<double> GetNumber(const std::string& key) const;
  StatusOr<std::string> GetString(const std::string& key) const;

  /// Serializes to compact JSON text.
  std::string Dump() const;

  /// Parses a JSON document. Returns InvalidArgument with a position on
  /// malformed input. Rejects trailing garbage.
  static StatusOr<JsonValue> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_COMMON_JSON_H_
