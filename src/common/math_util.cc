#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dpclustx {

double LogSumExp(const std::vector<double>& xs) {
  DPX_CHECK(!xs.empty());
  const double max = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(max)) return max;  // all -inf (or an inf dominates)
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max);
  return max + std::log(sum);
}

double SafeDivide(double a, double b, double fallback) {
  return b == 0.0 ? fallback : a / b;
}

double Mean(const std::vector<double>& xs) {
  DPX_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

double PairCount(size_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace dpclustx
