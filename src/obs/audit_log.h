// Append-only privacy-budget audit log.
//
// Every ε charge or denial flows through AuditLog::Record with a monotonic
// sequence number, so the SessionManager ledgers become externally
// verifiable: the sum of granted charges per tenant in the log must equal
// the ledger's spent total exactly (tested, not approximately). To make
// that hold for floating-point ε under concurrency, callers invoke Record
// while still holding the same lock that serialized the ledger update
// (ServiceSession::Spend does this), so the log observes charges in ledger
// order and per-tenant running totals accumulate in the same order as the
// ledger's own sum.
//
// The record buffer is bounded (drop-oldest); per-tenant/global totals are
// exact forever regardless of drops, and `dropped` is reported so an
// auditor knows whether the tail is complete.
//
// DP-safety: a record carries tenant/session id, dataset name, an
// operation label, ε, and the grant/deny outcome — all operational
// metadata the client already knows. Never data values or per-record
// information.

#ifndef DPCLUSTX_OBS_AUDIT_LOG_H_
#define DPCLUSTX_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace dpclustx::obs {

struct AuditRecord {
  uint64_t seq = 0;  // monotonic from 1, never reused
  std::string tenant;
  std::string dataset;
  std::string label;  // operation label, e.g. "explain" or "hist"
  double epsilon = 0.0;
  bool granted = false;
  std::string reason;  // empty when granted; denial reason otherwise
};

class AuditLog {
 public:
  /// Keeps at most `capacity` records in the tail buffer (older records are
  /// dropped; totals are unaffected).
  explicit AuditLog(size_t capacity = 4096);
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Appends one charge/denial. Returns the assigned sequence number.
  uint64_t Record(const std::string& tenant, const std::string& dataset,
                  const std::string& label, double epsilon, bool granted,
                  const std::string& reason = "");

  struct Totals {
    double epsilon_charged = 0.0;  // sum of granted ε, in Record order
    double epsilon_denied = 0.0;   // sum of denied ε
    uint64_t charges = 0;
    uint64_t denials = 0;
  };

  /// Per-tenant totals (exact: accumulated in Record order).
  Totals TenantTotals(const std::string& tenant) const;
  Totals GlobalTotals() const;

  /// Last `limit` records, oldest first (0 = all retained).
  std::vector<AuditRecord> Tail(size_t limit = 0) const;

  uint64_t next_seq() const;
  uint64_t dropped() const;

  /// Durable sink invoked synchronously inside Record, under the log's
  /// lock, with the fully-assigned record — before Record returns, hence
  /// before any response leaves the service. The snapshot layer's journal
  /// hangs off this hook so every observable charge is on disk first.
  /// The sink must not call back into this log. nullptr disables.
  void set_sink(std::function<void(const AuditRecord&)> sink);

  /// The complete mutable state, for snapshotting. Totals are the exact
  /// running doubles, not recomputed sums — restoring them and continuing
  /// in record order keeps the ledger/audit equality bit-for-bit.
  struct State {
    uint64_t next_seq = 1;
    uint64_t dropped = 0;
    Totals global;
    std::map<std::string, Totals> tenants;
    std::vector<AuditRecord> tail;  // oldest first
  };

  State SnapshotState() const;

  /// Overwrites this log's cursor, totals, and tail wholesale. Restore-time
  /// only: must happen before the log is shared with serving threads.
  void RestoreState(State state);

  /// Re-applies one journaled record exactly as recorded: keeps its seq
  /// (advancing next_seq to seq + 1), updates totals in call order, appends
  /// to the tail. Does NOT invoke the sink — a replayed record is already
  /// durable. Crash recovery replays the journal through this.
  void RestoreRecord(const AuditRecord& record);

  /// {"next_seq","dropped","totals":{tenant:{...}},"records":[...]} with
  /// records limited to `tail_limit` (0 = all retained). Field names are
  /// stable (golden-tested).
  JsonValue ToJson(size_t tail_limit = 0) const;

 private:
  void ApplyLocked(AuditRecord record);  // totals + bounded tail

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::function<void(const AuditRecord&)> sink_;  // guarded by mutex_
  std::deque<AuditRecord> records_;
  std::map<std::string, Totals> tenant_totals_;
  Totals global_totals_;
  uint64_t next_seq_ = 1;
  uint64_t dropped_ = 0;
};

}  // namespace dpclustx::obs

#endif  // DPCLUSTX_OBS_AUDIT_LOG_H_
