// Build provenance: which binary produced a given metrics dump or bench
// number. Values are baked in at compile time by src/obs/CMakeLists.txt
// (git SHA, compiler, flags, build type) and surfaced through the `stats`
// op, `dpclustx_serve --version`, and scripts/bench_snapshot.sh.

#ifndef DPCLUSTX_OBS_BUILD_INFO_H_
#define DPCLUSTX_OBS_BUILD_INFO_H_

#include <string>

#include "common/json.h"

namespace dpclustx::obs {

struct BuildInfo {
  std::string git_sha;     // short SHA, or "unknown" outside a checkout
  std::string compiler;    // e.g. "GNU 12.2.0"
  std::string flags;       // CMAKE_CXX_FLAGS + build-type flags
  std::string build_type;  // e.g. "Release"
};

/// Compile-time constants of the dpclustx_obs translation unit.
const BuildInfo& GetBuildInfo();

/// {"git_sha","compiler","flags","build_type","dpclustx_threads_env",
///  "compute_pool_width","isa_detected","isa_active","cpu_features"} —
/// the runtime values record the parallelism and kernel dispatch level a
/// dump ran with.
JsonValue BuildInfoJson();

/// One-line form for --version output; ends with
/// ", isa <active> (detected <level>)" so scripts can parse the host's
/// dispatch ceiling.
std::string BuildInfoVersionLine();

}  // namespace dpclustx::obs

#endif  // DPCLUSTX_OBS_BUILD_INFO_H_
