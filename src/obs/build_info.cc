#include "obs/build_info.h"

#include <cstdlib>

#include "common/thread_pool.h"
#include "data/kernels/isa.h"

// Definitions are injected by src/obs/CMakeLists.txt; the fallbacks keep
// non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef DPCLUSTX_GIT_SHA
#define DPCLUSTX_GIT_SHA "unknown"
#endif
#ifndef DPCLUSTX_COMPILER
#define DPCLUSTX_COMPILER "unknown"
#endif
#ifndef DPCLUSTX_CXX_FLAGS
#define DPCLUSTX_CXX_FLAGS ""
#endif
#ifndef DPCLUSTX_BUILD_TYPE
#define DPCLUSTX_BUILD_TYPE ""
#endif

namespace dpclustx::obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo;
    b->git_sha = DPCLUSTX_GIT_SHA;
    b->compiler = DPCLUSTX_COMPILER;
    b->flags = DPCLUSTX_CXX_FLAGS;
    b->build_type = DPCLUSTX_BUILD_TYPE;
    return b;
  }();
  return *info;
}

JsonValue BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  JsonValue out = JsonValue::Object();
  out.Set("git_sha", JsonValue::String(info.git_sha));
  out.Set("compiler", JsonValue::String(info.compiler));
  out.Set("flags", JsonValue::String(info.flags));
  out.Set("build_type", JsonValue::String(info.build_type));
  const char* threads_env = std::getenv("DPCLUSTX_THREADS");
  out.Set("dpclustx_threads_env",
          JsonValue::String(threads_env == nullptr ? "" : threads_env));
  out.Set("compute_pool_width",
          JsonValue::Number(static_cast<double>(ComputePoolWidth())));
  // Kernel dispatch state: what the cpuid probe found vs what dispatch
  // actually uses (DPCLUSTX_ISA can clamp active below detected).
  out.Set("isa_detected", JsonValue::String(kernels::IsaLevelName(
                              kernels::DetectedIsaLevel())));
  out.Set("isa_active",
          JsonValue::String(kernels::IsaLevelName(kernels::ActiveIsaLevel())));
  out.Set("cpu_features", JsonValue::String(kernels::CpuFeatureString()));
  return out;
}

std::string BuildInfoVersionLine() {
  const BuildInfo& info = GetBuildInfo();
  std::string line = "dpclustx ";
  line += info.git_sha;
  line += " (";
  line += info.compiler;
  if (!info.build_type.empty()) {
    line += ", ";
    line += info.build_type;
  }
  line += ")";
  line += ", isa ";
  line += kernels::IsaLevelName(kernels::ActiveIsaLevel());
  line += " (detected ";
  line += kernels::IsaLevelName(kernels::DetectedIsaLevel());
  line += ")";
  return line;
}

}  // namespace dpclustx::obs
