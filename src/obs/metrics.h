// Process-wide metrics registry with lock-light instruments.
//
// The serving stack needs counters on every request, so the hot path must
// not take a lock or bounce one cache line between workers: Counter and
// LatencyHistogram shard their state across cacheline-aligned atomic cells
// indexed by a per-thread shard id, and reads sum the shards. Registration
// happens once at startup (engine construction); after that the registry is
// only read, so handles are plain pointers with no lifetime bookkeeping on
// the hot path.
//
// Instruments:
//   Counter           monotonic, sharded; Increment is one relaxed
//                     fetch_add on a thread-private-ish cell.
//   Gauge             last-written int64 (queue depths, sizes).
//   LatencyHistogram  fixed log-spaced µs buckets + count/sum/max; one
//                     relaxed fetch_add per bucket observation plus a CAS
//                     loop for the max.
//   callback gauge    evaluated at exposition time only — for values some
//                     other component already maintains (cache hit counts,
//                     pool queue depth). Non-finite callback results are
//                     clamped to 0 so the JSON/Prometheus gate never sees
//                     NaN/Inf.
//
// Exposition: PrometheusText() (text format 0.0.4) and ToJson(). Both walk
// the registry under its registration mutex; neither blocks writers.
//
// DP-safety boundary: metric names, labels, and help strings are
// compile-time constants chosen by this codebase — never client data, raw
// values, or per-record information. Values are aggregate counts/timings
// and ε totals, which are DP-safe operational metadata (see DESIGN.md §10).

#ifndef DPCLUSTX_OBS_METRICS_H_
#define DPCLUSTX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace dpclustx::obs {

/// Shards per instrument. Small enough that summing on read is cheap,
/// large enough that a handful of workers rarely collide on a cell.
inline constexpr size_t kMetricShards = 8;

namespace internal {

/// Stable per-thread shard index in [0, kMetricShards): threads are
/// assigned round-robin on first use, so up to kMetricShards concurrent
/// writers never share a cell.
size_t ThisThreadShard();

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

class MetricsRegistry;

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::array<internal::ShardCell, kMetricShards> shards_;
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<int64_t> value_{0};
};

class LatencyHistogram {
 public:
  /// Upper bucket bounds in microseconds; the final +Inf bucket is
  /// implicit. Log-spaced from 50 µs (a cache-hit explain) to 4 s (a
  /// deadline-bounded worst case).
  static constexpr std::array<uint64_t, 14> kBucketBoundsMicros = {
      50,     100,    250,    500,     1000,    2500,    5000,
      10000,  25000,  50000,  100000,  250000,  1000000, 4000000};
  static constexpr size_t kNumBuckets = kBucketBoundsMicros.size() + 1;

  void Observe(uint64_t micros);

  uint64_t count() const;
  uint64_t sum_micros() const;
  uint64_t max_micros() const {
    return max_.load(std::memory_order_relaxed);
  }
  /// Per-bucket (non-cumulative) counts, shard-summed.
  std::array<uint64_t, kNumBuckets> BucketCounts() const;

  /// Approximate `quantile` (in [0, 1]) in microseconds, linearly
  /// interpolated within the bucket that holds the target rank. The
  /// resolution is the bucket grid: exact enough for p50/p95/p99
  /// regression gates, not for sub-bucket comparisons. Returns 0 when
  /// the histogram is empty; the +Inf bucket reports the observed max.
  uint64_t ApproxQuantileMicros(double quantile) const;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::atomic<uint64_t> max_{0};
};

/// One {key, value} Prometheus label. Values are escaped on exposition.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry for single-engine deployments. Library
  /// code never writes to it implicitly; components are handed a registry
  /// (or create their own) and register at startup.
  static MetricsRegistry& Default();

  /// Registration is idempotent per (name, labels): a second call returns
  /// the first handle, so restarts of a subsystem inside one process reuse
  /// the same instrument. Registering the same (name, labels) as a
  /// different instrument kind is a programming error (DPX_CHECK). Names
  /// must match [a-zA-Z_:][a-zA-Z0-9_:]*; a metric family must hold one
  /// instrument kind across all label sets.
  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           const MetricLabels& labels = {});
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       const MetricLabels& labels = {});
  LatencyHistogram* RegisterLatencyHistogram(const std::string& name,
                                             const std::string& help,
                                             const MetricLabels& labels = {});

  /// Callback gauge: `fn` is invoked at exposition time (under the
  /// registry mutex — keep it cheap and never call back into the
  /// registry). Returns an id for RemoveCallback; owners whose state the
  /// callback reads MUST remove it before that state dies.
  uint64_t AddCallbackGauge(const std::string& name, const std::string& help,
                            const MetricLabels& labels,
                            std::function<double()> fn);
  void RemoveCallback(uint64_t id);

  /// Prometheus text exposition format 0.0.4. Families sorted by name,
  /// entries within a family by label string; deterministic given
  /// deterministic values (golden-tested).
  std::string PrometheusText() const;

  /// JSON dump of every instrument. All numbers finite by construction
  /// (callback results are clamped), so the service JSON gate passes.
  JsonValue ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };

  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::string label_text;  // rendered {k="v",...} or ""
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    LatencyHistogram* histogram = nullptr;
    std::function<double()> callback;
    uint64_t callback_id = 0;
  };

  Entry* FindOrNull(const std::string& name, const std::string& label_text);
  Entry& Register(Kind kind, const std::string& name, const std::string& help,
                  const MetricLabels& labels);

  mutable std::mutex mutex_;
  // Instrument storage is a deque so handles stay stable as the registry
  // grows; entries are never removed (callbacks are detached, not erased,
  // so exposition order stays stable).
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LatencyHistogram> histograms_;
  std::vector<Entry> entries_;  // exposition order: registration order
  uint64_t next_callback_id_ = 1;
};

}  // namespace dpclustx::obs

#endif  // DPCLUSTX_OBS_METRICS_H_
