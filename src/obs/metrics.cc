#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx::obs {

namespace internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Inner label text `k1="v1",k2="v2"` (no braces), stable given the
/// registration-time label order.
std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    DPX_CHECK(ValidMetricName(key)) << "bad label name '" << key << "'";
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  return out;
}

std::string Decorate(const std::string& name, const std::string& inner) {
  if (inner.empty()) return name;
  return name + "{" + inner + "}";
}

/// Same, with an extra `le` label appended (histogram buckets).
std::string DecorateLe(const std::string& name, const std::string& inner,
                       const std::string& le) {
  std::string joined = inner;
  if (!joined.empty()) joined += ',';
  joined += "le=\"" + le + "\"";
  return name + "{" + joined + "}";
}

std::string FormatDouble(double value) {
  // Callback gauges must never leak NaN/Inf into an exposition format (the
  // service response gate would reject the whole payload).
  if (!std::isfinite(value)) value = 0.0;
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

}  // namespace

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void LatencyHistogram::Observe(uint64_t micros) {
  size_t bucket = 0;
  while (bucket < kBucketBoundsMicros.size() &&
         micros > kBucketBoundsMicros[bucket]) {
    ++bucket;
  }
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_.compare_exchange_weak(seen, micros,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LatencyHistogram::sum_micros() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> totals{};
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      totals[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

uint64_t LatencyHistogram::ApproxQuantileMicros(double quantile) const {
  if (quantile < 0.0) quantile = 0.0;
  if (quantile > 1.0) quantile = 1.0;
  const auto buckets = BucketCounts();
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;

  // Rank of the target observation (1-based, ceil so p100 = last).
  const auto rank = static_cast<uint64_t>(quantile * static_cast<double>(total));
  const uint64_t target = std::max<uint64_t>(rank, 1);

  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[b];
    if (cumulative < target) continue;
    // The target rank lands in bucket b: interpolate within its bounds.
    const uint64_t lower = b == 0 ? 0 : kBucketBoundsMicros[b - 1];
    if (b == kNumBuckets - 1) {
      // +Inf bucket has no upper bound; the observed max is the honest cap.
      return max_.load(std::memory_order_relaxed);
    }
    const uint64_t upper = kBucketBoundsMicros[b];
    const double within = static_cast<double>(target - before) /
                          static_cast<double>(buckets[b]);
    return lower +
           static_cast<uint64_t>(within * static_cast<double>(upper - lower));
  }
  return max_.load(std::memory_order_relaxed);  // unreachable: counts summed
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instruments may be written from compute-pool threads
  // that outlive static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(
    const std::string& name, const std::string& label_text) {
  for (Entry& entry : entries_) {
    if (entry.name == name && entry.label_text == label_text) return &entry;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::Register(Kind kind,
                                                  const std::string& name,
                                                  const std::string& help,
                                                  const MetricLabels& labels) {
  DPX_CHECK(ValidMetricName(name)) << "bad metric name '" << name << "'";
  const std::string label_text = RenderLabels(labels);
  if (Entry* existing = FindOrNull(name, label_text)) {
    DPX_CHECK(existing->kind == kind)
        << "metric '" << name << "' re-registered as a different kind";
    return *existing;
  }
  // One instrument kind per family: mixed kinds under one name would
  // produce an unparseable exposition.
  for (const Entry& entry : entries_) {
    DPX_CHECK(entry.name != name || entry.kind == kind)
        << "metric family '" << name << "' already holds a different kind";
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.help = help;
  entry.label_text = label_text;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Register(Kind::kCounter, name, help, labels);
  if (entry.counter == nullptr) {
    entry.counter = &counters_.emplace_back();
  }
  return entry.counter;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Register(Kind::kGauge, name, help, labels);
  if (entry.gauge == nullptr) {
    entry.gauge = &gauges_.emplace_back();
  }
  return entry.gauge;
}

LatencyHistogram* MetricsRegistry::RegisterLatencyHistogram(
    const std::string& name, const std::string& help,
    const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = Register(Kind::kHistogram, name, help, labels);
  if (entry.histogram == nullptr) {
    entry.histogram = &histograms_.emplace_back();
  }
  return entry.histogram;
}

uint64_t MetricsRegistry::AddCallbackGauge(const std::string& name,
                                           const std::string& help,
                                           const MetricLabels& labels,
                                           std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  DPX_CHECK(ValidMetricName(name)) << "bad metric name '" << name << "'";
  Entry entry;
  entry.kind = Kind::kCallback;
  entry.name = name;
  entry.help = help;
  entry.label_text = RenderLabels(labels);
  entry.callback = std::move(fn);
  entry.callback_id = next_callback_id_++;
  entries_.push_back(std::move(entry));
  return entries_.back().callback_id;
}

void MetricsRegistry::RemoveCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.kind == Kind::kCallback && entry.callback_id == id) {
      // Detach rather than erase so handles into entries_ stay valid.
      entry.callback = nullptr;
    }
  }
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Group by family, sorted by name; within a family, by label text. Index
  // into entries_ so callback evaluation happens exactly once per entry.
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (entry.kind == Kind::kCallback && entry.callback == nullptr) continue;
    ordered.push_back(&entry);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->label_text < b->label_text;
                   });

  std::string out;
  const std::string* current_family = nullptr;
  // Histogram max values are exposed as a sibling gauge family
  // (<name>_max_micros) because the Prometheus histogram type has no max
  // series; collected here and emitted after the main walk.
  std::string max_families;
  const std::string* current_max_family = nullptr;
  for (const Entry* entry : ordered) {
    if (current_family == nullptr || *current_family != entry->name) {
      out += "# HELP " + entry->name + " " + entry->help + "\n";
      out += "# TYPE " + entry->name + " ";
      switch (entry->kind) {
        case Kind::kCounter:
          out += "counter\n";
          break;
        case Kind::kGauge:
        case Kind::kCallback:
          out += "gauge\n";
          break;
        case Kind::kHistogram:
          out += "histogram\n";
          break;
      }
      current_family = &entry->name;
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out += Decorate(entry->name, entry->label_text) + " " +
               FormatU64(entry->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += Decorate(entry->name, entry->label_text) + " " +
               FormatDouble(static_cast<double>(entry->gauge->Value())) + "\n";
        break;
      case Kind::kCallback:
        out += Decorate(entry->name, entry->label_text) + " " +
               FormatDouble(entry->callback()) + "\n";
        break;
      case Kind::kHistogram: {
        const auto buckets = entry->histogram->BucketCounts();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < LatencyHistogram::kBucketBoundsMicros.size();
             ++b) {
          cumulative += buckets[b];
          out += DecorateLe(
                     entry->name + "_bucket", entry->label_text,
                     FormatU64(LatencyHistogram::kBucketBoundsMicros[b])) +
                 " " + FormatU64(cumulative) + "\n";
        }
        cumulative += buckets.back();
        out += DecorateLe(entry->name + "_bucket", entry->label_text,
                          "+Inf") +
               " " + FormatU64(cumulative) + "\n";
        out += Decorate(entry->name + "_sum", entry->label_text) + " " +
               FormatU64(entry->histogram->sum_micros()) + "\n";
        out += Decorate(entry->name + "_count", entry->label_text) + " " +
               FormatU64(entry->histogram->count()) + "\n";
        const std::string max_name = entry->name + "_max_micros";
        if (current_max_family == nullptr ||
            *current_max_family != entry->name) {
          max_families += "# HELP " + max_name +
                          " Largest single observation of " + entry->name +
                          "\n# TYPE " + max_name + " gauge\n";
          current_max_family = &entry->name;
        }
        max_families += Decorate(max_name, entry->label_text) + " " +
                        FormatU64(entry->histogram->max_micros()) + "\n";
        break;
      }
    }
  }
  out += max_families;
  return out;
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue counters = JsonValue::Object();
  JsonValue gauges = JsonValue::Object();
  JsonValue histograms = JsonValue::Object();
  for (const Entry& entry : entries_) {
    const std::string key = Decorate(entry.name, entry.label_text);
    switch (entry.kind) {
      case Kind::kCounter:
        counters.Set(key, JsonValue::Number(
                              static_cast<double>(entry.counter->Value())));
        break;
      case Kind::kGauge:
        gauges.Set(key, JsonValue::Number(
                            static_cast<double>(entry.gauge->Value())));
        break;
      case Kind::kCallback: {
        if (entry.callback == nullptr) break;
        double value = entry.callback();
        if (!std::isfinite(value)) value = 0.0;
        gauges.Set(key, JsonValue::Number(value));
        break;
      }
      case Kind::kHistogram: {
        JsonValue h = JsonValue::Object();
        h.Set("count", JsonValue::Number(
                           static_cast<double>(entry.histogram->count())));
        h.Set("sum_micros",
              JsonValue::Number(
                  static_cast<double>(entry.histogram->sum_micros())));
        h.Set("max_micros",
              JsonValue::Number(
                  static_cast<double>(entry.histogram->max_micros())));
        JsonValue bounds = JsonValue::Array();
        for (uint64_t bound : LatencyHistogram::kBucketBoundsMicros) {
          bounds.Append(JsonValue::Number(static_cast<double>(bound)));
        }
        h.Set("bounds_micros", std::move(bounds));
        JsonValue buckets = JsonValue::Array();
        for (uint64_t value : entry.histogram->BucketCounts()) {
          buckets.Append(JsonValue::Number(static_cast<double>(value)));
        }
        h.Set("buckets", std::move(buckets));
        histograms.Set(key, std::move(h));
        break;
      }
    }
  }
  JsonValue out = JsonValue::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace dpclustx::obs
