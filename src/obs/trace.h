// Per-request span tracing for the explanation pipeline.
//
// A Trace is a tree of timed spans buffered in memory for one request (or
// one CLI run). Instrumented code marks scopes with DPX_SPAN("name"); the
// macro is an RAII object that does nothing — one thread-local load and a
// branch — unless a Trace is active on the current thread, so leaving the
// instrumentation compiled in costs nothing on untraced requests.
//
// Threading model: a Trace is single-threaded — it records spans only from
// the thread that activated it (ScopedTraceActivation). Work that fans out
// to the compute pool (ParallelFor shards) is attributed to the calling
// thread's enclosing span, which always participates in the region; pool
// threads see no active trace and record nothing. This keeps the hot path
// free of synchronization and the tree well-formed by construction.
//
// Timings: wall time from steady_clock and per-thread CPU time
// (CLOCK_THREAD_CPUTIME_ID), both in microseconds, rounded UP so a span
// that ran at all reports >= 1 µs of wall time ("ran" is distinguishable
// from "skipped" even for sub-microsecond stages).
//
// DP-safety boundary: span names are compile-time string constants, and a
// span carries nothing else but timings — never attribute values, labels,
// counts, or any function of the sensitive data (see DESIGN.md §10).
//
// Crash flushing: the first trace activation registers a fatal-flush hook
// (common/logging.h) that renders the crashing thread's in-progress trace
// to stderr before std::abort, so a DPX_CHECK failure leaves a usable last
// trace.

#ifndef DPCLUSTX_OBS_TRACE_H_
#define DPCLUSTX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"

namespace dpclustx::obs {

struct TraceSpan {
  /// Static string — spans never carry runtime data (see file comment).
  const char* name = "";
  /// Offset of this span's start from the trace root's start, µs.
  uint64_t start_micros = 0;
  /// 0 while the span is still open.
  uint64_t wall_micros = 0;
  uint64_t cpu_micros = 0;
  std::vector<std::unique_ptr<TraceSpan>> children;
};

class Trace {
 public:
  explicit Trace(const char* root_name);
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Closes the root span's timings. Idempotent; ToJson calls it.
  void Finish();

  const TraceSpan& root() const { return root_; }

  /// {"name","start_micros","wall_micros","cpu_micros","children":[...]}
  /// recursively — stable field names, integers only (golden-tested).
  JsonValue ToJson();

 private:
  friend class ScopedTraceActivation;
  friend class SpanScope;
  friend void AddPrerecordedSpan(Trace&, const char*, uint64_t);

  TraceSpan root_;
  std::chrono::steady_clock::time_point wall_start_;
  uint64_t cpu_start_ = 0;
  bool finished_ = false;
};

/// Installs `trace` as the calling thread's active trace for the scope's
/// lifetime (nullptr = leave tracing off: callers can make tracing
/// conditional without duplicating the code path). Restores the previous
/// activation on destruction, so activations nest.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(Trace* trace);
  ~ScopedTraceActivation();
  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  Trace* previous_trace_;
  TraceSpan* previous_span_;
};

/// RAII span. Near-free when no trace is active on this thread.
class SpanScope {
 public:
  explicit SpanScope(const char* name);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceSpan* span_ = nullptr;    // nullptr = inactive
  TraceSpan* parent_ = nullptr;  // restore target
  std::chrono::steady_clock::time_point wall_start_;
  uint64_t cpu_start_ = 0;
};

/// True when DPX_SPAN would record on this thread.
bool TracingActive();

/// Appends a pre-measured child to the root — for work that finished
/// before the trace could be constructed (e.g. request parsing, which must
/// happen before the "trace" flag is readable).
void AddPrerecordedSpan(Trace& trace, const char* name, uint64_t wall_micros);

/// Indented human-readable rendering ("name  wall=12µs cpu=9µs"); open
/// spans render as "(open)". Used by dpclustx_cli --trace and the crash
/// flush hook.
std::string RenderTraceText(const TraceSpan& span);

#define DPX_OBS_CONCAT_INNER(a, b) a##b
#define DPX_OBS_CONCAT(a, b) DPX_OBS_CONCAT_INNER(a, b)
/// Marks the enclosing scope as a traced span. `name` must be a string
/// literal (it is stored by pointer and may outlive the scope).
#define DPX_SPAN(name) \
  ::dpclustx::obs::SpanScope DPX_OBS_CONCAT(dpx_span_, __LINE__)(name)

}  // namespace dpclustx::obs

#endif  // DPCLUSTX_OBS_TRACE_H_
