#include "obs/audit_log.h"

#include <utility>

namespace dpclustx::obs {
namespace {

JsonValue TotalsToJson(const AuditLog::Totals& t) {
  JsonValue out = JsonValue::Object();
  out.Set("epsilon_charged", JsonValue::Number(t.epsilon_charged));
  out.Set("epsilon_denied", JsonValue::Number(t.epsilon_denied));
  out.Set("charges", JsonValue::Number(static_cast<double>(t.charges)));
  out.Set("denials", JsonValue::Number(static_cast<double>(t.denials)));
  return out;
}

JsonValue RecordToJson(const AuditRecord& r) {
  JsonValue out = JsonValue::Object();
  out.Set("seq", JsonValue::Number(static_cast<double>(r.seq)));
  out.Set("tenant", JsonValue::String(r.tenant));
  out.Set("dataset", JsonValue::String(r.dataset));
  out.Set("label", JsonValue::String(r.label));
  out.Set("epsilon", JsonValue::Number(r.epsilon));
  out.Set("granted", JsonValue::Bool(r.granted));
  out.Set("reason", JsonValue::String(r.reason));
  return out;
}

}  // namespace

AuditLog::AuditLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t AuditLog::Record(const std::string& tenant, const std::string& dataset,
                          const std::string& label, double epsilon,
                          bool granted, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  AuditRecord record;
  record.seq = next_seq_++;
  record.tenant = tenant;
  record.dataset = dataset;
  record.label = label;
  record.epsilon = epsilon;
  record.granted = granted;
  record.reason = reason;

  // Durable hook first: the journal write happens before the charge is
  // observable anywhere (the caller is still holding its spend lock and has
  // not yet built a response).
  if (sink_) sink_(record);
  ApplyLocked(std::move(record));
  return next_seq_ - 1;
}

void AuditLog::ApplyLocked(AuditRecord record) {
  Totals& tenant_totals = tenant_totals_[record.tenant];
  if (record.granted) {
    tenant_totals.epsilon_charged += record.epsilon;
    tenant_totals.charges++;
    global_totals_.epsilon_charged += record.epsilon;
    global_totals_.charges++;
  } else {
    tenant_totals.epsilon_denied += record.epsilon;
    tenant_totals.denials++;
    global_totals_.epsilon_denied += record.epsilon;
    global_totals_.denials++;
  }

  records_.push_back(std::move(record));
  while (records_.size() > capacity_) {
    records_.pop_front();
    dropped_++;
  }
}

void AuditLog::set_sink(std::function<void(const AuditRecord&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

AuditLog::State AuditLog::SnapshotState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  State state;
  state.next_seq = next_seq_;
  state.dropped = dropped_;
  state.global = global_totals_;
  state.tenants = tenant_totals_;
  state.tail.assign(records_.begin(), records_.end());
  return state;
}

void AuditLog::RestoreState(State state) {
  std::lock_guard<std::mutex> lock(mutex_);
  next_seq_ = state.next_seq;
  dropped_ = state.dropped;
  global_totals_ = state.global;
  tenant_totals_ = std::move(state.tenants);
  records_.assign(state.tail.begin(), state.tail.end());
  while (records_.size() > capacity_) {
    records_.pop_front();
    dropped_++;
  }
}

void AuditLog::RestoreRecord(const AuditRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (record.seq >= next_seq_) next_seq_ = record.seq + 1;
  ApplyLocked(record);
}

AuditLog::Totals AuditLog::TenantTotals(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenant_totals_.find(tenant);
  if (it == tenant_totals_.end()) return Totals{};
  return it->second;
}

AuditLog::Totals AuditLog::GlobalTotals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_totals_;
}

std::vector<AuditRecord> AuditLog::Tail(size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t start = 0;
  if (limit != 0 && records_.size() > limit) {
    start = records_.size() - limit;
  }
  std::vector<AuditRecord> out;
  out.reserve(records_.size() - start);
  for (size_t i = start; i < records_.size(); ++i) out.push_back(records_[i]);
  return out;
}

uint64_t AuditLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

uint64_t AuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

JsonValue AuditLog::ToJson(size_t tail_limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Object();
  out.Set("next_seq", JsonValue::Number(static_cast<double>(next_seq_)));
  out.Set("dropped", JsonValue::Number(static_cast<double>(dropped_)));
  out.Set("global", TotalsToJson(global_totals_));
  JsonValue totals = JsonValue::Object();
  for (const auto& [tenant, t] : tenant_totals_) {
    totals.Set(tenant, TotalsToJson(t));
  }
  out.Set("totals", std::move(totals));
  JsonValue records = JsonValue::Array();
  size_t start = 0;
  if (tail_limit != 0 && records_.size() > tail_limit) {
    start = records_.size() - tail_limit;
  }
  for (size_t i = start; i < records_.size(); ++i) {
    records.Append(RecordToJson(records_[i]));
  }
  out.Set("records", std::move(records));
  return out;
}

}  // namespace dpclustx::obs
