#include "obs/trace.h"

#include <time.h>

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/logging.h"

namespace dpclustx::obs {
namespace {

// Active trace for this thread. SpanScope does one load of tls_current_span
// on construction; both stay null except inside a ScopedTraceActivation.
thread_local Trace* tls_trace = nullptr;
thread_local TraceSpan* tls_current_span = nullptr;

uint64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
#else
  return 0;
#endif
}

// Rounds a steady_clock duration up to whole microseconds, minimum 1, so a
// closed span always reports that it ran.
uint64_t CeilWallMicros(std::chrono::steady_clock::duration d) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  if (ns.count() <= 0) return 1;
  return static_cast<uint64_t>((ns.count() + 999) / 1000);
}

uint64_t CeilOffsetMicros(std::chrono::steady_clock::duration d) {
  // Offsets (start_micros) round up too but may legitimately be 0 (a span
  // starting in the same microsecond as the root).
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  if (ns.count() <= 0) return 0;
  return static_cast<uint64_t>((ns.count() + 999) / 1000);
}

void AppendSpanText(const TraceSpan& span, int depth, std::string* out) {
  char line[160];
  if (span.wall_micros == 0) {
    std::snprintf(line, sizeof(line), "%*s%s  (open)\n", depth * 2, "",
                  span.name);
  } else {
    std::snprintf(line, sizeof(line),
                  "%*s%s  wall=%lluus cpu=%lluus start=+%lluus\n", depth * 2,
                  "", span.name,
                  static_cast<unsigned long long>(span.wall_micros),
                  static_cast<unsigned long long>(span.cpu_micros),
                  static_cast<unsigned long long>(span.start_micros));
  }
  out->append(line);
  for (const auto& child : span.children) {
    AppendSpanText(*child, depth + 1, out);
  }
}

// Fatal-flush hook: render the crashing thread's in-progress trace to
// stderr. Uses only the crashing thread's thread-locals, so it is safe to
// run while other threads are wedged.
void FlushActiveTraceOnFatal() {
  if (tls_trace == nullptr) return;
  std::string text = "--- active trace at fatal error ---\n";
  AppendSpanText(tls_trace->root(), 0, &text);
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

void InstallFatalHookOnce() {
  static std::once_flag once;
  std::call_once(once,
                 [] { RegisterFatalFlushHook(&FlushActiveTraceOnFatal); });
}

JsonValue SpanToJson(const TraceSpan& span) {
  JsonValue node = JsonValue::Object();
  node.Set("name", JsonValue::String(span.name));
  node.Set("start_micros",
           JsonValue::Number(static_cast<double>(span.start_micros)));
  node.Set("wall_micros",
           JsonValue::Number(static_cast<double>(span.wall_micros)));
  node.Set("cpu_micros",
           JsonValue::Number(static_cast<double>(span.cpu_micros)));
  JsonValue children = JsonValue::Array();
  for (const auto& child : span.children) {
    children.Append(SpanToJson(*child));
  }
  node.Set("children", std::move(children));
  return node;
}

}  // namespace

Trace::Trace(const char* root_name) {
  root_.name = root_name;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ = ThreadCpuMicros();
}

void Trace::Finish() {
  if (finished_) return;
  finished_ = true;
  root_.wall_micros =
      CeilWallMicros(std::chrono::steady_clock::now() - wall_start_);
  const uint64_t cpu_now = ThreadCpuMicros();
  root_.cpu_micros = cpu_now > cpu_start_ ? cpu_now - cpu_start_ : 0;
}

JsonValue Trace::ToJson() {
  Finish();
  return SpanToJson(root_);
}

ScopedTraceActivation::ScopedTraceActivation(Trace* trace)
    : previous_trace_(tls_trace), previous_span_(tls_current_span) {
  if (trace != nullptr) {
    InstallFatalHookOnce();
    tls_trace = trace;
    tls_current_span = &trace->root_;
  }
}

ScopedTraceActivation::~ScopedTraceActivation() {
  tls_trace = previous_trace_;
  tls_current_span = previous_span_;
}

SpanScope::SpanScope(const char* name) {
  TraceSpan* parent = tls_current_span;
  if (parent == nullptr) return;  // no trace active: stay a no-op
  auto child = std::make_unique<TraceSpan>();
  child->name = name;
  child->start_micros = CeilOffsetMicros(std::chrono::steady_clock::now() -
                                         tls_trace->wall_start_);
  span_ = child.get();
  parent_ = parent;
  parent->children.push_back(std::move(child));
  tls_current_span = span_;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ = ThreadCpuMicros();
}

SpanScope::~SpanScope() {
  if (span_ == nullptr) return;
  span_->wall_micros =
      CeilWallMicros(std::chrono::steady_clock::now() - wall_start_);
  const uint64_t cpu_now = ThreadCpuMicros();
  span_->cpu_micros = cpu_now > cpu_start_ ? cpu_now - cpu_start_ : 0;
  tls_current_span = parent_;
}

bool TracingActive() { return tls_current_span != nullptr; }

void AddPrerecordedSpan(Trace& trace, const char* name, uint64_t wall_micros) {
  auto child = std::make_unique<TraceSpan>();
  child->name = name;
  child->start_micros = 0;
  child->wall_micros = wall_micros == 0 ? 1 : wall_micros;
  child->cpu_micros = 0;
  trace.root_.children.push_back(std::move(child));
}

std::string RenderTraceText(const TraceSpan& span) {
  std::string out;
  AppendSpanText(span, 0, &out);
  return out;
}

}  // namespace dpclustx::obs
