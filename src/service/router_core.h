// Routing policy for the sharded multi-worker front door (dpclustx_router).
//
// The router process (tools/dpclustx_router.cc) supervises N dpclustx_serve
// shard workers (each owning a disjoint set of datasets, with its own
// snapshot + audit journal) and optionally R read-only replicas per shard.
// Everything that is *policy* — which worker a request belongs to, which
// requests may be served by a replica, how a session maps to its dataset,
// how respawn delays grow — lives here, process-free and unit-testable.
// The tool owns only the mechanics (pipes, threads, kill/respawn).
//
// Sharding is a consistent-hash ring over dataset names with virtual nodes,
// so dataset→shard assignments are deterministic across router restarts
// (a restarted router must route "census" to the shard whose snapshot holds
// it) and resharding from N to N+1 workers moves only ~1/(N+1) of the
// datasets.
//
// Request classification (one entry per engine op — keep in lockstep with
// ServiceEngine's op vocabulary):
//
//   load_dataset            shard by "name"
//   schema, cluster,
//   append_rows,
//   create_session          shard by "dataset"   (create_session also binds
//                                                 session→dataset here)
//   budget, size,
//   close_session           shard by the session's bound dataset
//   explain, hist           same, and replica-eligible: a read-only replica
//                           restored from the shard's snapshot can serve the
//                           cache hit; on its FailedPrecondition/NotFound
//                           refusal the router retries against the primary
//   ping, stats, metrics,
//   trace, audit            broadcast to every shard, responses merged
//   save_snapshot,
//   load_snapshot           refused: the router owns snapshot scheduling
//                           (per-shard files; see _router_sync_replicas)
//
// Session stickiness: the router learns session→dataset bindings from the
// create_session requests that pass through it. A session created before
// the router started (or through another front door) is unroutable —
// NotFound here, by design: guessing a shard could silently charge the
// wrong ledger... it couldn't actually (shards refuse unknown sessions),
// but the client deserves a deterministic error, not a shard-dependent one.

#ifndef DPCLUSTX_SERVICE_ROUTER_CORE_H_
#define DPCLUSTX_SERVICE_ROUTER_CORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace dpclustx::service {

/// FNV-1a 64-bit over the key bytes. Stable across platforms and builds —
/// the ring layout is part of the deployment contract (snapshots name the
/// shard that owns each dataset).
uint64_t RouterHash(const std::string& key);

/// Consistent-hash ring with virtual nodes. Immutable after construction
/// (the worker fleet is fixed at router startup; a respawned worker keeps
/// its name and therefore its ring positions).
class HashRing {
 public:
  /// `vnodes` virtual nodes per physical node smooth the key distribution;
  /// 64 keeps the max/min load ratio under ~1.4 for small fleets.
  explicit HashRing(std::vector<std::string> nodes, size_t vnodes = 64);

  /// The node owning `key`: the first virtual node clockwise from the key's
  /// hash. Requires a non-empty ring.
  const std::string& Route(const std::string& key) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  std::vector<std::string> nodes_;
  std::vector<std::pair<uint64_t, size_t>> ring_;  // sorted (hash, node idx)
};

/// What the router should do with one request.
enum class RouteKind {
  kShard,        // exactly one shard owns it (decision.dataset says which)
  kReplicaRead,  // shard-keyed and replica-eligible (explain/hist)
  kBroadcast,    // every shard answers; the router merges the responses
  kRefused,      // the router answers with an error itself (snapshot ops)
  kUnknownOp,    // not in the vocabulary: forward to shard 0 so the engine
                 // produces its canonical "unknown op" error
};

struct RouteDecision {
  RouteKind kind = RouteKind::kUnknownOp;
  std::string dataset;  // set for kShard / kReplicaRead
};

/// Thread-safe session→dataset bindings learned from create_session.
class SessionTable {
 public:
  void Bind(const std::string& session, const std::string& dataset);
  void Unbind(const std::string& session);
  /// NotFound when the session was never bound through this router.
  StatusOr<std::string> Lookup(const std::string& session) const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> bindings_;
};

/// Exponential respawn backoff: base * 2^(attempt-1), capped. attempt is
/// 1-based; out-of-range attempts clamp to the cap (never overflow).
struct Backoff {
  int64_t base_ms = 100;
  int64_t max_ms = 2000;
  int64_t DelayMs(uint64_t attempt) const;

  /// DelayMs with ±20% jitter: `unit_random` in [0, 1) maps linearly onto
  /// [0.8, 1.2) of the exponential delay. Workers crashed by a common cause
  /// (a bad snapshot, an OOM sweep) must not respawn in lockstep and
  /// re-stampede whatever killed them; the caller supplies the randomness
  /// so tests stay deterministic. Result is floored at 1 ms.
  int64_t JitteredDelayMs(uint64_t attempt, double unit_random) const;
};

/// The policy bundle the router tool drives: ring + session table +
/// request classification.
class RouterCore {
 public:
  explicit RouterCore(std::vector<std::string> shards, size_t vnodes = 64);

  /// Classifies `request` (a parsed engine request). Learns bindings as a
  /// side effect: create_session binds its session, close_session unbinds.
  /// InvalidArgument when a field the route needs is missing/mistyped;
  /// NotFound for a session this router never saw.
  StatusOr<RouteDecision> Classify(const JsonValue& request);

  /// The shard owning `dataset` (ring lookup).
  const std::string& ShardFor(const std::string& dataset) const;

  SessionTable& sessions() { return sessions_; }
  const HashRing& ring() const { return ring_; }

 private:
  HashRing ring_;
  SessionTable sessions_;
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_ROUTER_CORE_H_
