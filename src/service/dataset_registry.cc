#include "service/dataset_registry.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "data/csv.h"
#include "data/synthetic.h"

namespace dpclustx::service {

namespace {
std::atomic<uint64_t>& UidCounter() {
  static std::atomic<uint64_t> counter{1};
  return counter;
}

uint64_t NextUid() {
  return UidCounter().fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DatasetEntry::DatasetEntry(std::string name, std::string source,
                           Dataset dataset, double cap_epsilon)
    : DatasetEntry(std::move(name), std::move(source), std::move(dataset),
                   cap_epsilon, NextUid()) {}

DatasetEntry::DatasetEntry(std::string name, std::string source,
                           Dataset dataset, double cap_epsilon, uint64_t uid)
    : name_(std::move(name)),
      source_(std::move(source)),
      uid_(uid),
      dataset_(std::move(dataset)),
      cap_epsilon_(cap_epsilon > 0.0 ? cap_epsilon : 0.0),
      cap_(cap_epsilon > 0.0 ? std::make_unique<PrivacyBudget>(cap_epsilon)
                             : nullptr) {}

void DatasetEntry::BumpUidFloor(uint64_t floor) {
  std::atomic<uint64_t>& counter = UidCounter();
  uint64_t current = counter.load(std::memory_order_relaxed);
  while (current < floor &&
         !counter.compare_exchange_weak(current, floor,
                                        std::memory_order_relaxed)) {
  }
}

StatusOr<std::shared_ptr<const ClusteringView>> DatasetEntry::PutClustering(
    std::shared_ptr<const ClusteringView> view) {
  if (view == nullptr || view->id.empty()) {
    return Status::InvalidArgument("clustering view needs a non-empty id");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clusterings_.find(view->id);
  if (it != clusterings_.end()) {
    if (it->second->fingerprint == view->fingerprint) return it->second;
    return Status::FailedPrecondition(
        "clustering '" + view->id + "' of dataset '" + name_ +
        "' already exists with a different configuration (" +
        it->second->fingerprint + " vs " + view->fingerprint + ")");
  }
  clusterings_.emplace(view->id, view);
  return view;
}

StatusOr<std::shared_ptr<const ClusteringView>> DatasetEntry::GetClustering(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clusterings_.find(id);
  if (it == clusterings_.end()) {
    return Status::NotFound("no clustering '" + id + "' on dataset '" +
                            name_ + "'");
  }
  return it->second;
}

std::vector<std::string> DatasetEntry::ClusteringIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(clusterings_.size());
  for (const auto& [id, view] : clusterings_) ids.push_back(id);
  return ids;
}

std::vector<std::shared_ptr<const ClusteringView>>
DatasetEntry::Clusterings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const ClusteringView>> views;
  views.reserve(clusterings_.size());
  for (const auto& [id, view] : clusterings_) views.push_back(view);
  return views;
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::Register(
    const std::string& name, const std::string& source, Dataset dataset,
    double cap_epsilon, bool replace) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end() && !replace) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' already registered (pass replace to reload)");
  }
  // Replacing must not reset the cross-session ε cap: unless both sources
  // are known and differ (genuinely new data), the replacement is the same
  // sensitive data, so the accumulated spend carries over and the cap can
  // only be tightened, never raised or removed. An unknown (empty) source
  // is treated as possibly-same — over-charging is the safe direction.
  double effective_cap = cap_epsilon;
  double carried_spent = 0.0;
  if (it != entries_.end()) {
    const DatasetEntry& old = *it->second;
    const bool known_distinct =
        !old.source().empty() && !source.empty() && old.source() != source;
    if (!known_distinct && old.cap() != nullptr) {
      effective_cap = cap_epsilon > 0.0
                          ? std::min(cap_epsilon, old.cap_epsilon())
                          : old.cap_epsilon();
      carried_spent = old.cap()->spent_epsilon();
    }
  }
  auto entry = std::make_shared<DatasetEntry>(name, source,
                                              std::move(dataset),
                                              effective_cap);
  if (carried_spent > 0.0 && entry->cap() != nullptr) {
    const double charge =
        std::min(carried_spent, entry->cap()->total_epsilon());
    const Status carried = entry->cap()->Spend(
        charge, "carried over from replaced registration");
    DPX_CHECK(carried.ok()) << carried;  // charge <= total, cannot refuse
  }
  entries_[name] = entry;
  return entry;
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::RegisterSynthetic(
    const std::string& name, const std::string& generator, size_t rows,
    uint64_t seed, double cap_epsilon, bool replace) {
  synth::SyntheticConfig config;
  if (generator == "diabetes") {
    config = synth::DiabetesLike(rows, seed);
  } else if (generator == "census") {
    config = synth::CensusLike(rows, seed);
  } else if (generator == "stackoverflow") {
    config = synth::StackOverflowLike(rows, seed);
  } else {
    return Status::InvalidArgument(
        "unknown generator '" + generator +
        "' (expected diabetes | census | stackoverflow)");
  }
  DPX_ASSIGN_OR_RETURN(Dataset dataset, synth::Generate(config));
  const std::string source = "synthetic generator=" + generator +
                             " rows=" + std::to_string(rows) +
                             " seed=" + std::to_string(seed);
  return Register(name, source, std::move(dataset), cap_epsilon, replace);
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::RegisterCsv(
    const std::string& name, const std::string& path, double cap_epsilon,
    bool replace) {
  DPX_ASSIGN_OR_RETURN(Dataset dataset, ReadCsv(path));
  return Register(name, "csv path=" + path, std::move(dataset), cap_epsilon,
                  replace);
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no dataset '" + name + "' registered");
  }
  return it->second;
}

Status DatasetRegistry::RestoreEntry(std::shared_ptr<DatasetEntry> entry) {
  if (entry == nullptr) {
    return Status::InvalidArgument("cannot restore a null dataset entry");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(entry->name()) != 0) {
    return Status::FailedPrecondition(
        "dataset '" + entry->name() +
        "' already registered; snapshot restore requires an empty registry");
  }
  entries_.emplace(entry->name(), std::move(entry));
  return Status::OK();
}

std::vector<std::string> DatasetRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<std::shared_ptr<DatasetEntry>> DatasetRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<DatasetEntry>> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(entry);
  return entries;
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace dpclustx::service
