#include "service/dataset_registry.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "data/csv.h"
#include "data/synthetic.h"

namespace dpclustx::service {

namespace {
std::atomic<uint64_t>& UidCounter() {
  static std::atomic<uint64_t> counter{1};
  return counter;
}

uint64_t NextUid() {
  return UidCounter().fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DatasetEntry::DatasetEntry(std::string name, std::string source,
                           Dataset dataset, double cap_epsilon)
    : DatasetEntry(std::move(name), std::move(source), std::move(dataset),
                   cap_epsilon, NextUid()) {}

DatasetEntry::DatasetEntry(std::string name, std::string source,
                           Dataset dataset, double cap_epsilon, uint64_t uid)
    : name_(std::move(name)),
      source_(std::move(source)),
      uid_(uid),
      cap_epsilon_(cap_epsilon > 0.0 ? cap_epsilon : 0.0),
      cap_(cap_epsilon > 0.0 ? std::make_unique<PrivacyBudget>(cap_epsilon)
                             : nullptr),
      dataset_(std::make_shared<const Dataset>(std::move(dataset))) {}

void DatasetEntry::BumpUidFloor(uint64_t floor) {
  std::atomic<uint64_t>& counter = UidCounter();
  uint64_t current = counter.load(std::memory_order_relaxed);
  while (current < floor &&
         !counter.compare_exchange_weak(current, floor,
                                        std::memory_order_relaxed)) {
  }
}

StatusOr<DatasetEntry::AppendResult> DatasetEntry::AppendRows(
    const std::vector<std::vector<ValueCode>>& rows, size_t num_threads) {
  // append_mutex_ serializes whole append batches (including the DPXCOL
  // file write); mutex_ is only taken for the final pointer swap, so
  // readers are never blocked behind the heavy work.
  std::lock_guard<std::mutex> append_lock(append_mutex_);

  std::shared_ptr<const Dataset> base;
  std::vector<std::shared_ptr<const ClusteringView>> views;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = dataset_;
    views.reserve(clusterings_.size());
    for (const auto& [id, view] : clusterings_) views.push_back(view);
  }
  for (const auto& view : views) {
    if (view->model == nullptr) {
      return Status::FailedPrecondition(
          "clustering '" + view->id + "' of dataset '" + name_ +
          "' has no fitted model (restored from a snapshot); re-run "
          "cluster before appending rows");
    }
  }

  // Materialize the tail as a heap dataset: it both validates every code
  // against the schema and is what the models label / the stats delta
  // scans. AppendRow returns InvalidArgument on any malformed row before
  // anything is committed anywhere.
  Dataset tail(base->schema(), base->width_policy());
  tail.Reserve(rows.size());
  for (const auto& row : rows) {
    DPX_RETURN_IF_ERROR(tail.AppendRow(row));
  }

  // New dataset generation.
  std::shared_ptr<const Dataset> grown;
  if (base->is_mapped()) {
    DPX_ASSIGN_OR_RETURN(std::shared_ptr<const MappedColumnar> extended,
                         AppendRowsToColumnar(base->mapped(), rows));
    DPX_ASSIGN_OR_RETURN(Dataset mapped_ds, Dataset::FromMapped(extended));
    grown = std::make_shared<const Dataset>(std::move(mapped_ds));
  } else {
    auto copy = std::make_shared<Dataset>(*base);  // copy-on-append
    for (const auto& row : rows) copy->AppendRowUnchecked(row);
    grown = std::move(copy);
  }

  // Re-derive every view: tail labels from the view's own fitted model
  // (pure per-row assignment — identical to what a cold AssignAll over the
  // grown dataset would produce for those rows), stats by exact delta.
  std::vector<std::shared_ptr<const ClusteringView>> new_views;
  new_views.reserve(views.size());
  for (const auto& view : views) {
    std::vector<ClusterId> tail_labels = view->model->AssignAll(tail);
    DPX_ASSIGN_OR_RETURN(
        StatsCache stats,
        StatsCache::BuildAppended(*view->stats, tail, tail_labels,
                                  num_threads));
    auto next = std::make_shared<ClusteringView>(*view);
    next->labels.insert(next->labels.end(), tail_labels.begin(),
                        tail_labels.end());
    next->stats = std::make_shared<const StatsCache>(std::move(stats));
    new_views.push_back(std::move(next));
  }

  AppendResult result;
  result.num_rows = grown->num_rows();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dataset_ = std::move(grown);
    for (auto& view : new_views) clusterings_[view->id] = std::move(view);
    result.epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  return result;
}

StatusOr<std::shared_ptr<const ClusteringView>> DatasetEntry::PutClustering(
    std::shared_ptr<const ClusteringView> view) {
  if (view == nullptr || view->id.empty()) {
    return Status::InvalidArgument("clustering view needs a non-empty id");
  }
  // append_mutex_ first (same order as AppendRows): publishing a view must
  // not interleave with an append, or the view's labels could describe a
  // row count the dataset no longer has.
  std::lock_guard<std::mutex> append_lock(append_mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (view->labels.size() != dataset_->num_rows()) {
    return Status::FailedPrecondition(
        "clustering '" + view->id + "' labels " +
        std::to_string(view->labels.size()) + " rows but dataset '" + name_ +
        "' now has " + std::to_string(dataset_->num_rows()) +
        " (rows were appended during clustering; retry)");
  }
  auto it = clusterings_.find(view->id);
  if (it != clusterings_.end()) {
    if (it->second->fingerprint == view->fingerprint) return it->second;
    return Status::FailedPrecondition(
        "clustering '" + view->id + "' of dataset '" + name_ +
        "' already exists with a different configuration (" +
        it->second->fingerprint + " vs " + view->fingerprint + ")");
  }
  clusterings_.emplace(view->id, view);
  return view;
}

StatusOr<std::shared_ptr<const ClusteringView>> DatasetEntry::GetClustering(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = clusterings_.find(id);
  if (it == clusterings_.end()) {
    return Status::NotFound("no clustering '" + id + "' on dataset '" +
                            name_ + "'");
  }
  return it->second;
}

std::vector<std::string> DatasetEntry::ClusteringIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(clusterings_.size());
  for (const auto& [id, view] : clusterings_) ids.push_back(id);
  return ids;
}

std::vector<std::shared_ptr<const ClusteringView>>
DatasetEntry::Clusterings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const ClusteringView>> views;
  views.reserve(clusterings_.size());
  for (const auto& [id, view] : clusterings_) views.push_back(view);
  return views;
}

void DatasetEntry::SnapshotState(
    std::shared_ptr<const Dataset>* dataset,
    std::vector<std::shared_ptr<const ClusteringView>>* views,
    uint64_t* epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dataset != nullptr) *dataset = dataset_;
  if (views != nullptr) {
    views->clear();
    views->reserve(clusterings_.size());
    for (const auto& [id, view] : clusterings_) views->push_back(view);
  }
  // The epoch bump happens under mutex_ together with the dataset swap, so
  // this triple is one consistent generation.
  if (epoch != nullptr) *epoch = epoch_.load(std::memory_order_acquire);
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::Register(
    const std::string& name, const std::string& source, Dataset dataset,
    double cap_epsilon, bool replace) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end() && !replace) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' already registered (pass replace to reload)");
  }
  // Replacing must not reset the cross-session ε cap: unless both sources
  // are known and differ (genuinely new data), the replacement is the same
  // sensitive data, so the accumulated spend carries over and the cap can
  // only be tightened, never raised or removed. An unknown (empty) source
  // is treated as possibly-same — over-charging is the safe direction.
  double effective_cap = cap_epsilon;
  double carried_spent = 0.0;
  if (it != entries_.end()) {
    const DatasetEntry& old = *it->second;
    const bool known_distinct =
        !old.source().empty() && !source.empty() && old.source() != source;
    if (!known_distinct && old.cap() != nullptr) {
      effective_cap = cap_epsilon > 0.0
                          ? std::min(cap_epsilon, old.cap_epsilon())
                          : old.cap_epsilon();
      carried_spent = old.cap()->spent_epsilon();
    }
  }
  auto entry = std::make_shared<DatasetEntry>(name, source,
                                              std::move(dataset),
                                              effective_cap);
  if (carried_spent > 0.0 && entry->cap() != nullptr) {
    const double charge =
        std::min(carried_spent, entry->cap()->total_epsilon());
    const Status carried = entry->cap()->Spend(
        charge, "carried over from replaced registration");
    DPX_CHECK(carried.ok()) << carried;  // charge <= total, cannot refuse
  }
  entries_[name] = entry;
  return entry;
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::RegisterSynthetic(
    const std::string& name, const std::string& generator, size_t rows,
    uint64_t seed, double cap_epsilon, bool replace) {
  synth::SyntheticConfig config;
  if (generator == "diabetes") {
    config = synth::DiabetesLike(rows, seed);
  } else if (generator == "census") {
    config = synth::CensusLike(rows, seed);
  } else if (generator == "stackoverflow") {
    config = synth::StackOverflowLike(rows, seed);
  } else {
    return Status::InvalidArgument(
        "unknown generator '" + generator +
        "' (expected diabetes | census | stackoverflow)");
  }
  DPX_ASSIGN_OR_RETURN(Dataset dataset, synth::Generate(config));
  const std::string source = "synthetic generator=" + generator +
                             " rows=" + std::to_string(rows) +
                             " seed=" + std::to_string(seed);
  return Register(name, source, std::move(dataset), cap_epsilon, replace);
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::RegisterCsv(
    const std::string& name, const std::string& path, double cap_epsilon,
    bool replace, size_t max_bytes) {
  CsvReadOptions options;
  options.max_bytes = max_bytes;
  DPX_ASSIGN_OR_RETURN(Dataset dataset, ReadCsv(path, options));
  return Register(name, "csv path=" + path, std::move(dataset), cap_epsilon,
                  replace);
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::RegisterColumnar(
    const std::string& name, const std::string& path, double cap_epsilon,
    bool replace, bool verify) {
  ColumnarOpenOptions options;
  options.verify_data = verify;
  DPX_ASSIGN_OR_RETURN(std::shared_ptr<const MappedColumnar> mapped,
                       MappedColumnar::Open(path, options));
  DPX_ASSIGN_OR_RETURN(Dataset dataset, Dataset::FromMapped(std::move(mapped)));
  return Register(name, "dpxcol path=" + path, std::move(dataset), cap_epsilon,
                  replace);
}

StatusOr<std::shared_ptr<DatasetEntry>> DatasetRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no dataset '" + name + "' registered");
  }
  return it->second;
}

Status DatasetRegistry::RestoreEntry(std::shared_ptr<DatasetEntry> entry) {
  if (entry == nullptr) {
    return Status::InvalidArgument("cannot restore a null dataset entry");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(entry->name()) != 0) {
    return Status::FailedPrecondition(
        "dataset '" + entry->name() +
        "' already registered; snapshot restore requires an empty registry");
  }
  entries_.emplace(entry->name(), std::move(entry));
  return Status::OK();
}

std::vector<std::string> DatasetRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<std::shared_ptr<DatasetEntry>> DatasetRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<DatasetEntry>> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(entry);
  return entries;
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace dpclustx::service
