#include "service/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <deque>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dpclustx::service {
namespace {

/// epoll user-data tags. 0 = eventfd wake; [1, kFirstConnId) = listener
/// index + 1; >= kFirstConnId = the connection's ConnId.
constexpr uint64_t kWakeTag = 0;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + ::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Canned protocol error sent before closing a connection whose frame
/// exceeded max_frame_bytes. Shaped like ServiceEngine's ErrorResponse so
/// clients need one error decoder; built by hand because the transport
/// layer has no JsonValue dependency.
std::string OversizedFrameError(size_t limit) {
  return std::string(
             "{\"error\":{\"code\":\"InvalidArgument\",\"message\":\"frame "
             "exceeds max_frame_bytes (") +
         std::to_string(limit) + ")\"},\"ok\":false}";
}

/// True when `frame` is an HTTP/1.x GET request line ("GET /path
/// HTTP/1.1", CR already stripped by the framer); extracts the path. The
/// parser is deliberately tiny: scrape endpoints serve GET only, anything
/// else stays a protocol frame.
bool ParseHttpGetLine(const std::string& frame, std::string* path) {
  if (frame.rfind("GET /", 0) != 0) return false;
  const size_t path_begin = 4;
  const size_t path_end = frame.find(' ', path_begin);
  if (path_end == std::string::npos) return false;
  const std::string version = frame.substr(path_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  *path = frame.substr(path_begin, path_end - path_begin);
  return true;
}

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 503: return "Service Unavailable";
    default: return "Not Found";
  }
}

StatusOr<int> ConnectFd(const ListenAddress& addr) {
  if (addr.kind == ListenAddress::Kind::kUnix) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     addr.path);
    }
    ::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const Status s = Errno("connect(" + addr.path + ")");
      ::close(fd);
      return s;
    }
    return fd;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + addr.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const Status s =
        Errno("connect(" + addr.host + ":" + std::to_string(addr.port) + ")");
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

StatusOr<ListenAddress> ParseListenAddress(const std::string& spec) {
  ListenAddress out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = ListenAddress::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("unix: address needs a path: " + spec);
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = ListenAddress::Kind::kTcp;
    std::string rest = spec.substr(4);
    std::string port_text = rest;
    const size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      out.host = rest.substr(0, colon);
      port_text = rest.substr(colon + 1);
      if (out.host.empty()) {
        return Status::InvalidArgument("tcp: address has an empty host: " +
                                       spec);
      }
    }
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("tcp: port must be numeric: " + spec);
    }
    const unsigned long port = std::stoul(port_text);
    if (port > 65535) {
      return Status::InvalidArgument("tcp: port out of range: " + spec);
    }
    out.port = static_cast<uint16_t>(port);
    return out;
  }
  return Status::InvalidArgument(
      "listen address must be unix:/path or tcp:[host:]port, got: " + spec);
}

struct Transport::Conn {
  ConnId id = 0;
  int fd = -1;
  std::string in;  // partial frame carry-over (event-loop thread only)

  // Outbound state, guarded by conns_mutex_.
  std::deque<std::string> out;  // each entry already newline-terminated
  size_t out_bytes = 0;
  size_t front_offset = 0;  // bytes of out.front() already written

  // Event-loop-thread-only interest state.
  bool want_write = false;
  bool reading_suspended = false;
  bool close_after_flush = false;

  // HTTP scrape state (event-loop thread only). A connection whose first
  // frame is a GET request line flips into one-shot HTTP mode: header
  // lines are consumed until the blank terminator, then the response is
  // queued and the connection closes after flushing.
  bool saw_any_frame = false;
  bool http_mode = false;
  std::string http_path;
};

struct Transport::Listener {
  int fd = -1;
  ListenAddress addr;
  uint16_t bound_port = 0;  // actual port (kernel-assigned for tcp:0)
};

Transport::Transport(TransportOptions options) : options_(options) {
  DPX_CHECK(options_.write_soft_limit_bytes <= options_.write_hard_limit_bytes)
      << "write_soft_limit_bytes must not exceed write_hard_limit_bytes";
  auto& reg = obs::MetricsRegistry::Default();
  connections_total_ = reg.RegisterCounter(
      "dpclustx_transport_connections_total",
      "Client connections accepted over the socket transport");
  frames_total_ =
      reg.RegisterCounter("dpclustx_transport_frames_total",
                          "Complete request frames received from clients");
  bytes_read_total_ = reg.RegisterCounter(
      "dpclustx_transport_bytes_read_total", "Bytes read from client sockets");
  bytes_written_total_ =
      reg.RegisterCounter("dpclustx_transport_bytes_written_total",
                          "Bytes written to client sockets");
  oversized_frames_total_ = reg.RegisterCounter(
      "dpclustx_transport_oversized_frames_total",
      "Connections closed for exceeding max_frame_bytes in one frame");
  torn_frames_total_ = reg.RegisterCounter(
      "dpclustx_transport_torn_frames_total",
      "Partial frames discarded at connection EOF");
  reads_suspended_total_ = reg.RegisterCounter(
      "dpclustx_transport_reads_suspended_total",
      "Times a connection's reads were paused for write backpressure");
  dropped_responses_total_ = reg.RegisterCounter(
      "dpclustx_transport_dropped_responses_total",
      "Responses dropped because the client connection was gone");
  http_requests_total_ = reg.RegisterCounter(
      "dpclustx_transport_http_requests_total",
      "HTTP scrape requests (GET /metrics, /healthz, /ready) answered");
  active_connections_ =
      reg.RegisterGauge("dpclustx_transport_active_connections",
                        "Currently connected transport clients");
}

Transport::~Transport() { Stop(); }

Status Transport::Listen(const std::string& spec) {
  DPX_CHECK(!running_) << "Listen must precede Start";
  DPX_ASSIGN_OR_RETURN(ListenAddress addr, ParseListenAddress(spec));
  auto listener = std::make_unique<Listener>();
  listener->addr = addr;

  if (addr.kind == ListenAddress::Kind::kUnix) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     addr.path);
    }
    ::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    listener->fd = fd;
    ::unlink(addr.path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const Status s = Errno("bind(" + addr.path + ")");
      ::close(fd);
      return s;
    }
  } else {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      return Status::InvalidArgument("not a numeric IPv4 address: " +
                                     addr.host);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket(AF_INET)");
    listener->fd = fd;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      const Status s =
          Errno("bind(" + addr.host + ":" + std::to_string(addr.port) + ")");
      ::close(fd);
      return s;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      listener->bound_port = ntohs(bound.sin_port);
    }
  }

  if (::listen(listener->fd, 128) < 0) {
    const Status s = Errno("listen(" + spec + ")");
    ::close(listener->fd);
    return s;
  }
  DPX_RETURN_IF_ERROR(SetNonBlocking(listener->fd));
  listeners_.push_back(std::move(listener));
  return Status::OK();
}

uint16_t Transport::BoundPort(size_t index) const {
  DPX_CHECK(index < listeners_.size()) << "BoundPort index out of range";
  return listeners_[index]->bound_port;
}

void Transport::SetHttpHandler(HttpHandler handler) {
  DPX_CHECK(!running_) << "SetHttpHandler must precede Start";
  http_handler_ = std::move(handler);
}

Status Transport::Start(FrameHandler on_frame) {
  DPX_CHECK(!running_) << "Transport already started";
  DPX_CHECK(!listeners_.empty()) << "Start requires a successful Listen";
  on_frame_ = std::move(on_frame);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const Status s = Errno("eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return s;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  for (size_t i = 0; i < listeners_.size(); ++i) {
    ev.events = EPOLLIN;
    ev.data.u64 = i + 1;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listeners_[i]->fd, &ev) < 0) {
      return Errno("epoll_ctl(listener)");
    }
  }

  running_ = true;
  loop_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void Transport::Stop() {
  if (!running_) return;
  running_ = false;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  loop_.join();

  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [id, conn] : conns_) {
      if (!conn->out.empty()) {
        dropped_responses_total_->Increment(conn->out.size());
      }
      ::close(conn->fd);
    }
    conns_.clear();
    active_connections_->Set(0);
  }
  for (auto& listener : listeners_) {
    ::close(listener->fd);
    if (listener->addr.kind == ListenAddress::Kind::kUnix) {
      ::unlink(listener->addr.path.c_str());
    }
  }
  listeners_.clear();
  ::close(wake_fd_);
  wake_fd_ = -1;
  ::close(epoll_fd_);
  epoll_fd_ = -1;
}

bool Transport::Send(ConnId id, const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      dropped_responses_total_->Increment();
      return false;
    }
    Conn& conn = *it->second;
    conn.out.push_back(line + "\n");
    conn.out_bytes += conn.out.back().size();
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  return true;
}

size_t Transport::QueuedBytes(ConnId id) const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second->out_bytes;
}

size_t Transport::ActiveConnections() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_.size();
}

void Transport::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "[transport] epoll_wait: %s\n", ::strerror(errno));
      break;
    }
    bool woke = false;
    for (int i = 0; i < n && running_; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        woke = true;
        continue;
      }
      if (tag < kFirstConnId) {
        Accept(*listeners_[tag - 1]);
        continue;
      }
      Conn* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        auto it = conns_.find(tag);
        if (it != conns_.end()) conn = it->second.get();
      }
      if (conn == nullptr) continue;  // closed earlier in this batch
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Flush-then-close still applies on HUP only if writable; treat
        // hard errors as gone.
        CloseConn(tag);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(*conn);
      // HandleWritable may close; re-check.
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(*conn);
    }
    if (woke && running_) {
      // A Send() (possibly from a worker thread) queued data on some
      // connection; flush opportunistically and fix epoll interest.
      std::vector<ConnId> pending;
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (auto& [id, conn] : conns_) {
          if (conn->out_bytes > 0 || conn->reading_suspended) {
            pending.push_back(id);
          }
        }
      }
      for (ConnId id : pending) {
        Conn* conn = nullptr;
        {
          std::lock_guard<std::mutex> lock(conns_mutex_);
          auto it = conns_.find(id);
          if (it != conns_.end()) conn = it->second.get();
        }
        if (conn != nullptr) FlushSome(*conn);
      }
    }
  }
}

void Transport::Accept(Listener& listener) {
  while (true) {
    const int fd = ::accept4(listener.fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      std::fprintf(stderr, "[transport] accept: %s\n", ::strerror(errno));
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    if (listener.addr.kind == ListenAddress::Kind::kTcp) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    ConnId id;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      id = next_conn_id_++;
      conn->id = id;
      conns_.emplace(id, std::move(conn));
      active_connections_->Set(static_cast<int64_t>(conns_.size()));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      std::fprintf(stderr, "[transport] epoll_ctl(add): %s\n", ::strerror(errno));
      CloseConn(id);
      continue;
    }
    connections_total_->Increment();
  }
}

void Transport::HandleReadable(Conn& conn) {
  char buf[64 << 10];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_read_total_->Increment(static_cast<uint64_t>(n));
      size_t start = 0;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] != '\n') continue;
        std::string frame = std::move(conn.in);
        conn.in.clear();
        frame.append(buf + start, static_cast<size_t>(i) - start);
        start = static_cast<size_t>(i) + 1;
        if (!frame.empty() && frame.back() == '\r') frame.pop_back();
        if (frame.size() > options_.max_frame_bytes) {
          oversized_frames_total_->Increment();
          std::lock_guard<std::mutex> lock(conns_mutex_);
          conn.out.push_back(OversizedFrameError(options_.max_frame_bytes) +
                             "\n");
          conn.out_bytes += conn.out.back().size();
          conn.close_after_flush = true;
          conn.reading_suspended = true;
          UpdateInterest(conn);
          return;
        }
        if (conn.http_mode) {
          // Request headers are consumed (responding before reading them
          // risks a TCP RST discarding the queued response); the blank
          // terminator line completes the request.
          if (!frame.empty()) continue;
          QueueHttpResponse(conn);
          return;
        }
        if (frame.empty()) continue;  // blank keep-alive lines are legal
        const bool first_frame = !conn.saw_any_frame;
        conn.saw_any_frame = true;
        if (first_frame && ParseHttpGetLine(frame, &conn.http_path)) {
          conn.http_mode = true;
          continue;
        }
        frames_total_->Increment();
        on_frame_(conn.id, std::move(frame));
        // The handler may have queued responses or shed; re-check that the
        // connection still exists (handlers never close, but stay safe).
      }
      conn.in.append(buf + start, static_cast<size_t>(n) - start);
      if (conn.in.size() > options_.max_frame_bytes) {
        oversized_frames_total_->Increment();
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conn.out.push_back(OversizedFrameError(options_.max_frame_bytes) +
                           "\n");
        conn.out_bytes += conn.out.back().size();
        conn.close_after_flush = true;
        conn.reading_suspended = true;
        conn.in.clear();
        UpdateInterest(conn);
        return;
      }
      // Backpressure: a reader slower than its own request stream gets its
      // reads paused until the response queue drains (see FlushSome).
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        if (conn.out_bytes > options_.write_soft_limit_bytes &&
            !conn.reading_suspended) {
          conn.reading_suspended = true;
          reads_suspended_total_->Increment();
          UpdateInterest(conn);
          return;
        }
      }
      if (static_cast<size_t>(n) < sizeof(buf)) {
        // Probable EAGAIN next; flush what the handler queued, then wait.
        break;
      }
      continue;
    }
    if (n == 0) {
      if (!conn.in.empty()) torn_frames_total_->Increment();
      CloseConn(conn.id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn.id);
    return;
  }
  FlushSome(conn);
}

void Transport::QueueHttpResponse(Conn& conn) {
  HttpResponse response;
  if (http_handler_) {
    response = http_handler_(conn.http_path);
  } else {
    response.status = 404;
    response.body = "no scrape handler installed\n";
  }
  http_requests_total_->Increment();
  std::string payload = "HTTP/1.1 " + std::to_string(response.status) + " " +
                        HttpReason(response.status) +
                        "\r\nContent-Type: " + response.content_type +
                        "\r\nContent-Length: " +
                        std::to_string(response.body.size()) +
                        "\r\nConnection: close\r\n\r\n" + response.body;
  std::lock_guard<std::mutex> lock(conns_mutex_);
  conn.out.push_back(std::move(payload));
  conn.out_bytes += conn.out.back().size();
  conn.close_after_flush = true;
  conn.reading_suspended = true;
  UpdateInterest(conn);
}

void Transport::HandleWritable(Conn& conn) { FlushSome(conn); }

void Transport::FlushSome(Conn& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    while (!conn.out.empty()) {
      const std::string& front = conn.out.front();
      const ssize_t n = ::write(conn.fd, front.data() + conn.front_offset,
                                front.size() - conn.front_offset);
      if (n > 0) {
        bytes_written_total_->Increment(static_cast<uint64_t>(n));
        conn.front_offset += static_cast<size_t>(n);
        conn.out_bytes -= static_cast<size_t>(n);
        if (conn.front_offset == front.size()) {
          conn.out.pop_front();
          conn.front_offset = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // EPIPE / reset: peer is gone
      if (!conn.out.empty()) {
        dropped_responses_total_->Increment(conn.out.size());
        conn.out.clear();
        conn.out_bytes = 0;
        conn.front_offset = 0;
      }
      break;
    }
    if (!close_now) {
      if (conn.out.empty() && conn.close_after_flush) {
        close_now = true;
      } else {
        // Resume reading once the backlog has genuinely drained.
        if (conn.reading_suspended && !conn.close_after_flush &&
            conn.out_bytes < options_.write_soft_limit_bytes / 2) {
          conn.reading_suspended = false;
        }
        UpdateInterest(conn);
      }
    }
  }
  if (close_now) CloseConn(conn.id);
}

void Transport::UpdateInterest(Conn& conn) {
  // Caller holds conns_mutex_; epoll_ctl on a live fd is safe regardless.
  const bool want_write = conn.out_bytes > 0;
  uint32_t events = 0;
  if (!conn.reading_suspended) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) < 0) {
    std::fprintf(stderr, "[transport] epoll_ctl(mod): %s\n", ::strerror(errno));
  }
  conn.want_write = want_write;
}

void Transport::CloseConn(ConnId id) {
  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
    active_connections_->Set(static_cast<int64_t>(conns_.size()));
    if (!conn->out.empty()) {
      dropped_responses_total_->Increment(conn->out.size());
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
}

StatusOr<std::unique_ptr<ClientChannel>> ClientChannel::Connect(
    const std::string& spec) {
  DPX_ASSIGN_OR_RETURN(ListenAddress addr, ParseListenAddress(spec));
  DPX_ASSIGN_OR_RETURN(int fd, ConnectFd(addr));
  return std::unique_ptr<ClientChannel>(new ClientChannel(fd));
}

ClientChannel::~ClientChannel() {
  if (fd_ >= 0) ::close(fd_);
}

Status ClientChannel::SendLine(const std::string& line) {
  std::string framed = line + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

StatusOr<std::string> ClientChannel::RecvLine(int timeout_ms) {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, timeout_ms);
      if (r < 0 && errno != EINTR) return Errno("poll");
      if (r == 0) return Status::DeadlineExceeded("RecvLine timed out");
      if (r < 0) continue;  // EINTR
    }
    char buf[16 << 10];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

}  // namespace dpclustx::service
