// Socket transport for the serving front doors (dpclustx_router and
// dpclustx_serve): a Unix-domain-socket / TCP listener behind one epoll
// event loop that accepts many concurrent clients and frames the existing
// newline-delimited JSON protocol, with bounded per-connection buffers and
// explicit backpressure.
//
// Model:
//
//   clients ──connect──▶ Transport (one epoll thread)
//                           │  OnFrame(conn, line)   [event-loop thread]
//                           ▼
//                        front door (router / serve) ──▶ workers / engine
//                           │
//                        Send(conn, line)             [any thread]
//
// Framing: one request per '\n'-terminated line, mirroring the stdin
// protocol byte for byte — the same scripted session works over a pipe,
// a Unix socket, or TCP. A connection whose partial frame exceeds
// max_frame_bytes is answered with a structured error and closed (framing
// cannot be resynchronized after an oversized frame); a partial frame at
// EOF ("torn") is dropped and counted. Both are strictly per-connection:
// other clients never notice.
//
// Backpressure (DESIGN.md §14): every connection has a byte-bounded
// response queue. Above write_soft_limit_bytes the transport stops
// *reading* that connection (EPOLLIN off) until the queue drains below
// half the soft limit — a slow reader throttles itself, not the server.
// The hard limit is the caller's shed line: front doors check
// QueuedBytes() when a frame arrives and answer with ResourceExhausted +
// retry_after_ms instead of doing work whose response would have to queue
// behind an unbounded backlog. Responses already owed are never dropped
// while the connection lives (the queue is unbounded between the caller's
// shed checks — bounded in practice by hard limit + one in-flight
// response per worker).
//
// Threading: OnFrame runs on the event-loop thread (handlers must be
// quick: classify + hand off). Send() is thread-safe and wakes the loop
// through an eventfd; worker completion threads call it directly. Send to
// a connection that has closed returns false and the response is counted
// dropped (dpclustx_transport_dropped_responses_total).
//
// Addresses: "unix:/path/to.sock" (the path is unlinked before bind) and
// "tcp:PORT" / "tcp:HOST:PORT" (numeric host, default 127.0.0.1 — bind a
// public address explicitly when you mean it).
//
// ClientChannel is the matching blocking client (used by dpclustx_cli
// --connect, dpclustx_repl --connect, the load driver, and tests).

#ifndef DPCLUSTX_SERVICE_TRANSPORT_H_
#define DPCLUSTX_SERVICE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dpclustx::obs {
class Counter;
class Gauge;
}  // namespace dpclustx::obs

namespace dpclustx::service {

/// A parsed --listen / --connect address.
struct ListenAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;              // kUnix: filesystem socket path
  std::string host = "127.0.0.1";  // kTcp: numeric IPv4 address
  uint16_t port = 0;             // kTcp
};

/// Parses "unix:/path", "tcp:PORT", or "tcp:HOST:PORT".
StatusOr<ListenAddress> ParseListenAddress(const std::string& spec);

struct TransportOptions {
  /// A single frame (one protocol line, newline excluded) may not exceed
  /// this; matches the engine's max_request_bytes default.
  size_t max_frame_bytes = 1u << 20;
  /// Reading a connection is suspended while its response queue holds more
  /// than this many bytes, and resumed below half of it.
  size_t write_soft_limit_bytes = 256u << 10;
  /// Advisory shed threshold for callers (see QueuedBytes); the transport
  /// itself never drops a queued response.
  size_t write_hard_limit_bytes = 4u << 20;
};

/// Connection identity, unique for the lifetime of a Transport. Front
/// doors may reserve their own out-of-band ids below kFirstConnId (the
/// router uses 0 for the stdin/stdout compatibility client).
using ConnId = uint64_t;
inline constexpr ConnId kFirstConnId = 1u << 10;

/// Body of a scrape-endpoint response (see Transport::SetHttpHandler).
struct HttpResponse {
  int status = 200;  // 200, 404, or 503
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class Transport {
 public:
  /// `on_frame` is invoked on the event-loop thread for every complete
  /// line received (newline stripped, never empty).
  using FrameHandler = std::function<void(ConnId, std::string&&)>;

  /// Invoked on the event-loop thread with the request path of an HTTP
  /// GET received on any listener (see SetHttpHandler). Must be quick —
  /// it blocks the loop, exactly like a frame handler.
  using HttpHandler = std::function<HttpResponse(const std::string& path)>;

  explicit Transport(TransportOptions options = {});
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Binds and listens on `spec` ("unix:/path" / "tcp:PORT"); call before
  /// Start, any number of times (a router can listen on both). For
  /// "tcp:0" the kernel picks a port — read it back via BoundPort().
  Status Listen(const std::string& spec);

  /// Port of the `index`-th successful Listen (0 for unix listeners).
  uint16_t BoundPort(size_t index) const;

  /// Installs the scrape handler; call before Start. A connection whose
  /// FIRST frame is an HTTP/1.x GET request line ("GET /metrics HTTP/1.1")
  /// switches into one-shot HTTP mode: the remaining request headers are
  /// consumed up to the blank terminator line, the handler's response is
  /// written with Connection: close, and the connection closes once it
  /// flushes — so a stock Prometheus scrapes the same --listen address the
  /// line protocol serves, with no sidecar and no separate port. Without a
  /// handler every path answers 404. JSON-protocol clients are unaffected:
  /// their first frame starts with '{', never "GET ".
  void SetHttpHandler(HttpHandler handler);

  /// Starts the event loop. Listen must have succeeded at least once.
  Status Start(FrameHandler on_frame);

  /// Stops the loop, closes every connection and listener, joins.
  /// Queued responses not yet flushed are dropped (and counted).
  void Stop();

  /// Thread-safe. Queues `line` (+'\n') for `conn` and wakes the loop.
  /// False when the connection is gone — the caller's response is dropped
  /// and counted; nothing else to do.
  bool Send(ConnId conn, const std::string& line);

  /// Thread-safe: bytes currently queued toward `conn` (0 when gone).
  /// Front doors compare this against write_hard_limit_bytes to shed.
  size_t QueuedBytes(ConnId conn) const;

  const TransportOptions& options() const { return options_; }

  /// Live connection count (for status surfaces).
  size_t ActiveConnections() const;

 private:
  struct Conn;
  struct Listener;

  void EventLoop();
  void Accept(Listener& listener);
  void HandleReadable(Conn& conn);
  void QueueHttpResponse(Conn& conn);  // headers consumed; answer + close
  void HandleWritable(Conn& conn);
  void FlushSome(Conn& conn);     // one non-blocking write burst
  void UpdateInterest(Conn& conn);
  void CloseConn(ConnId id);

  TransportOptions options_;
  FrameHandler on_frame_;
  HttpHandler http_handler_;  // set before Start; event-loop thread reads

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::vector<std::unique_ptr<Listener>> listeners_;

  mutable std::mutex conns_mutex_;  // guards conns_ map + per-conn out state
  std::map<ConnId, std::unique_ptr<Conn>> conns_;
  ConnId next_conn_id_ = kFirstConnId;

  std::thread loop_;
  // Written by Start()/Stop() on the owner thread, read by EventLoop();
  // atomic so the loop observes Stop() without taking conns_mutex_.
  std::atomic<bool> running_{false};

  // Metrics (process registry; names in DESIGN.md §14).
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* frames_total_ = nullptr;
  obs::Counter* bytes_read_total_ = nullptr;
  obs::Counter* bytes_written_total_ = nullptr;
  obs::Counter* oversized_frames_total_ = nullptr;
  obs::Counter* torn_frames_total_ = nullptr;
  obs::Counter* reads_suspended_total_ = nullptr;
  obs::Counter* dropped_responses_total_ = nullptr;
  obs::Counter* http_requests_total_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
};

/// Blocking line-protocol client for Transport servers. Not thread-safe;
/// use one channel per client thread.
class ClientChannel {
 public:
  /// Connects to "unix:/path" / "tcp:PORT" / "tcp:HOST:PORT".
  static StatusOr<std::unique_ptr<ClientChannel>> Connect(
      const std::string& spec);

  ~ClientChannel();
  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  /// Writes `line` + '\n'. IoError when the server hung up.
  Status SendLine(const std::string& line);

  /// Next complete line (newline stripped). Blocks up to `timeout_ms`
  /// (-1 = forever): DeadlineExceeded on timeout, IoError on EOF.
  StatusOr<std::string> RecvLine(int timeout_ms = -1);

  /// Raw fd, for callers that multiplex with poll (the load driver).
  int fd() const { return fd_; }

 private:
  explicit ClientChannel(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_TRANSPORT_H_
