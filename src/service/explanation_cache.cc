#include "service/explanation_cache.h"

#include "common/logging.h"

namespace dpclustx::service {

ExplanationCache::ExplanationCache(size_t capacity) : capacity_(capacity) {
  DPX_CHECK_GT(capacity, 0u) << "cache capacity must be >= 1";
}

std::shared_ptr<const std::string> ExplanationCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void ExplanationCache::Put(const std::string& key, std::string payload) {
  auto shared = std::make_shared<const std::string>(std::move(payload));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->payload = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(shared)});
  index_.emplace(key, lru_.begin());
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::vector<std::pair<std::string, std::string>> ExplanationCache::Entries()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    entries.emplace_back(it->key, *it->payload);
  }
  return entries;
}

uint64_t ExplanationCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t ExplanationCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t ExplanationCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

size_t ExplanationCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace dpclustx::service
