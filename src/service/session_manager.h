// Multi-tenant session management with enforced budget ledgers.
//
// Every analyst (tenant) works through a ServiceSession: a per-session
// PrivacyBudget ledger bound to one registered dataset. All ε spending goes
// through ServiceSession::Spend, which is an atomic dual check-and-charge —
// the charge lands on the session ledger AND the dataset's global
// cross-session cap (when configured), or on neither. The enforcement
// invariants:
//
//   1. A session can never spend more than its own total ε.
//   2. All sessions together can never spend more than the dataset cap.
//   3. A refused charge changes no state anywhere (no partial charges), and
//      no noise is drawn for refused requests.
//
// Atomicity without cross-accountant refunds: a per-session lock serializes
// this session's spends, so the session-ledger pre-check (CanSpend) cannot
// be invalidated before the final charge; the shared cap is charged in
// between by its own internal atomic check-and-charge. A cap refusal
// therefore happens before the session ledger is touched.

#ifndef DPCLUSTX_SERVICE_SESSION_MANAGER_H_
#define DPCLUSTX_SERVICE_SESSION_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dp/privacy_budget.h"
#include "obs/audit_log.h"
#include "service/dataset_registry.h"

namespace dpclustx::service {

class ServiceSession {
 public:
  /// Requires total_epsilon > 0 and a non-null dataset entry.
  ServiceSession(std::string id, std::shared_ptr<DatasetEntry> dataset,
                 double total_epsilon);

  const std::string& id() const { return id_; }
  const std::shared_ptr<DatasetEntry>& dataset() const { return dataset_; }

  /// The session's own ledger (thread-safe). Read-only uses (reports,
  /// remaining_epsilon) are fine; charge exclusively through Spend so the
  /// dataset cap stays in sync.
  const PrivacyBudget& budget() const { return budget_; }

  /// Atomic dual check-and-charge (see file comment). OutOfBudget names
  /// which limit refused — the session ledger or the dataset cap.
  Status Spend(double epsilon, const std::string& label);

  /// Audit sink for every charge/denial this session processes. Recorded
  /// while spend_mutex_ is held, so the log observes this session's charges
  /// in ledger order and its per-tenant ε totals accumulate in exactly the
  /// same floating-point order as the ledger's own sum (the cross-check in
  /// tests is an equality, not a tolerance). The log must outlive every
  /// Spend call; nullptr disables auditing.
  void set_audit_log(obs::AuditLog* log) { audit_log_ = log; }

  /// Snapshot-consistency gate (see SessionManager::spend_gate). Spend
  /// holds it shared for the whole ledger+cap+audit transaction; the
  /// snapshot harvester holds it exclusive, so a snapshot never observes a
  /// charge on one ledger but not the other. nullptr disables (tests that
  /// drive a bare session).
  void set_spend_gate(std::shared_mutex* gate) { spend_gate_ = gate; }

  /// Re-applies one saved ledger entry to the session ledger ONLY — no
  /// dataset-cap charge (the cap's own saved ledger already holds it) and
  /// no audit record (the charge is already journaled/snapshotted). Entries
  /// replayed in saved order rebuild the spent total through the same
  /// floating-point additions, so the result is bit-for-bit the pre-crash
  /// ledger. OutOfBudget here means the snapshot is inconsistent.
  Status RestoreCharge(double epsilon, const std::string& label);

 private:
  const std::string id_;
  const std::shared_ptr<DatasetEntry> dataset_;
  std::mutex spend_mutex_;  // serializes this session's dual charges
  PrivacyBudget budget_;
  obs::AuditLog* audit_log_ = nullptr;
  std::shared_mutex* spend_gate_ = nullptr;
};

class SessionManager {
 public:
  /// Creates a session with a fresh ledger of `total_epsilon`. A taken id is
  /// FailedPrecondition (budgets are immutable; closing and reopening a
  /// session id does not reset the dataset cap).
  StatusOr<std::shared_ptr<ServiceSession>> Create(
      const std::string& id, std::shared_ptr<DatasetEntry> dataset,
      double total_epsilon);

  StatusOr<std::shared_ptr<ServiceSession>> Get(const std::string& id) const;

  /// Removes the session. Spending already charged to the dataset cap stays
  /// charged — closing a session never returns ε to the shared pool.
  Status Close(const std::string& id);

  std::vector<std::string> Ids() const;
  /// Every open session, in id order (snapshot harvest).
  std::vector<std::shared_ptr<ServiceSession>> Sessions() const;
  size_t size() const;

  /// Audit sink handed to every session created afterwards (existing
  /// sessions are untouched). Must outlive the sessions; typically set once
  /// right after construction, before any Create.
  void set_audit_log(obs::AuditLog* log);

  /// The spend gate every created session shares. A snapshot harvester
  /// takes it exclusively to freeze all ledgers, caps, and the audit log in
  /// one coherent instant (each Spend holds it shared across its whole
  /// dual-charge + audit transaction); normal serving takes it shared, so
  /// concurrent spends are unaffected.
  std::shared_mutex& spend_gate() { return spend_gate_; }

 private:
  mutable std::mutex mutex_;
  mutable std::shared_mutex spend_gate_;
  std::map<std::string, std::shared_ptr<ServiceSession>> sessions_;
  obs::AuditLog* audit_log_ = nullptr;  // guarded by mutex_
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_SESSION_MANAGER_H_
