// Concurrent explanation-service engine: the one code path behind the REPL,
// the stdin/stdout server (tools/dpclustx_serve), and the throughput bench.
//
// Requests and responses are single JSON objects (one per line on the wire).
// Every request carries an "op" and an optional "id" that is echoed back so
// callers can correlate out-of-order responses. Responses always carry
// "ok"; failures add {"error": {"code", "message"}} and never crash the
// engine or leak exact counts.
//
// Ops (fields beyond op/id):
//   ping
//   load_dataset   name, source ("synthetic"|"csv"|"dpxcol"), generator|path,
//                  [rows], [seed], [cap_epsilon] (<=0/absent = uncapped),
//                  [replace], [verify] (dpxcol: force the O(data) integrity
//                                       pass; the default open is O(header))
//   append_rows    dataset, rows (array of rows; each row an array of cells,
//                  one per schema attribute — a value label string or a
//                  numeric code). Extends the dataset in place (mapped
//                  datasets extend their DPXCOL file durably), delta-updates
//                  every clustering view's StatsCache exactly, and bumps the
//                  dataset epoch so cached releases for older generations
//                  stop matching. Refused while any clustering view lacks a
//                  fitted model (snapshot-restored views: re-run cluster
//                  first).
//   schema         dataset                     (data-independent, free)
//   cluster        dataset, clustering, method, k, [seed],
//                  [epsilon], [session]        (dp-k-means charges the
//                                               session; other methods are
//                                               free: their output is only
//                                               ever used inside the DP
//                                               pipeline)
//   create_session session, dataset, epsilon
//   close_session  session
//   budget         session                     (ledger report)
//   explain        session, clustering, [epsilon] | [epsilon_cand_set,
//                  epsilon_top_comb, epsilon_hist], [num_candidates],
//                  [threads]
//   hist           session, clustering, attribute, [epsilon]  (cached like
//                                               explain: an identical repeat
//                                               re-serves the paid-for bytes
//                                               for zero ε)
//   size           session, clustering, cluster, [epsilon]
//   stats          (cache / pool / registry / per-op latency+error counters
//                   / build info)
//   metrics        [format: "json"|"prometheus"|"both"]  (registry dump)
//   trace          [limit]    (recent request span trees, newest last)
//   audit          [limit]    (privacy-budget audit log tail + totals)
//   save_snapshot  path       (durable state snapshot; DESIGN.md §11)
//   load_snapshot  path, [journal]   (crash recovery into an empty engine)
//
// Observability (see DESIGN.md §10): every request updates pre-registered
// instruments in a MetricsRegistry (no locks on the hot path). A request
// carrying "trace": true — or every request when
// ServiceEngineOptions::trace_all is set — is traced: the engine activates
// a per-request span tree, handlers and pipeline stages mark DPX_SPAN
// scopes into it, the finished tree is attached to the response as "trace"
// (only for per-request opt-in) and retained in a bounded ring served by
// the `trace` op. Every ε charge/denial is appended to an AuditLog whose
// per-tenant totals match the session ledgers exactly. The stats/metrics/
// trace/audit ops are operator-facing: they expose op names, timings, ε
// totals and tenant/session ids — never data values, labels, or
// per-record information.
//
// Failure semantics (see DESIGN.md §7): anything a request can cause —
// malformed JSON, bad parameters, budget refusal, deadlines — comes back as
// a structured error response; std::abort is reserved for internal
// invariant violations. Every op accepts an optional "deadline_ms": the
// request is cooperatively cancelled (DeadlineExceeded) once that many
// milliseconds have elapsed since it entered the engine — for HandleAsync
// that clock starts at enqueue, so time spent waiting in the queue counts.
// Expiry is checked before any ε is charged; a checkpoint that fires after
// the charge does not refund it (the ledger may overstate, never
// understate, released ε). When the bounded queue is full, HandleAsync
// sheds the request and RejectionResponse carries a retry_after_ms hint.
//
// Privacy invariants enforced at this boundary:
//   - Exact counts (StatsCache, cluster sizes, raw histograms) never appear
//     in any response; only DP mechanism outputs and data-independent
//     metadata (schemas, domains) do.
//   - Noise seeds for every release (explain/hist/size) are drawn
//     server-side from a cryptographically random source. A client-supplied
//     "seed" field on these ops is rejected: mechanism noise is
//     data-independent, so a caller who chose (or could predict) the seed
//     could recompute the noise and subtract it from the response,
//     recovering the exact counts. (Test binaries may re-enable pinned
//     seeds via ServiceEngineOptions::insecure_deterministic_noise.)
//   - Every ε charge goes through ServiceSession::Spend (session ledger +
//     dataset cap, atomically) BEFORE noise is drawn; refused requests
//     return OutOfBudget and release nothing.
//   - Cache hits re-serve an already-paid-for release byte-identically and
//     charge zero additional ε (post-processing). Concurrent identical
//     explain requests are deduplicated in flight, so exactly one of them
//     charges ε and the rest wait for its cached release.

#ifndef DPCLUSTX_SERVICE_SERVICE_ENGINE_H_
#define DPCLUSTX_SERVICE_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "service/dataset_registry.h"
#include "service/explanation_cache.h"
#include "service/session_manager.h"
#include "snapshot/audit_journal.h"
#include "snapshot/snapshot.h"

namespace dpclustx::service {

/// One interception site on the request path, handed to the test-only fault
/// injector. `point` is "<op>:start" (before the handler runs), "<op>:finish"
/// (after a successful handler; `body` is the mutable response body, so a
/// test can force a NaN into it), or "explain:compute" (inside OpExplain,
/// after the ε charge and before the pipeline runs; a hook that sleeps past
/// the deadline here exercises post-spend cancellation). `request` is the
/// parsed request, letting a hook target one tenant and wave the rest
/// through. `body` is null except at ":finish".
struct FaultPoint {
  std::string point;
  const JsonValue* request = nullptr;
  JsonValue* body = nullptr;
};

/// Returns OK to let the request proceed; any error Status is propagated as
/// that request's failure (the engine treats it exactly like a handler
/// error). TEST ONLY — never install one in a deployment.
using FaultInjector = std::function<Status(const FaultPoint&)>;

struct ServiceEngineOptions {
  /// Worker threads for HandleAsync.
  size_t num_threads = 4;
  /// Pending-request bound; submissions beyond it are rejected
  /// (backpressure).
  size_t queue_capacity = 256;
  /// Explanation-cache entries.
  size_t cache_capacity = 1024;
  /// TEST/DEBUG ONLY. When true, server-drawn noise seeds derive
  /// deterministically from `noise_seed`, and requests may pin a "seed"
  /// field on the noisy ops (explain/hist/size). NEVER enable this in a
  /// deployment: a client who knows the seed can subtract the mechanism
  /// noise from the response and recover exact counts.
  bool insecure_deterministic_noise = false;
  /// Base for deterministic server-drawn seeds. Only consulted when
  /// `insecure_deterministic_noise` is set; otherwise seeds come from
  /// std::random_device.
  uint64_t noise_seed = 0x5eed5eedULL;
  /// Deadline applied to every request that does not carry its own
  /// "deadline_ms" field. 0 = no default deadline.
  int64_t default_deadline_ms = 0;
  /// Hint returned in shed-request errors: how long (ms) the client should
  /// back off before retrying.
  int64_t retry_after_ms = 50;
  /// Requests larger than this many bytes are rejected before parsing (a
  /// hostile payload must not cost a parse proportional to its size).
  size_t max_request_bytes = 1u << 20;
  /// CSV files larger than this many bytes are refused by load_dataset
  /// (source "csv") before any row is parsed — the same gate discipline as
  /// max_request_bytes, for the file a request points at rather than the
  /// request itself. 0 = unlimited. Full-scale data belongs in DPXCOL
  /// (tools/dpclustx_convert), which opens in O(header) regardless of size.
  size_t max_csv_bytes = 0;
  /// TEST ONLY fault-injection hook; see FaultPoint. Leave empty in any
  /// deployment.
  FaultInjector fault_injector;
  /// Registry the engine registers its instruments in. nullptr = an
  /// engine-private registry (isolated, the default for tests). Deployments
  /// that want one scrape endpoint pass &obs::MetricsRegistry::Default().
  /// An injected registry must outlive the engine; the engine removes its
  /// callback gauges on destruction.
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// When false, per-op counters/latency histograms are not updated (the
  /// `stats` op then reports no per-op data). Exists so the throughput
  /// bench can measure instrumentation overhead; leave true in deployments.
  bool record_metrics = true;
  /// Trace every request as if it carried "trace": true. Traces land in
  /// the trace ring (responses are not inflated).
  bool trace_all = false;
  /// Completed request traces retained for the `trace` op (drop-oldest).
  size_t trace_ring_capacity = 64;
  /// Audit-log tail records retained (totals stay exact regardless).
  size_t audit_capacity = 4096;
  /// Read-only replica mode: every op that would charge ε or mutate state
  /// (load_dataset, append_rows, cluster, create_session, close_session,
  /// size, save_snapshot, and cache *misses* on explain/hist) is refused with
  /// FailedPrecondition. Cache hits still serve — a hit is free
  /// post-processing of an already-paid-for release — so a replica restored
  /// from the primary's snapshot can absorb repeat-read traffic. The router
  /// falls back to the primary on the refusals.
  bool read_only = false;
};

class ServiceEngine {
 public:
  explicit ServiceEngine(const ServiceEngineOptions& options = {});
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Serves one request synchronously. Never throws; malformed input yields
  /// an error response.
  std::string Handle(const std::string& request_json);

  /// Queues the request on the worker pool; `done` runs on a worker thread
  /// with the response. Returns ResourceExhausted (without invoking `done`)
  /// when the queue is full — callers decide whether to retry or reply busy
  /// — and FailedPrecondition after Shutdown.
  Status HandleAsync(std::string request_json,
                     std::function<void(std::string)> done);

  /// Builds the busy/shutdown error response for a request HandleAsync
  /// rejected with `reason` (echoes the request's id when parseable). Shed
  /// requests (ResourceExhausted) carry a "retry_after_ms" back-off hint.
  static std::string RejectionResponse(const std::string& request_json,
                                       const Status& reason,
                                       int64_t retry_after_ms = 50);

  /// Drains queued requests and stops the workers.
  void Shutdown();

  DatasetRegistry& registry() { return registry_; }
  SessionManager& sessions() { return sessions_; }
  const ExplanationCache& cache() const { return cache_; }
  ThreadPool& pool() { return pool_; }
  /// The registry this engine's instruments live in (the injected one, or
  /// the engine-private default).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::AuditLog& audit_log() const { return audit_; }

  // ---- durability (src/snapshot; DESIGN.md §11) ---------------------------

  /// Opens the JSONL audit journal at `path` (append, created if absent)
  /// and hooks it into the audit log: from here on every ε charge/denial is
  /// written and flushed to disk before its response is built. Call once,
  /// after any RestoreFromFiles and before serving.
  Status EnableAuditJournal(const std::string& path);

  /// Saves the full hot state (datasets, session ledgers, release cache,
  /// audit cursor + totals + tail) to `path` atomically. Takes the session
  /// managers' spend gate exclusively, so the saved ledgers, caps, audit
  /// totals, and cursor are one coherent instant — a charge is either
  /// entirely inside the snapshot or entirely after its cursor.
  /// FailedPrecondition when a session is bound to a replaced (detached)
  /// dataset entry: its cap accounting lives on an entry the snapshot
  /// cannot name, and a wrong restore is worse than a refused save.
  Status SaveSnapshotToFile(const std::string& path);

  /// What RestoreFromFiles rebuilt and replayed.
  struct RestoreReport {
    uint32_t format_version = 0;
    size_t datasets = 0;
    size_t sessions = 0;
    size_t cache_entries = 0;
    /// Journal records applied strictly after the snapshot cursor.
    uint64_t replayed_records = 0;
    /// Tenants with post-snapshot journaled charges whose sessions did not
    /// exist at snapshot time: their dataset-cap charges were replayed (the
    /// cap never understates), but their session ledgers are gone — those
    /// analysts must open new sessions.
    std::vector<std::string> unrecovered_sessions;
  };

  /// Crash recovery: loads the snapshot at `snapshot_path`, rebuilds every
  /// dataset (pinned uids), session ledger (bit-for-bit), the release
  /// cache, and the audit log, then — when `journal_path` is non-empty and
  /// exists — replays journal records with seq >= the snapshot's audit
  /// cursor, in order, charging each granted record to its session ledger
  /// and dataset cap exactly once. Refuses (no partial restore of ledgers)
  /// when: the engine is not empty; the snapshot is corrupt, truncated, or
  /// a newer format; the journal has a gap at or after the cursor (records
  /// were dropped or the file was truncated — rebuilt ledgers would be
  /// wrong); or a post-replay ledger/audit equality check fails. A missing
  /// snapshot with a non-empty journal is also refused: session budgets and
  /// dataset contents are not journaled, so snapshot-less recovery cannot
  /// rebuild correct ledgers.
  StatusOr<RestoreReport> RestoreFromFiles(const std::string& snapshot_path,
                                           const std::string& journal_path);

 private:
  /// Handle with an explicit arrival time — the deadline anchor. Handle
  /// passes now(); HandleAsync passes its enqueue time so queue wait counts.
  std::string HandleAt(const std::string& request_json,
                       Deadline::Clock::time_point start);
  JsonValue Dispatch(const JsonValue& request,
                     Deadline::Clock::time_point start);
  /// Resolves the request deadline, runs the ":start" fault point, routes to
  /// the op handler, runs ":finish"; Dispatch wraps the result (non-finite
  /// gate, metrics, error envelope).
  StatusOr<JsonValue> DispatchOp(const std::string& op,
                                 const JsonValue& request,
                                 Deadline::Clock::time_point start);
  /// Runs the configured fault injector at `point` (no-op when absent).
  Status InjectFault(const std::string& point, const JsonValue& request,
                     JsonValue* body);
  // Per-op handlers; return the response body (merged with ok/id by
  // Dispatch) or a Status that Dispatch converts to an error response.
  StatusOr<JsonValue> OpLoadDataset(const JsonValue& request);
  StatusOr<JsonValue> OpAppendRows(const JsonValue& request);
  StatusOr<JsonValue> OpSchema(const JsonValue& request);
  StatusOr<JsonValue> OpCluster(const JsonValue& request);
  StatusOr<JsonValue> OpCreateSession(const JsonValue& request);
  StatusOr<JsonValue> OpCloseSession(const JsonValue& request);
  StatusOr<JsonValue> OpBudget(const JsonValue& request);
  StatusOr<JsonValue> OpExplain(const JsonValue& request,
                                const Deadline& deadline);
  StatusOr<JsonValue> OpHist(const JsonValue& request);
  StatusOr<JsonValue> OpSize(const JsonValue& request);
  StatusOr<JsonValue> OpStats(const JsonValue& request);
  StatusOr<JsonValue> OpMetricsDump(const JsonValue& request);
  StatusOr<JsonValue> OpTrace(const JsonValue& request);
  StatusOr<JsonValue> OpAudit(const JsonValue& request);
  StatusOr<JsonValue> OpSaveSnapshot(const JsonValue& request);
  StatusOr<JsonValue> OpLoadSnapshot(const JsonValue& request);

  /// FailedPrecondition naming `what` when this worker is read-only.
  Status RefuseIfReadOnly(const char* what) const;
  /// Harvests the full hot state. Caller must hold the spend gate
  /// exclusively (SaveSnapshotToFile does).
  StatusOr<snapshot::ServiceSnapshot> HarvestSnapshot();
  /// Applies a decoded snapshot to this (empty) engine.
  Status ApplySnapshot(const snapshot::ServiceSnapshot& state,
                       RestoreReport* report);
  /// Replays journal records with seq >= `cursor` (see RestoreFromFiles).
  Status ReplayJournal(const std::string& journal_path, uint64_t cursor,
                       RestoreReport* report);

  uint64_t NextNoiseSeed();

  /// The noise seed a noisy op must use: server-drawn (NextNoiseSeed)
  /// normally; a request-pinned "seed" only in the test-only
  /// insecure_deterministic_noise configuration, and InvalidArgument when a
  /// client supplies one otherwise.
  StatusOr<uint64_t> RequestNoiseSeed(const JsonValue& request);

  /// Refcounted per-cache-key lock that serializes concurrent identical
  /// explain computations: the first holder spends ε and computes, waiters
  /// then find the release in the cache (never a second charge). Slots are
  /// created on demand and removed when the last holder releases.
  struct InflightSlot {
    std::mutex mutex;
    size_t refs = 0;  // guarded by inflight_mutex_
  };
  std::shared_ptr<InflightSlot> AcquireInflight(const std::string& key);
  void ReleaseInflight(const std::string& key);

  /// Pre-registered instrument handles for one op. Built once at engine
  /// construction for the fixed op names only (client-invented op strings
  /// are never recorded: a hostile stream of distinct names must not grow
  /// the registry), then read-only — RecordOp touches no lock.
  struct OpMetrics {
    obs::Counter* count = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::LatencyHistogram* latency = nullptr;
  };
  void RecordOp(const std::string& op, Deadline::Clock::time_point began,
                const Status& outcome);
  /// Registers the per-op handles and callback gauges (cache, pools,
  /// registry sizes, audit totals) in *metrics_. Called from the ctor.
  void RegisterMetrics();
  /// Appends a finished request trace to the bounded ring, counting the
  /// entry it evicts (dpclustx_trace_dropped_total). `trace_id` is the
  /// propagated cross-process id ("" for locally initiated traces).
  void PushTrace(const std::string& op, const std::string& trace_id,
                 JsonValue trace_json);

  const ServiceEngineOptions options_;
  DatasetRegistry registry_;
  ExplanationCache cache_;
  obs::AuditLog audit_;
  snapshot::AuditJournal journal_;  // sink of audit_ once enabled
  obs::MetricsRegistry owned_metrics_;  // used unless options injects one
  obs::MetricsRegistry* const metrics_;
  SessionManager sessions_;  // after audit_: sessions hold a pointer to it
  std::map<std::string, OpMetrics> op_metrics_;  // immutable after ctor
  obs::Counter* shed_ = nullptr;     // requests rejected by the full queue
  obs::Counter* traced_ = nullptr;   // requests that ran with tracing on
  obs::Counter* snapshot_saves_ = nullptr;
  obs::Counter* snapshot_restores_ = nullptr;
  obs::Counter* journal_records_ = nullptr;   // records appended to the WAL
  obs::Counter* journal_failures_ = nullptr;  // journal writes that failed
  obs::Counter* journal_replayed_ = nullptr;  // records applied by recovery
  std::vector<uint64_t> callback_ids_;  // removed from *metrics_ in dtor
  std::atomic<uint64_t> noise_sequence_{0};
  std::mutex trace_mutex_;
  std::deque<JsonValue> trace_ring_;  // guarded by trace_mutex_
  /// Ring entries evicted by capacity — atomic so the exposition-time
  /// callback gauge reads it without taking trace_mutex_.
  std::atomic<uint64_t> trace_dropped_{0};
  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<InflightSlot>>
      inflight_;         // guarded by inflight_mutex_
  ThreadPool pool_;  // last member: workers must die before the state above
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_SERVICE_ENGINE_H_
