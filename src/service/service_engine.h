// Concurrent explanation-service engine: the one code path behind the REPL,
// the stdin/stdout server (tools/dpclustx_serve), and the throughput bench.
//
// Requests and responses are single JSON objects (one per line on the wire).
// Every request carries an "op" and an optional "id" that is echoed back so
// callers can correlate out-of-order responses. Responses always carry
// "ok"; failures add {"error": {"code", "message"}} and never crash the
// engine or leak exact counts.
//
// Ops (fields beyond op/id):
//   ping
//   load_dataset   name, source ("synthetic"|"csv"), generator|path,
//                  [rows], [seed], [cap_epsilon] (<=0/absent = uncapped),
//                  [replace]
//   schema         dataset                     (data-independent, free)
//   cluster        dataset, clustering, method, k, [seed],
//                  [epsilon], [session]        (dp-k-means charges the
//                                               session; other methods are
//                                               free: their output is only
//                                               ever used inside the DP
//                                               pipeline)
//   create_session session, dataset, epsilon
//   close_session  session
//   budget         session                     (ledger report)
//   explain        session, clustering, [epsilon] | [epsilon_cand_set,
//                  epsilon_top_comb, epsilon_hist], [num_candidates],
//                  [threads]
//   hist           session, clustering, attribute, [epsilon]
//   size           session, clustering, cluster, [epsilon]
//   stats          (cache / pool / registry counters)
//
// Privacy invariants enforced at this boundary:
//   - Exact counts (StatsCache, cluster sizes, raw histograms) never appear
//     in any response; only DP mechanism outputs and data-independent
//     metadata (schemas, domains) do.
//   - Noise seeds for every release (explain/hist/size) are drawn
//     server-side from a cryptographically random source. A client-supplied
//     "seed" field on these ops is rejected: mechanism noise is
//     data-independent, so a caller who chose (or could predict) the seed
//     could recompute the noise and subtract it from the response,
//     recovering the exact counts. (Test binaries may re-enable pinned
//     seeds via ServiceEngineOptions::insecure_deterministic_noise.)
//   - Every ε charge goes through ServiceSession::Spend (session ledger +
//     dataset cap, atomically) BEFORE noise is drawn; refused requests
//     return OutOfBudget and release nothing.
//   - Cache hits re-serve an already-paid-for release byte-identically and
//     charge zero additional ε (post-processing). Concurrent identical
//     explain requests are deduplicated in flight, so exactly one of them
//     charges ε and the rest wait for its cached release.

#ifndef DPCLUSTX_SERVICE_SERVICE_ENGINE_H_
#define DPCLUSTX_SERVICE_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "service/dataset_registry.h"
#include "service/explanation_cache.h"
#include "service/session_manager.h"

namespace dpclustx::service {

struct ServiceEngineOptions {
  /// Worker threads for HandleAsync.
  size_t num_threads = 4;
  /// Pending-request bound; submissions beyond it are rejected
  /// (backpressure).
  size_t queue_capacity = 256;
  /// Explanation-cache entries.
  size_t cache_capacity = 1024;
  /// TEST/DEBUG ONLY. When true, server-drawn noise seeds derive
  /// deterministically from `noise_seed`, and requests may pin a "seed"
  /// field on the noisy ops (explain/hist/size). NEVER enable this in a
  /// deployment: a client who knows the seed can subtract the mechanism
  /// noise from the response and recover exact counts.
  bool insecure_deterministic_noise = false;
  /// Base for deterministic server-drawn seeds. Only consulted when
  /// `insecure_deterministic_noise` is set; otherwise seeds come from
  /// std::random_device.
  uint64_t noise_seed = 0x5eed5eedULL;
};

class ServiceEngine {
 public:
  explicit ServiceEngine(const ServiceEngineOptions& options = {});
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Serves one request synchronously. Never throws; malformed input yields
  /// an error response.
  std::string Handle(const std::string& request_json);

  /// Queues the request on the worker pool; `done` runs on a worker thread
  /// with the response. Returns ResourceExhausted (without invoking `done`)
  /// when the queue is full — callers decide whether to retry or reply busy
  /// — and FailedPrecondition after Shutdown.
  Status HandleAsync(std::string request_json,
                     std::function<void(std::string)> done);

  /// Builds the busy/shutdown error response for a request HandleAsync
  /// rejected with `reason` (echoes the request's id when parseable).
  static std::string RejectionResponse(const std::string& request_json,
                                       const Status& reason);

  /// Drains queued requests and stops the workers.
  void Shutdown();

  DatasetRegistry& registry() { return registry_; }
  SessionManager& sessions() { return sessions_; }
  const ExplanationCache& cache() const { return cache_; }
  ThreadPool& pool() { return pool_; }

 private:
  JsonValue Dispatch(const JsonValue& request);
  // Per-op handlers; return the response body (merged with ok/id by
  // Dispatch) or a Status that Dispatch converts to an error response.
  StatusOr<JsonValue> OpLoadDataset(const JsonValue& request);
  StatusOr<JsonValue> OpSchema(const JsonValue& request);
  StatusOr<JsonValue> OpCluster(const JsonValue& request);
  StatusOr<JsonValue> OpCreateSession(const JsonValue& request);
  StatusOr<JsonValue> OpCloseSession(const JsonValue& request);
  StatusOr<JsonValue> OpBudget(const JsonValue& request);
  StatusOr<JsonValue> OpExplain(const JsonValue& request);
  StatusOr<JsonValue> OpHist(const JsonValue& request);
  StatusOr<JsonValue> OpSize(const JsonValue& request);
  StatusOr<JsonValue> OpStats(const JsonValue& request);

  uint64_t NextNoiseSeed();

  /// The noise seed a noisy op must use: server-drawn (NextNoiseSeed)
  /// normally; a request-pinned "seed" only in the test-only
  /// insecure_deterministic_noise configuration, and InvalidArgument when a
  /// client supplies one otherwise.
  StatusOr<uint64_t> RequestNoiseSeed(const JsonValue& request);

  /// Refcounted per-cache-key lock that serializes concurrent identical
  /// explain computations: the first holder spends ε and computes, waiters
  /// then find the release in the cache (never a second charge). Slots are
  /// created on demand and removed when the last holder releases.
  struct InflightSlot {
    std::mutex mutex;
    size_t refs = 0;  // guarded by inflight_mutex_
  };
  std::shared_ptr<InflightSlot> AcquireInflight(const std::string& key);
  void ReleaseInflight(const std::string& key);

  const ServiceEngineOptions options_;
  DatasetRegistry registry_;
  SessionManager sessions_;
  ExplanationCache cache_;
  std::atomic<uint64_t> noise_sequence_{0};
  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<InflightSlot>>
      inflight_;         // guarded by inflight_mutex_
  ThreadPool pool_;  // last member: workers must die before the state above
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_SERVICE_ENGINE_H_
