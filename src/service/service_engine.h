// Concurrent explanation-service engine: the one code path behind the REPL,
// the stdin/stdout server (tools/dpclustx_serve), and the throughput bench.
//
// Requests and responses are single JSON objects (one per line on the wire).
// Every request carries an "op" and an optional "id" that is echoed back so
// callers can correlate out-of-order responses. Responses always carry
// "ok"; failures add {"error": {"code", "message"}} and never crash the
// engine or leak exact counts.
//
// Ops (fields beyond op/id):
//   ping
//   load_dataset   name, source ("synthetic"|"csv"), generator|path,
//                  [rows], [seed], [cap_epsilon] (<=0/absent = uncapped),
//                  [replace]
//   schema         dataset                     (data-independent, free)
//   cluster        dataset, clustering, method, k, [seed],
//                  [epsilon], [session]        (dp-k-means charges the
//                                               session; other methods are
//                                               free: their output is only
//                                               ever used inside the DP
//                                               pipeline)
//   create_session session, dataset, epsilon
//   close_session  session
//   budget         session                     (ledger report)
//   explain        session, clustering, [epsilon] | [epsilon_cand_set,
//                  epsilon_top_comb, epsilon_hist], [num_candidates],
//                  [seed], [threads]
//   hist           session, clustering, attribute, [epsilon], [seed]
//   size           session, clustering, cluster, [epsilon], [seed]
//   stats          (cache / pool / registry counters)
//
// Privacy invariants enforced at this boundary:
//   - Exact counts (StatsCache, cluster sizes, raw histograms) never appear
//     in any response; only DP mechanism outputs and data-independent
//     metadata (schemas, domains) do.
//   - Every ε charge goes through ServiceSession::Spend (session ledger +
//     dataset cap, atomically) BEFORE noise is drawn; refused requests
//     return OutOfBudget and release nothing.
//   - Cache hits re-serve an already-paid-for release byte-identically and
//     charge zero additional ε (post-processing).

#ifndef DPCLUSTX_SERVICE_SERVICE_ENGINE_H_
#define DPCLUSTX_SERVICE_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "service/dataset_registry.h"
#include "service/explanation_cache.h"
#include "service/session_manager.h"

namespace dpclustx::service {

struct ServiceEngineOptions {
  /// Worker threads for HandleAsync.
  size_t num_threads = 4;
  /// Pending-request bound; submissions beyond it are rejected
  /// (backpressure).
  size_t queue_capacity = 256;
  /// Explanation-cache entries.
  size_t cache_capacity = 1024;
  /// Base seed for server-drawn noise (hist/size queries without an explicit
  /// seed); each draw advances an engine-wide counter.
  uint64_t noise_seed = 0x5eed5eedULL;
};

class ServiceEngine {
 public:
  explicit ServiceEngine(const ServiceEngineOptions& options = {});
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Serves one request synchronously. Never throws; malformed input yields
  /// an error response.
  std::string Handle(const std::string& request_json);

  /// Queues the request on the worker pool; `done` runs on a worker thread
  /// with the response. Returns ResourceExhausted (without invoking `done`)
  /// when the queue is full — callers decide whether to retry or reply busy
  /// — and FailedPrecondition after Shutdown.
  Status HandleAsync(std::string request_json,
                     std::function<void(std::string)> done);

  /// Builds the busy/shutdown error response for a request HandleAsync
  /// rejected with `reason` (echoes the request's id when parseable).
  static std::string RejectionResponse(const std::string& request_json,
                                       const Status& reason);

  /// Drains queued requests and stops the workers.
  void Shutdown();

  DatasetRegistry& registry() { return registry_; }
  SessionManager& sessions() { return sessions_; }
  const ExplanationCache& cache() const { return cache_; }
  ThreadPool& pool() { return pool_; }

 private:
  JsonValue Dispatch(const JsonValue& request);
  // Per-op handlers; return the response body (merged with ok/id by
  // Dispatch) or a Status that Dispatch converts to an error response.
  StatusOr<JsonValue> OpLoadDataset(const JsonValue& request);
  StatusOr<JsonValue> OpSchema(const JsonValue& request);
  StatusOr<JsonValue> OpCluster(const JsonValue& request);
  StatusOr<JsonValue> OpCreateSession(const JsonValue& request);
  StatusOr<JsonValue> OpCloseSession(const JsonValue& request);
  StatusOr<JsonValue> OpBudget(const JsonValue& request);
  StatusOr<JsonValue> OpExplain(const JsonValue& request);
  StatusOr<JsonValue> OpHist(const JsonValue& request);
  StatusOr<JsonValue> OpSize(const JsonValue& request);
  StatusOr<JsonValue> OpStats(const JsonValue& request);

  uint64_t NextNoiseSeed();

  const ServiceEngineOptions options_;
  DatasetRegistry registry_;
  SessionManager sessions_;
  ExplanationCache cache_;
  std::atomic<uint64_t> noise_sequence_{0};
  ThreadPool pool_;  // last member: workers must die before the state above
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_SERVICE_ENGINE_H_
