#include "service/json_relay.h"

namespace dpclustx::service {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
  return i;
}

/// `i` is the opening quote of a JSON string; returns one past the closing
/// quote, or kNpos when the string never closes. Escapes are skipped as
/// two-byte units — enough to never mistake an escaped quote for the
/// terminator (\uXXXX needs no special case: its four hex digits cannot
/// contain a bare quote).
size_t SkipString(const std::string& s, size_t i) {
  ++i;  // opening quote
  while (i < s.size()) {
    const char c = s[i];
    if (c == '\\') {
      i += 2;
      continue;
    }
    if (c == '"') return i + 1;
    ++i;
  }
  return kNpos;
}

/// `i` is the first byte of any JSON value; returns one past its last byte,
/// or kNpos on structural breakage (unbalanced containers, unterminated
/// string). Scalars are consumed loosely (up to the next delimiter): the
/// relay forwards payload bytes verbatim, it does not re-validate grammar
/// the engine's own writer produced.
size_t SkipValue(const std::string& s, size_t i) {
  i = SkipWs(s, i);
  if (i >= s.size()) return kNpos;
  const char c = s[i];
  if (c == '"') return SkipString(s, i);
  if (c == '{' || c == '[') {
    size_t depth = 0;
    while (i < s.size()) {
      const char b = s[i];
      if (b == '"') {
        i = SkipString(s, i);
        if (i == kNpos) return kNpos;
        continue;
      }
      if (b == '{' || b == '[') {
        ++depth;
      } else if (b == '}' || b == ']') {
        if (depth == 0) return kNpos;  // close with no matching open
        if (--depth == 0) return i + 1;
      }
      ++i;
    }
    return kNpos;  // container never closed
  }
  // Number / true / false / null: consume until a structural delimiter.
  const size_t begin = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != ' ' && s[i] != '\t' && s[i] != '\r' && s[i] != '\n') {
    ++i;
  }
  return i == begin ? kNpos : i;
}

}  // namespace

StatusOr<RelayScan> ScanTopLevelId(const std::string& line) {
  size_t i = SkipWs(line, 0);
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("response line is not a JSON object");
  }
  i = SkipWs(line, i + 1);

  RelayScan scan;
  bool found = false;
  size_t prev_comma = kNpos;  // comma before the member being scanned

  while (true) {
    if (i >= line.size()) {
      return Status::InvalidArgument("object never closes");
    }
    if (line[i] == '}') break;
    // One member: "key" : value
    if (line[i] != '"') {
      return Status::InvalidArgument("expected a member key");
    }
    const size_t key_begin = i;
    const size_t key_end = SkipString(line, i);
    if (key_end == kNpos) {
      return Status::InvalidArgument("unterminated key");
    }
    // Raw byte compare: an "id" key spelled with escapes would be missed
    // here, reported NotFound, and resolved by the caller's full-parse
    // fallback — never spliced wrong.
    const bool is_id =
        key_end - key_begin == 4 && line.compare(key_begin, 4, "\"id\"") == 0;
    i = SkipWs(line, key_end);
    if (i >= line.size() || line[i] != ':') {
      return Status::InvalidArgument("expected ':' after key");
    }
    const size_t value_begin = SkipWs(line, i + 1);
    const size_t value_end = SkipValue(line, value_begin);
    if (value_end == kNpos) {
      return Status::InvalidArgument("torn value");
    }
    i = SkipWs(line, value_end);

    if (is_id) {
      if (found) return Status::InvalidArgument("duplicate top-level id");
      if (line[value_begin] != '"') {
        return Status::InvalidArgument("top-level id is not a string");
      }
      for (size_t b = value_begin + 1; b + 1 < value_end; ++b) {
        if (line[b] == '\\') {
          return Status::FailedPrecondition(
              "id value contains escapes; use the full parser");
        }
      }
      scan.id = line.substr(value_begin + 1, value_end - value_begin - 2);
      scan.value_begin = value_begin;
      scan.value_end = value_end;
      if (prev_comma != kNpos) {
        // `,"id":value` — eat the preceding comma.
        scan.erase_begin = prev_comma;
        scan.erase_end = value_end;
      } else if (i < line.size() && line[i] == ',') {
        // First member with a successor: eat the following comma.
        scan.erase_begin = key_begin;
        scan.erase_end = SkipWs(line, i + 1);
      } else {
        // Only member: `{"id":value}` → `{}`.
        scan.erase_begin = key_begin;
        scan.erase_end = value_end;
      }
      found = true;
    }

    if (i < line.size() && line[i] == ',') {
      prev_comma = i;
      i = SkipWs(line, i + 1);
      if (i < line.size() && line[i] == '}') {
        return Status::InvalidArgument("trailing comma");
      }
      continue;
    }
    if (i >= line.size() || line[i] != '}') {
      return Status::InvalidArgument("expected ',' or '}' after value");
    }
    prev_comma = kNpos;
  }

  // Nothing but whitespace may follow the closing brace.
  if (SkipWs(line, i + 1) != line.size()) {
    return Status::InvalidArgument("trailing bytes after object");
  }
  if (!found) return Status::NotFound("no top-level id member");
  return scan;
}

std::string SpliceId(const std::string& line, const RelayScan& scan,
                     const std::string& id_json) {
  std::string out;
  out.reserve(line.size() - (scan.value_end - scan.value_begin) +
              id_json.size());
  out.append(line, 0, scan.value_begin);
  out.append(id_json);
  out.append(line, scan.value_end, line.size() - scan.value_end);
  return out;
}

StatusOr<std::string> SpliceTraceContext(const std::string& line,
                                         const std::string& tc_json) {
  size_t i = SkipWs(line, 0);
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("request line is not a JSON object");
  }
  const size_t insert_at = SkipWs(line, i + 1);

  // Validate the whole object structure (a torn line must fall back to the
  // full parser, never be spliced blind) and check every top-level key
  // against the canonical-order precondition.
  i = insert_at;
  bool empty_object = true;
  bool first_member = true;
  while (true) {
    if (i >= line.size()) {
      return Status::InvalidArgument("object never closes");
    }
    if (line[i] == '}') break;
    if (line[i] != '"') {
      return Status::InvalidArgument("expected a member key");
    }
    empty_object = false;
    const size_t key_begin = i;
    const size_t key_end = SkipString(line, i);
    if (key_end == kNpos) {
      return Status::InvalidArgument("unterminated key");
    }
    // Raw key bytes between the quotes. An escaped key can't be compared
    // byte-wise against "_tc", so refuse and let the caller full-parse.
    const size_t raw_begin = key_begin + 1;
    const size_t raw_len = key_end - key_begin - 2;
    for (size_t b = raw_begin; b < raw_begin + raw_len; ++b) {
      if (line[b] == '\\') {
        return Status::FailedPrecondition(
            "escaped top-level key; use the full parser");
      }
    }
    if (raw_len == 3 && line.compare(raw_begin, 3, "_tc") == 0) {
      return Status::FailedPrecondition(
          "request already carries a _tc member; use the full parser");
    }
    if (first_member) {
      // Dump emits keys sorted, so checking the first key suffices: if it
      // sorts after "_tc" the spliced member lands exactly where a full
      // parse → Set("_tc") → Dump would put it.
      if (line.compare(raw_begin, raw_len, "_tc") < 0) {
        return Status::FailedPrecondition(
            "first key sorts before _tc; use the full parser");
      }
      first_member = false;
    }
    i = SkipWs(line, key_end);
    if (i >= line.size() || line[i] != ':') {
      return Status::InvalidArgument("expected ':' after key");
    }
    const size_t value_end = SkipValue(line, SkipWs(line, i + 1));
    if (value_end == kNpos) {
      return Status::InvalidArgument("torn value");
    }
    i = SkipWs(line, value_end);
    if (i < line.size() && line[i] == ',') {
      i = SkipWs(line, i + 1);
      if (i < line.size() && line[i] == '}') {
        return Status::InvalidArgument("trailing comma");
      }
      continue;
    }
    if (i >= line.size() || line[i] != '}') {
      return Status::InvalidArgument("expected ',' or '}' after value");
    }
  }
  if (SkipWs(line, i + 1) != line.size()) {
    return Status::InvalidArgument("trailing bytes after object");
  }

  std::string out;
  out.reserve(line.size() + tc_json.size() + 7);
  out.append(line, 0, insert_at);
  out.append("\"_tc\":");
  out.append(tc_json);
  if (!empty_object) out.push_back(',');
  out.append(line, insert_at, line.size() - insert_at);
  return out;
}

std::string EraseId(const std::string& line, const RelayScan& scan) {
  std::string out;
  out.reserve(line.size() - (scan.erase_end - scan.erase_begin));
  out.append(line, 0, scan.erase_begin);
  out.append(line, scan.erase_end, line.size() - scan.erase_end);
  return out;
}

}  // namespace dpclustx::service
