#include "service/service_engine.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <random>
#include <shared_mutex>

#include "cluster/agglomerative.h"
#include "cluster/dp_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "common/logging.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/serialization.h"
#include "common/file_util.h"
#include "data/kernels/isa.h"
#include "dp/dp_histogram.h"
#include "dp/mechanisms.h"
#include "obs/build_info.h"
#include "obs/trace.h"
#include "snapshot/snapshot_io.h"

namespace dpclustx::service {

namespace {

JsonValue ErrorResponse(const Status& status, int64_t retry_after_ms = 0) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeName(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  if (retry_after_ms > 0) {
    error.Set("retry_after_ms",
              JsonValue::Number(static_cast<double>(retry_after_ms)));
  }
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", std::move(error));
  return response;
}

/// The complete op vocabulary. Per-op instruments are pre-registered for
/// exactly these names at engine construction, so the set here and the
/// RecordOp fast path stay in lockstep by construction.
constexpr const char* kOps[] = {
    "ping",   "load_dataset",   "append_rows",   "schema",
    "cluster", "budget",        "create_session", "close_session",
    "explain", "hist",          "size",          "stats",
    "metrics", "trace",         "audit",         "save_snapshot",
    "load_snapshot"};

bool IsKnownOp(const std::string& op) {
  for (const char* known : kOps) {
    if (op == known) return true;
  }
  return false;
}

/// Optional-field accessors: absent keys yield the fallback, present keys of
/// the wrong type are InvalidArgument (never a silent default).
StatusOr<double> OptNumber(const JsonValue& request, const std::string& key,
                           double fallback) {
  if (!request.Has(key)) return fallback;
  return request.GetNumber(key);
}

StatusOr<std::string> OptString(const JsonValue& request,
                                const std::string& key,
                                const std::string& fallback) {
  if (!request.Has(key)) return fallback;
  return request.GetString(key);
}

StatusOr<bool> OptBool(const JsonValue& request, const std::string& key,
                       bool fallback) {
  if (!request.Has(key)) return fallback;
  if (request.at(key).type() != JsonValue::Type::kBool) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return request.at(key).AsBool();
}

StatusOr<size_t> OptCount(const JsonValue& request, const std::string& key,
                          size_t fallback) {
  DPX_ASSIGN_OR_RETURN(const double value, OptNumber(request, key,
                                                     static_cast<double>(fallback)));
  if (value < 0.0 || value != static_cast<double>(static_cast<size_t>(value))) {
    return Status::InvalidArgument("field '" + key +
                                   "' must be a non-negative integer");
  }
  return static_cast<size_t>(value);
}

std::string ClusteringFingerprint(const std::string& method, size_t k,
                                  uint64_t seed, double epsilon) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "method=%s k=%zu seed=%" PRIu64 " eps=%.17g",
                method.c_str(), k, seed, epsilon);
  return buf;
}

JsonValue HistogramToJson(const Histogram& histogram, const Attribute& attr) {
  JsonValue bins = JsonValue::Array();
  for (ValueCode code = 0; code < histogram.domain_size(); ++code) {
    JsonValue bin = JsonValue::Object();
    bin.Set("value", JsonValue::String(attr.label(code)));
    bin.Set("count", JsonValue::Number(histogram.bin(code)));
    bins.Append(std::move(bin));
  }
  return bins;
}

}  // namespace

ServiceEngine::ServiceEngine(const ServiceEngineOptions& options)
    : options_(options),
      cache_(options.cache_capacity),
      audit_(options.audit_capacity),
      metrics_(options.metrics_registry != nullptr ? options.metrics_registry
                                                   : &owned_metrics_),
      pool_(ThreadPoolOptions{options.num_threads, options.queue_capacity}) {
  sessions_.set_audit_log(&audit_);
  RegisterMetrics();
}

ServiceEngine::~ServiceEngine() {
  Shutdown();
  // The callback gauges read members of this engine; with an injected
  // registry that outlives us, leaving them installed would dangle.
  for (const uint64_t id : callback_ids_) metrics_->RemoveCallback(id);
}

void ServiceEngine::Shutdown() { pool_.Shutdown(); }

void ServiceEngine::RegisterMetrics() {
  for (const char* op : kOps) {
    const obs::MetricLabels labels = {{"op", op}};
    OpMetrics handles;
    handles.count = metrics_->RegisterCounter(
        "dpclustx_op_requests_total", "Requests handled, by op", labels);
    handles.errors = metrics_->RegisterCounter(
        "dpclustx_op_errors_total", "Requests that returned an error, by op",
        labels);
    handles.deadline_exceeded = metrics_->RegisterCounter(
        "dpclustx_op_deadline_exceeded_total",
        "Requests cancelled at their deadline, by op", labels);
    handles.latency = metrics_->RegisterLatencyHistogram(
        "dpclustx_op_latency_micros", "Request handling latency, by op",
        labels);
    op_metrics_.emplace(op, handles);
  }
  shed_ = metrics_->RegisterCounter(
      "dpclustx_requests_shed_total",
      "Requests rejected because the request queue was full");
  traced_ = metrics_->RegisterCounter(
      "dpclustx_requests_traced_total",
      "Requests that ran with span tracing active");
  snapshot_saves_ = metrics_->RegisterCounter(
      "dpclustx_snapshot_saves_total", "Snapshots saved successfully");
  snapshot_restores_ = metrics_->RegisterCounter(
      "dpclustx_snapshot_restores_total",
      "Successful snapshot (+ journal) restores");
  journal_records_ = metrics_->RegisterCounter(
      "dpclustx_audit_journal_records_total",
      "Audit records durably appended to the journal");
  journal_failures_ = metrics_->RegisterCounter(
      "dpclustx_audit_journal_failures_total",
      "Audit-journal writes that failed (durability hole: charges since the "
      "first failure may be unrecoverable)");
  journal_replayed_ = metrics_->RegisterCounter(
      "dpclustx_audit_journal_replayed_total",
      "Journal records applied by crash recovery");

  const auto gauge = [this](const std::string& name, const std::string& help,
                            std::function<double()> fn) {
    callback_ids_.push_back(
        metrics_->AddCallbackGauge(name, help, {}, std::move(fn)));
  };
  gauge("dpclustx_cache_hits", "Explanation-cache hits",
        [this] { return static_cast<double>(cache_.hits()); });
  gauge("dpclustx_cache_misses", "Explanation-cache misses",
        [this] { return static_cast<double>(cache_.misses()); });
  gauge("dpclustx_cache_evictions", "Explanation-cache LRU evictions",
        [this] { return static_cast<double>(cache_.evictions()); });
  gauge("dpclustx_cache_size", "Explanation-cache entries",
        [this] { return static_cast<double>(cache_.size()); });
  gauge("dpclustx_cache_capacity", "Explanation-cache capacity",
        [this] { return static_cast<double>(cache_.capacity()); });
  gauge("dpclustx_pool_threads", "Request-pool worker threads",
        [this] { return static_cast<double>(pool_.num_threads()); });
  gauge("dpclustx_pool_queue_depth", "Requests waiting in the pool queue",
        [this] { return static_cast<double>(pool_.queue_depth()); });
  gauge("dpclustx_pool_active", "Request-pool workers currently busy",
        [this] { return static_cast<double>(pool_.active_count()); });
  gauge("dpclustx_pool_tasks_completed", "Requests the pool has finished",
        [this] { return static_cast<double>(pool_.tasks_completed()); });
  gauge("dpclustx_compute_pool_width", "Shared compute-pool width",
        [] { return static_cast<double>(ComputePoolWidth()); });
  // Info-style gauge: the value is the live dispatch ordinal
  // (0=generic … 3=avx512); the labels pin the names this process started
  // with, so a scrape records both what the CPU offers and what is in use.
  callback_ids_.push_back(metrics_->AddCallbackGauge(
      "dpclustx_isa_level",
      "Active kernel ISA dispatch level (0=generic, 1=sse2, 2=avx2, "
      "3=avx512)",
      {{"detected", kernels::IsaLevelName(kernels::DetectedIsaLevel())},
       {"active", kernels::IsaLevelName(kernels::ActiveIsaLevel())}},
      [] {
        return static_cast<double>(
            static_cast<int>(kernels::ActiveIsaLevel()));
      }));
  gauge("dpclustx_parallel_for_calls", "ParallelFor invocations",
        [] { return static_cast<double>(ParallelForCalls()); });
  gauge("dpclustx_parallel_for_parallel_calls",
        "ParallelFor invocations that dispatched to the pool",
        [] { return static_cast<double>(ParallelForParallelCalls()); });
  gauge("dpclustx_datasets", "Registered datasets",
        [this] { return static_cast<double>(registry_.Names().size()); });
  gauge("dpclustx_sessions", "Open sessions",
        [this] { return static_cast<double>(sessions_.size()); });
  gauge("dpclustx_audit_records", "Privacy-audit records appended",
        [this] { return static_cast<double>(audit_.next_seq() - 1); });
  // Exported because drops are correctness-relevant for any consumer that
  // replays the in-memory tail: a non-zero value means the retained ring is
  // incomplete (the durable journal, when enabled, never drops).
  gauge("dpclustx_audit_dropped_total",
        "Audit tail records dropped by the bounded in-memory ring",
        [this] { return static_cast<double>(audit_.dropped()); });
  // Same contract as the audit ring: a non-zero value means the `trace`
  // op's retained window is incomplete (traces were evicted unseen).
  gauge("dpclustx_trace_dropped_total",
        "Finished request traces evicted from the bounded trace ring",
        [this] {
          return static_cast<double>(
              trace_dropped_.load(std::memory_order_relaxed));
        });
  gauge("dpclustx_audit_epsilon_charged",
        "Total granted epsilon across all tenants",
        [this] { return audit_.GlobalTotals().epsilon_charged; });
  gauge("dpclustx_audit_epsilon_denied",
        "Total refused epsilon across all tenants",
        [this] { return audit_.GlobalTotals().epsilon_denied; });
}

uint64_t ServiceEngine::NextNoiseSeed() {
  const uint64_t n = noise_sequence_.fetch_add(1, std::memory_order_relaxed);
  uint64_t base;
  if (options_.insecure_deterministic_noise) {
    base = options_.noise_seed;
  } else {
    // Clients must not be able to predict (let alone choose) the seed:
    // mechanism noise is data-independent, so a predictable seed lets a
    // caller recompute the noise and subtract it from the response.
    static std::mutex device_mutex;
    static std::random_device device;
    std::lock_guard<std::mutex> lock(device_mutex);
    base = (static_cast<uint64_t>(device()) << 32) ^ device();
  }
  // splitmix64 finalizer over base + draw counter: decorrelates consecutive
  // draws even if the entropy source is weak on this platform.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (n + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

StatusOr<uint64_t> ServiceEngine::RequestNoiseSeed(const JsonValue& request) {
  if (request.Has("seed")) {
    if (!options_.insecure_deterministic_noise) {
      return Status::InvalidArgument(
          "'seed' is not accepted on noisy ops: noise seeds are drawn "
          "server-side (a client-chosen seed would let the caller subtract "
          "the mechanism noise and recover exact counts)");
    }
    DPX_ASSIGN_OR_RETURN(const size_t pinned, OptCount(request, "seed", 0));
    return static_cast<uint64_t>(pinned);
  }
  return NextNoiseSeed();
}

std::shared_ptr<ServiceEngine::InflightSlot> ServiceEngine::AcquireInflight(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  std::shared_ptr<InflightSlot>& slot = inflight_[key];
  if (slot == nullptr) slot = std::make_shared<InflightSlot>();
  ++slot->refs;
  return slot;
}

void ServiceEngine::ReleaseInflight(const std::string& key) {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  auto it = inflight_.find(key);
  DPX_CHECK(it != inflight_.end()) << "release without acquire";
  if (--it->second->refs == 0) inflight_.erase(it);
}

std::string ServiceEngine::Handle(const std::string& request_json) {
  return HandleAt(request_json, Deadline::Clock::now());
}

std::string ServiceEngine::HandleAt(const std::string& request_json,
                                    Deadline::Clock::time_point start) {
  // Size gate BEFORE parsing: a hostile payload must not buy a parse
  // proportional to its length.
  if (request_json.size() > options_.max_request_bytes) {
    return ErrorResponse(Status::InvalidArgument(
               "request of " + std::to_string(request_json.size()) +
               " bytes exceeds max_request_bytes=" +
               std::to_string(options_.max_request_bytes)))
        .Dump();
  }
  const auto parse_began = Deadline::Clock::now();
  StatusOr<JsonValue> parsed = JsonValue::Parse(request_json);
  if (!parsed.ok()) return ErrorResponse(parsed.status()).Dump();
  if (parsed->type() != JsonValue::Type::kObject) {
    return ErrorResponse(
               Status::InvalidArgument("request must be a JSON object"))
        .Dump();
  }
  const auto parse_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Deadline::Clock::now() - parse_began)
          .count());

  // Whether to trace is only knowable after the parse, so the parse itself
  // is attached as a pre-measured span.
  bool want_trace = options_.trace_all;
  bool trace_in_response = false;
  if (parsed->Has("trace") &&
      parsed->at("trace").type() == JsonValue::Type::kBool &&
      parsed->at("trace").AsBool()) {
    want_trace = true;
    trace_in_response = true;
  }
  // Cross-process trace context: a relaying front door (the router) splices
  // "_tc":{"pid":...,"tid":...} into the line. A string tid activates
  // tracing AND puts the span tree in the response — the relay needs the
  // worker tree to stitch its end-to-end timeline — and is echoed back as
  // "trace_id" so both halves agree on the trace's identity.
  std::string trace_id;
  if (parsed->Has("_tc") &&
      parsed->at("_tc").type() == JsonValue::Type::kObject) {
    const JsonValue& tc = parsed->at("_tc");
    if (tc.Has("tid") && tc.at("tid").type() == JsonValue::Type::kString) {
      trace_id = tc.at("tid").AsString();
      want_trace = true;
      trace_in_response = true;
    }
  }

  JsonValue response;
  if (want_trace) {
    const std::string op =
        parsed->Has("op") && parsed->at("op").type() == JsonValue::Type::kString
            ? parsed->at("op").AsString()
            : "unknown";
    obs::Trace trace("request");
    obs::AddPrerecordedSpan(trace, "parse", parse_micros);
    {
      obs::ScopedTraceActivation activate(&trace);
      response = Dispatch(*parsed, start);
    }
    trace.Finish();
    JsonValue trace_json = trace.ToJson();
    if (traced_ != nullptr) traced_->Increment();
    if (trace_in_response) response.Set("trace", trace_json);
    if (!trace_id.empty()) {
      response.Set("trace_id", JsonValue::String(trace_id));
    }
    PushTrace(op, trace_id, std::move(trace_json));
  } else {
    response = Dispatch(*parsed, start);
  }
  if (parsed->Has("id")) response.Set("id", parsed->at("id"));
  return response.Dump();
}

void ServiceEngine::PushTrace(const std::string& op,
                              const std::string& trace_id,
                              JsonValue trace_json) {
  JsonValue entry = JsonValue::Object();
  entry.Set("op", JsonValue::String(op));
  if (!trace_id.empty()) entry.Set("tid", JsonValue::String(trace_id));
  entry.Set("trace", std::move(trace_json));
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_ring_.push_back(std::move(entry));
  while (trace_ring_.size() > options_.trace_ring_capacity &&
         !trace_ring_.empty()) {
    trace_ring_.pop_front();
    trace_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status ServiceEngine::HandleAsync(std::string request_json,
                                  std::function<void(std::string)> done) {
  // The deadline clock starts at enqueue, not at execution: a request that
  // sat in the queue past its deadline_ms is dropped (for free) when a
  // worker finally picks it up.
  const Deadline::Clock::time_point enqueued = Deadline::Clock::now();
  Status submitted = pool_.TrySubmit(
      [this, enqueued, request = std::move(request_json),
       done = std::move(done)] { done(HandleAt(request, enqueued)); });
  if (submitted.code() == StatusCode::kResourceExhausted) {
    shed_->Increment();
  }
  return submitted;
}

std::string ServiceEngine::RejectionResponse(const std::string& request_json,
                                             const Status& reason,
                                             int64_t retry_after_ms) {
  // Only shed requests get the back-off hint; retrying a shutdown rejection
  // is pointless.
  JsonValue response = ErrorResponse(
      reason, reason.code() == StatusCode::kResourceExhausted ? retry_after_ms
                                                              : 0);
  StatusOr<JsonValue> parsed = JsonValue::Parse(request_json);
  if (parsed.ok() && parsed->type() == JsonValue::Type::kObject &&
      parsed->Has("id")) {
    response.Set("id", parsed->at("id"));
  }
  return response.Dump();
}

JsonValue ServiceEngine::Dispatch(const JsonValue& request,
                                  Deadline::Clock::time_point start) {
  StatusOr<std::string> op = request.GetString("op");
  if (!op.ok()) return ErrorResponse(op.status());
  if (!IsKnownOp(*op)) {
    // Unknown ops bypass the metrics map so a hostile stream of invented op
    // names cannot grow it without bound.
    return ErrorResponse(Status::NotFound("unknown op '" + *op + "'"));
  }

  const Deadline::Clock::time_point began = Deadline::Clock::now();
  StatusOr<JsonValue> body = DispatchOp(*op, request, start);
  if (body.ok() && !body->IsFinite()) {
    // A NaN/Inf anywhere in a response means a mechanism or handler bug (or
    // an injected fault) upstream; suppress the body — a null-laden release
    // is not a usable DP output — and keep serving.
    body = Status::Internal("op '" + *op +
                            "' produced a non-finite number; response "
                            "suppressed");
  }
  RecordOp(*op, began, body.status());
  if (!body.ok()) return ErrorResponse(body.status());
  JsonValue response = std::move(*body);
  response.Set("ok", JsonValue::Bool(true));
  return response;
}

StatusOr<JsonValue> ServiceEngine::DispatchOp(
    const std::string& op, const JsonValue& request,
    Deadline::Clock::time_point start) {
  DPX_ASSIGN_OR_RETURN(
      const double deadline_ms,
      OptNumber(request, "deadline_ms",
                static_cast<double>(options_.default_deadline_ms)));
  if (!std::isfinite(deadline_ms) || deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "'deadline_ms' must be a finite non-negative number (0 = none)");
  }
  Deadline deadline;
  if (deadline_ms > 0.0) {
    deadline = Deadline::FromStart(start, static_cast<int64_t>(deadline_ms));
  }
  // Expired while queued: drop before the handler runs (and before any ε
  // could be charged).
  DPX_RETURN_IF_ERROR(deadline.Check("dispatch"));
  DPX_RETURN_IF_ERROR(InjectFault(op + ":start", request, nullptr));

  StatusOr<JsonValue> body = Status::Internal("unrouted op '" + op + "'");
  if (op == "ping") {
    JsonValue pong = JsonValue::Object();
    pong.Set("pong", JsonValue::Bool(true));
    body = std::move(pong);
  } else if (op == "load_dataset") {
    body = OpLoadDataset(request);
  } else if (op == "append_rows") {
    body = OpAppendRows(request);
  } else if (op == "schema") {
    body = OpSchema(request);
  } else if (op == "cluster") {
    body = OpCluster(request);
  } else if (op == "create_session") {
    body = OpCreateSession(request);
  } else if (op == "close_session") {
    body = OpCloseSession(request);
  } else if (op == "budget") {
    body = OpBudget(request);
  } else if (op == "explain") {
    body = OpExplain(request, deadline);
  } else if (op == "hist") {
    body = OpHist(request);
  } else if (op == "size") {
    body = OpSize(request);
  } else if (op == "stats") {
    body = OpStats(request);
  } else if (op == "metrics") {
    body = OpMetricsDump(request);
  } else if (op == "trace") {
    body = OpTrace(request);
  } else if (op == "audit") {
    body = OpAudit(request);
  } else if (op == "save_snapshot") {
    body = OpSaveSnapshot(request);
  } else if (op == "load_snapshot") {
    body = OpLoadSnapshot(request);
  }
  if (body.ok()) {
    DPX_RETURN_IF_ERROR(InjectFault(op + ":finish", request, &*body));
  }
  return body;
}

Status ServiceEngine::InjectFault(const std::string& point,
                                  const JsonValue& request, JsonValue* body) {
  if (!options_.fault_injector) return Status::OK();
  FaultPoint fault;
  fault.point = point;
  fault.request = &request;
  fault.body = body;
  return options_.fault_injector(fault);
}

void ServiceEngine::RecordOp(const std::string& op,
                             Deadline::Clock::time_point began,
                             const Status& outcome) {
  if (!options_.record_metrics) return;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(
          Deadline::Clock::now() - began)
          .count();
  const auto micros = static_cast<uint64_t>(elapsed > 0 ? elapsed : 0);
  // op_metrics_ is immutable after construction, so this lookup (and the
  // instrument updates, which are relaxed atomics) takes no lock. Dispatch
  // only records known ops, so the find always hits.
  const auto it = op_metrics_.find(op);
  if (it == op_metrics_.end()) return;
  const OpMetrics& handles = it->second;
  handles.count->Increment();
  if (!outcome.ok()) handles.errors->Increment();
  if (outcome.code() == StatusCode::kDeadlineExceeded) {
    handles.deadline_exceeded->Increment();
  }
  handles.latency->Observe(micros);
}

StatusOr<JsonValue> ServiceEngine::OpLoadDataset(const JsonValue& request) {
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("load_dataset"));
  DPX_ASSIGN_OR_RETURN(const std::string name, request.GetString("name"));
  DPX_ASSIGN_OR_RETURN(const std::string source,
                       OptString(request, "source", "synthetic"));
  DPX_ASSIGN_OR_RETURN(const double cap_epsilon,
                       OptNumber(request, "cap_epsilon", 0.0));
  DPX_ASSIGN_OR_RETURN(const bool replace, OptBool(request, "replace", false));

  StatusOr<std::shared_ptr<DatasetEntry>> entry =
      Status::InvalidArgument("source must be 'synthetic', 'csv', or 'dpxcol'");
  if (source == "synthetic") {
    DPX_ASSIGN_OR_RETURN(const std::string generator,
                         request.GetString("generator"));
    DPX_ASSIGN_OR_RETURN(const size_t rows, OptCount(request, "rows", 20000));
    DPX_ASSIGN_OR_RETURN(const size_t seed, OptCount(request, "seed", 1));
    entry = registry_.RegisterSynthetic(name, generator, rows, seed,
                                        cap_epsilon, replace);
  } else if (source == "csv") {
    DPX_ASSIGN_OR_RETURN(const std::string path, request.GetString("path"));
    entry = registry_.RegisterCsv(name, path, cap_epsilon, replace,
                                  options_.max_csv_bytes);
  } else if (source == "dpxcol") {
    DPX_ASSIGN_OR_RETURN(const std::string path, request.GetString("path"));
    DPX_ASSIGN_OR_RETURN(const bool verify,
                         OptBool(request, "verify", false));
    entry = registry_.RegisterColumnar(name, path, cap_epsilon, replace,
                                       verify);
  }
  DPX_RETURN_IF_ERROR(entry.status());

  const std::shared_ptr<const Dataset> dataset = (*entry)->dataset();
  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(name));
  body.Set("rows",
           JsonValue::Number(static_cast<double>(dataset->num_rows())));
  body.Set("attributes", JsonValue::Number(static_cast<double>(
                             dataset->num_attributes())));
  body.Set("mapped", JsonValue::Bool(dataset->is_mapped()));
  body.Set("cap_epsilon", JsonValue::Number((*entry)->cap_epsilon()));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpAppendRows(const JsonValue& request) {
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("append_rows"));
  DPX_ASSIGN_OR_RETURN(const std::string name, request.GetString("dataset"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<DatasetEntry> entry,
                       registry_.Get(name));
  if (!request.Has("rows") ||
      request.at("rows").type() != JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "'rows' must be an array of rows (each an array of cells)");
  }
  // Cells are resolved against the schema up front — a value label string
  // ("white-collar") or a numeric code — so a malformed batch is rejected
  // before anything is written anywhere.
  const std::shared_ptr<const Dataset> dataset = entry->dataset();
  const Schema& schema = dataset->schema();
  const JsonValue& rows_json = request.at("rows");
  std::vector<std::vector<ValueCode>> rows;
  rows.reserve(rows_json.size());
  for (size_t r = 0; r < rows_json.size(); ++r) {
    const JsonValue& row_json = rows_json.at(r);
    if (row_json.type() != JsonValue::Type::kArray ||
        row_json.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " must be an array of " +
          std::to_string(schema.num_attributes()) + " cells");
    }
    std::vector<ValueCode> row(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
      const JsonValue& cell = row_json.at(a);
      if (cell.type() == JsonValue::Type::kString) {
        DPX_ASSIGN_OR_RETURN(row[a], attr.CodeOf(cell.AsString()));
      } else if (cell.type() == JsonValue::Type::kNumber) {
        const double value = cell.AsNumber();
        if (value < 0.0 || value != std::floor(value) ||
            value >= static_cast<double>(attr.domain_size())) {
          return Status::InvalidArgument(
              "row " + std::to_string(r) + ", attribute '" + attr.name() +
              "': code must be an integer in [0, " +
              std::to_string(attr.domain_size()) + ")");
        }
        row[a] = static_cast<ValueCode>(value);
      } else {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + ", attribute '" + attr.name() +
            "': cell must be a value label string or a numeric code");
      }
    }
    rows.push_back(std::move(row));
  }

  DPX_ASSIGN_OR_RETURN(const DatasetEntry::AppendResult result,
                       entry->AppendRows(rows));
  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(name));
  body.Set("appended", JsonValue::Number(static_cast<double>(rows.size())));
  body.Set("rows", JsonValue::Number(static_cast<double>(result.num_rows)));
  body.Set("epoch", JsonValue::Number(static_cast<double>(result.epoch)));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpSchema(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const std::string name, request.GetString("dataset"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<DatasetEntry> entry,
                       registry_.Get(name));
  // Schemas are data-independent (paper §2): releasing them costs nothing.
  const std::shared_ptr<const Dataset> dataset = entry->dataset();
  const Schema& schema = dataset->schema();
  JsonValue attributes = JsonValue::Array();
  for (const Attribute& attr : schema.attributes()) {
    JsonValue a = JsonValue::Object();
    a.Set("name", JsonValue::String(attr.name()));
    JsonValue values = JsonValue::Array();
    for (const std::string& label : attr.value_labels()) {
      values.Append(JsonValue::String(label));
    }
    a.Set("values", std::move(values));
    attributes.Append(std::move(a));
  }
  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(name));
  body.Set("attributes", std::move(attributes));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpCluster(const JsonValue& request) {
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("cluster"));
  DPX_ASSIGN_OR_RETURN(const std::string name, request.GetString("dataset"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<DatasetEntry> entry,
                       registry_.Get(name));
  DPX_ASSIGN_OR_RETURN(const std::string clustering_id,
                       OptString(request, "clustering", "default"));
  DPX_ASSIGN_OR_RETURN(const std::string method, request.GetString("method"));
  DPX_ASSIGN_OR_RETURN(const size_t k, OptCount(request, "k", 5));
  DPX_ASSIGN_OR_RETURN(const size_t seed, OptCount(request, "seed", 1));
  DPX_ASSIGN_OR_RETURN(const double epsilon,
                       OptNumber(request, "epsilon", 1.0));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");

  const bool is_private = method == "dp-k-means";
  const std::string fingerprint =
      ClusteringFingerprint(method, k, seed, is_private ? epsilon : 0.0);

  const auto respond = [&](const std::shared_ptr<const ClusteringView>& view) {
    JsonValue body = JsonValue::Object();
    body.Set("dataset", JsonValue::String(name));
    body.Set("clustering", JsonValue::String(clustering_id));
    body.Set("method", JsonValue::String(view->description));
    body.Set("num_clusters",
             JsonValue::Number(static_cast<double>(view->num_clusters)));
    // Deliberately NO per-cluster sizes here: exact counts never cross the
    // protocol boundary. Use the 'size' op for a noisy count.
    return body;
  };

  // Idempotent re-request: an existing view with the same config is returned
  // without refitting (and, for dp-k-means, without charging again).
  if (auto existing = entry->GetClustering(clustering_id); existing.ok()) {
    if ((*existing)->fingerprint == fingerprint) return respond(*existing);
    return Status::FailedPrecondition(
        "clustering '" + clustering_id + "' of dataset '" + name +
        "' already exists with a different configuration");
  }

  // One generation for the whole fit: labels and stats are computed against
  // this snapshot, and PutClustering rejects the publish if rows were
  // appended meanwhile (the caller retries against the new generation).
  const std::shared_ptr<const Dataset> dataset = entry->dataset();
  StatusOr<std::unique_ptr<ClusteringFunction>> clustering =
      Status::InvalidArgument(
          "unknown method '" + method +
          "' (expected k-means | dp-k-means | k-modes | agglomerative | gmm)");
  {
    DPX_SPAN("clustering_fit");
    if (method == "k-means") {
      KMeansOptions options;
      options.num_clusters = k;
      options.seed = seed;
      clustering = FitKMeans(*dataset, options);
    } else if (method == "dp-k-means") {
      // The fit is an ε-DP release: charge the requesting session (and the
      // dataset cap) before fitting.
      DPX_ASSIGN_OR_RETURN(const std::string session_id,
                           request.GetString("session"));
      DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                           sessions_.Get(session_id));
      if (session->dataset() != entry) {
        return Status::FailedPrecondition("session '" + session_id +
                                          "' is not bound to dataset '" + name +
                                          "'");
      }
      DPX_RETURN_IF_ERROR(
          session->Spend(epsilon, "cluster/dp-k-means " + clustering_id));
      DpKMeansOptions options;
      options.num_clusters = k;
      options.epsilon = epsilon;
      options.seed = seed;
      clustering = FitDpKMeans(*dataset, options, nullptr);
    } else if (method == "k-modes") {
      KModesOptions options;
      options.num_clusters = k;
      options.seed = seed;
      clustering = FitKModes(*dataset, options);
    } else if (method == "agglomerative") {
      AgglomerativeOptions options;
      options.num_clusters = k;
      options.seed = seed;
      clustering = FitAgglomerative(*dataset, options);
    } else if (method == "gmm") {
      GmmOptions options;
      options.num_components = k;
      options.seed = seed;
      clustering = FitGmm(*dataset, options);
    }
  }  // DPX_SPAN("clustering_fit")
  DPX_RETURN_IF_ERROR(clustering.status());

  auto view = std::make_shared<ClusteringView>();
  view->id = clustering_id;
  view->description = (*clustering)->name();
  view->fingerprint = fingerprint;
  view->num_clusters = (*clustering)->num_clusters();
  {
    DPX_SPAN("assign_all");
    view->labels = (*clustering)->AssignAll(*dataset);
  }
  DPX_ASSIGN_OR_RETURN(StatsCache stats,
                       StatsCache::Build(*dataset, view->labels,
                                         view->num_clusters));
  view->stats = std::make_shared<const StatsCache>(std::move(stats));
  // Keep the fitted model on the view: appended rows are labeled by the
  // same model, so a tail assignment matches a cold AssignAll exactly.
  view->model = std::shared_ptr<const ClusteringFunction>(
      std::move(*clustering));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<const ClusteringView> published,
                       entry->PutClustering(std::move(view)));
  return respond(published);
}

StatusOr<JsonValue> ServiceEngine::OpCreateSession(const JsonValue& request) {
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("create_session"));
  DPX_ASSIGN_OR_RETURN(const std::string session_id,
                       request.GetString("session"));
  DPX_ASSIGN_OR_RETURN(const std::string name, request.GetString("dataset"));
  DPX_ASSIGN_OR_RETURN(const double epsilon, request.GetNumber("epsilon"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<DatasetEntry> entry,
                       registry_.Get(name));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                       sessions_.Create(session_id, entry, epsilon));
  JsonValue body = JsonValue::Object();
  body.Set("session", JsonValue::String(session_id));
  body.Set("dataset", JsonValue::String(name));
  body.Set("epsilon", JsonValue::Number(session->budget().total_epsilon()));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpCloseSession(const JsonValue& request) {
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("close_session"));
  DPX_ASSIGN_OR_RETURN(const std::string session_id,
                       request.GetString("session"));
  DPX_RETURN_IF_ERROR(sessions_.Close(session_id));
  JsonValue body = JsonValue::Object();
  body.Set("session", JsonValue::String(session_id));
  body.Set("closed", JsonValue::Bool(true));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpBudget(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const std::string session_id,
                       request.GetString("session"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                       sessions_.Get(session_id));
  const PrivacyBudget& budget = session->budget();
  JsonValue ledger = JsonValue::Array();
  for (const PrivacyBudget::LedgerEntry& entry : budget.ledger()) {
    JsonValue row = JsonValue::Object();
    row.Set("label", JsonValue::String(entry.label));
    row.Set("epsilon", JsonValue::Number(entry.epsilon));
    ledger.Append(std::move(row));
  }
  JsonValue body = JsonValue::Object();
  body.Set("session", JsonValue::String(session_id));
  body.Set("dataset", JsonValue::String(session->dataset()->name()));
  body.Set("total", JsonValue::Number(budget.total_epsilon()));
  body.Set("spent", JsonValue::Number(budget.spent_epsilon()));
  body.Set("remaining", JsonValue::Number(budget.remaining_epsilon()));
  body.Set("ledger", std::move(ledger));
  if (const PrivacyBudget* cap = session->dataset()->cap()) {
    body.Set("dataset_cap_total", JsonValue::Number(cap->total_epsilon()));
    body.Set("dataset_cap_remaining",
             JsonValue::Number(cap->remaining_epsilon()));
  }
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpExplain(const JsonValue& request,
                                             const Deadline& deadline) {
  DPX_ASSIGN_OR_RETURN(const std::string session_id,
                       request.GetString("session"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                       sessions_.Get(session_id));
  DPX_ASSIGN_OR_RETURN(const std::string clustering_id,
                       OptString(request, "clustering", "default"));
  // Epoch read BEFORE the view: if an append lands in between, we hold the
  // old epoch with (at worst) the new view and cache under a key no future
  // request uses — never a stale view under the new epoch's key.
  const uint64_t epoch = session->dataset()->epoch();
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<const ClusteringView> view,
                       session->dataset()->GetClustering(clustering_id));

  DPX_ASSIGN_OR_RETURN(const double epsilon,
                       OptNumber(request, "epsilon", 0.3));
  DpClustXOptions options;
  DPX_ASSIGN_OR_RETURN(options.epsilon_cand_set,
                       OptNumber(request, "epsilon_cand_set", epsilon / 3.0));
  DPX_ASSIGN_OR_RETURN(options.epsilon_top_comb,
                       OptNumber(request, "epsilon_top_comb", epsilon / 3.0));
  DPX_ASSIGN_OR_RETURN(options.epsilon_hist,
                       OptNumber(request, "epsilon_hist", epsilon / 3.0));
  DPX_ASSIGN_OR_RETURN(options.num_candidates,
                       OptCount(request, "num_candidates", 3));
  DPX_ASSIGN_OR_RETURN(options.num_threads, OptCount(request, "threads", 1));
  options.deadline = deadline;
  // Pinned seeds are test-only (rejected here in the secure configuration);
  // otherwise the seed is drawn server-side at compute time below.
  const bool pinned_seed = request.Has("seed");
  uint64_t seed = 0;
  if (pinned_seed) {
    DPX_ASSIGN_OR_RETURN(seed, RequestNoiseSeed(request));
  }
  if (options.num_threads == 0) options.num_threads = 1;
  if (options.epsilon_cand_set <= 0.0 || options.epsilon_top_comb <= 0.0 ||
      options.epsilon_hist <= 0.0) {
    return Status::InvalidArgument("all epsilon splits must be positive");
  }
  if (options.num_candidates == 0) {
    return Status::InvalidArgument("num_candidates must be >= 1");
  }
  const double total_epsilon = options.epsilon_cand_set +
                               options.epsilon_top_comb +
                               options.epsilon_hist;

  // The key covers everything that determines the release bytes (threads
  // included: the parallel search draws a different — equally distributed —
  // noise stream than the serial one). Server-seeded requests key on
  // "seed=auto": identical requests share the first paid-for release.
  char key[320];
  std::snprintf(key, sizeof(key),
                "ds=%" PRIu64 " ep=%" PRIu64
                " cl=%s|%s ecs=%.17g etc=%.17g eh=%.17g k=%zu "
                "seed=%s th=%zu",
                session->dataset()->uid(), epoch, clustering_id.c_str(),
                view->fingerprint.c_str(), options.epsilon_cand_set,
                options.epsilon_top_comb, options.epsilon_hist,
                options.num_candidates,
                pinned_seed ? std::to_string(seed).c_str() : "auto",
                options.num_threads);

  JsonValue body;
  bool cache_hit = false;
  std::shared_ptr<const std::string> cached;
  {
    DPX_SPAN("cache_lookup");
    cached = cache_.Get(key);
  }
  if (cached == nullptr) {
    // Miss: serialize concurrent identical requests on a per-key lock so
    // exactly one of them spends ε and computes; the others block here,
    // then find the release cached below (a dual charge would silently
    // burn double budget).
    const std::shared_ptr<InflightSlot> slot = AcquireInflight(key);
    struct Release {
      ServiceEngine* engine;
      const char* key;
      ~Release() { engine->ReleaseInflight(key); }
    } release{this, key};
    std::unique_lock<std::mutex> in_flight(slot->mutex, std::defer_lock);
    {
      DPX_SPAN("inflight_wait");
      in_flight.lock();
      cached = cache_.Get(key);
    }
    if (cached == nullptr) {
      // A replica serves hits above for free but must not charge ε; the
      // router retries the miss against the primary.
      DPX_RETURN_IF_ERROR(RefuseIfReadOnly("explain (uncached)"));
      // The slot wait above can block behind another request's compute;
      // re-check the deadline so a request that expired waiting charges
      // nothing. Past the Spend below there are no refunds.
      DPX_RETURN_IF_ERROR(deadline.Check("explain inflight wait"));
      {
        DPX_SPAN("budget_check");
        DPX_RETURN_IF_ERROR(
            session->Spend(total_epsilon, "explain " + clustering_id));
      }
      // Fault point between the charge and the compute: a hook that sleeps
      // here (with the check that follows) exercises post-spend
      // cancellation; one that returns an error simulates a compute
      // failure after budget was committed.
      DPX_RETURN_IF_ERROR(InjectFault("explain:compute", request, nullptr));
      DPX_RETURN_IF_ERROR(deadline.Check("explain compute"));
      options.seed = pinned_seed ? seed : NextNoiseSeed();
      DPX_ASSIGN_OR_RETURN(const GlobalExplanation explanation, [&] {
        DPX_SPAN("explain_compute");
        return ExplainDpClustXWithStats(*view->stats, options, nullptr);
      }());
      const std::shared_ptr<const Dataset> dataset =
          session->dataset()->dataset();
      const Schema& schema = dataset->schema();
      DPX_ASSIGN_OR_RETURN(
          JsonValue explanation_json,
          JsonValue::Parse(ExplanationToJson(explanation, schema)));
      body = JsonValue::Object();
      body.Set("explanation", std::move(explanation_json));
      body.Set("text",
               JsonValue::String(RenderGlobalExplanation(explanation,
                                                         schema)));
      cache_.Put(key, body.Dump());
    }
  }
  if (cached != nullptr) {
    // Post-processing an already-paid-for release: identical bytes, zero ε.
    StatusOr<JsonValue> parsed = JsonValue::Parse(*cached);
    DPX_CHECK(parsed.ok()) << "corrupt cache payload";
    body = std::move(*parsed);
    cache_hit = true;
  }
  body.Set("cache_hit", JsonValue::Bool(cache_hit));
  body.Set("epsilon_charged",
           JsonValue::Number(cache_hit ? 0.0 : total_epsilon));
  body.Set("epsilon_remaining",
           JsonValue::Number(session->budget().remaining_epsilon()));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpHist(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const std::string session_id,
                       request.GetString("session"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                       sessions_.Get(session_id));
  DPX_ASSIGN_OR_RETURN(const std::string clustering_id,
                       OptString(request, "clustering", "default"));
  // Epoch before the view — see the ordering note in OpExplain.
  const uint64_t epoch = session->dataset()->epoch();
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<const ClusteringView> view,
                       session->dataset()->GetClustering(clustering_id));
  DPX_ASSIGN_OR_RETURN(const std::string attr_name,
                       request.GetString("attribute"));
  DPX_ASSIGN_OR_RETURN(const double epsilon,
                       OptNumber(request, "epsilon", 0.02));
  const std::shared_ptr<const Dataset> dataset = session->dataset()->dataset();
  const Schema& schema = dataset->schema();
  DPX_ASSIGN_OR_RETURN(const AttrIndex attr, schema.FindAttribute(attr_name));
  // Pinned seeds are test-only (RequestNoiseSeed rejects them in the secure
  // configuration); otherwise the seed is drawn at compute time below.
  const bool pinned_seed = request.Has("seed");
  uint64_t seed = 0;
  if (pinned_seed) {
    DPX_ASSIGN_OR_RETURN(seed, RequestNoiseSeed(request));
  }

  // Hist releases cache like explain releases: a repeat of an identical
  // request re-serves the paid-for bytes for zero ε (post-processing), and
  // server-seeded requests key on "seed=auto" so they share one release.
  char key[256];
  std::snprintf(key, sizeof(key),
                "hist ds=%" PRIu64 " ep=%" PRIu64
                " cl=%s|%s attr=%s eps=%.17g seed=%s",
                session->dataset()->uid(), epoch, clustering_id.c_str(),
                view->fingerprint.c_str(), attr_name.c_str(), epsilon,
                pinned_seed ? std::to_string(seed).c_str() : "auto");

  JsonValue body;
  bool cache_hit = false;
  std::shared_ptr<const std::string> cached;
  {
    DPX_SPAN("cache_lookup");
    cached = cache_.Get(key);
  }
  if (cached == nullptr) {
    // Same in-flight dedup as explain: exactly one of a burst of identical
    // misses charges ε; the rest wait and hit the cache below.
    const std::shared_ptr<InflightSlot> slot = AcquireInflight(key);
    struct Release {
      ServiceEngine* engine;
      const char* key;
      ~Release() { engine->ReleaseInflight(key); }
    } release{this, key};
    std::unique_lock<std::mutex> in_flight(slot->mutex, std::defer_lock);
    {
      DPX_SPAN("inflight_wait");
      in_flight.lock();
      cached = cache_.Get(key);
    }
    if (cached == nullptr) {
      // A replica serves hits above for free but must not charge ε; the
      // router retries the miss against the primary.
      DPX_RETURN_IF_ERROR(RefuseIfReadOnly("hist (uncached)"));
      // One round of per-cluster histograms over disjoint clusters: parallel
      // composition, a single charge of `epsilon` covers all of them.
      DPX_RETURN_IF_ERROR(session->Spend(
          epsilon, "hist attr=" + attr_name + " [parallel x" +
                       std::to_string(view->num_clusters) + "]"));
      Rng rng(pinned_seed ? seed : NextNoiseSeed());
      JsonValue clusters = JsonValue::Array();
      for (size_t c = 0; c < view->num_clusters; ++c) {
        DPX_ASSIGN_OR_RETURN(
            const Histogram noisy,
            ReleaseDpHistogram(
                view->stats->cluster_histogram(static_cast<ClusterId>(c),
                                               attr),
                epsilon, rng, DpHistogramOptions{}));
        JsonValue entry = JsonValue::Object();
        entry.Set("cluster", JsonValue::Number(static_cast<double>(c)));
        entry.Set("bins", HistogramToJson(noisy, schema.attribute(attr)));
        clusters.Append(std::move(entry));
      }
      body = JsonValue::Object();
      body.Set("attribute", JsonValue::String(attr_name));
      body.Set("clusters", std::move(clusters));
      cache_.Put(key, body.Dump());
    }
  }
  if (cached != nullptr) {
    // Post-processing an already-paid-for release: identical bytes, zero ε.
    StatusOr<JsonValue> parsed = JsonValue::Parse(*cached);
    DPX_CHECK(parsed.ok()) << "corrupt cache payload";
    body = std::move(*parsed);
    cache_hit = true;
  }
  body.Set("cache_hit", JsonValue::Bool(cache_hit));
  body.Set("epsilon_charged", JsonValue::Number(cache_hit ? 0.0 : epsilon));
  body.Set("epsilon_remaining",
           JsonValue::Number(session->budget().remaining_epsilon()));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpSize(const JsonValue& request) {
  // Always refused on replicas: a size release is never cached, so there is
  // no free-hit path to carve out.
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("size"));
  DPX_ASSIGN_OR_RETURN(const std::string session_id,
                       request.GetString("session"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                       sessions_.Get(session_id));
  DPX_ASSIGN_OR_RETURN(const std::string clustering_id,
                       OptString(request, "clustering", "default"));
  DPX_ASSIGN_OR_RETURN(const std::shared_ptr<const ClusteringView> view,
                       session->dataset()->GetClustering(clustering_id));
  DPX_ASSIGN_OR_RETURN(const size_t cluster, OptCount(request, "cluster", 0));
  DPX_ASSIGN_OR_RETURN(const double epsilon,
                       OptNumber(request, "epsilon", 0.01));
  DPX_ASSIGN_OR_RETURN(const uint64_t seed, RequestNoiseSeed(request));
  if (cluster >= view->num_clusters) {
    return Status::InvalidArgument("cluster " + std::to_string(cluster) +
                                   " out of range");
  }
  DPX_RETURN_IF_ERROR(session->Spend(
      epsilon, "size c=" + std::to_string(cluster)));
  Rng rng(seed);
  DPX_ASSIGN_OR_RETURN(
      const int64_t noisy,
      GeometricMechanism(
          static_cast<int64_t>(
              view->stats->cluster_size(static_cast<ClusterId>(cluster))),
          /*sensitivity=*/1.0, epsilon, rng));
  JsonValue body = JsonValue::Object();
  body.Set("cluster", JsonValue::Number(static_cast<double>(cluster)));
  body.Set("noisy_size", JsonValue::Number(static_cast<double>(noisy)));
  body.Set("epsilon_charged", JsonValue::Number(epsilon));
  body.Set("epsilon_remaining",
           JsonValue::Number(session->budget().remaining_epsilon()));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpStats(const JsonValue& request) {
  (void)request;
  JsonValue datasets = JsonValue::Array();
  for (const std::string& name : registry_.Names()) {
    datasets.Append(JsonValue::String(name));
  }
  JsonValue session_ids = JsonValue::Array();
  for (const std::string& id : sessions_.Ids()) {
    session_ids.Append(JsonValue::String(id));
  }
  JsonValue cache = JsonValue::Object();
  cache.Set("hits", JsonValue::Number(static_cast<double>(cache_.hits())));
  cache.Set("misses", JsonValue::Number(static_cast<double>(cache_.misses())));
  cache.Set("evictions",
            JsonValue::Number(static_cast<double>(cache_.evictions())));
  cache.Set("size", JsonValue::Number(static_cast<double>(cache_.size())));
  cache.Set("capacity",
            JsonValue::Number(static_cast<double>(cache_.capacity())));
  JsonValue pool = JsonValue::Object();
  pool.Set("threads",
           JsonValue::Number(static_cast<double>(pool_.num_threads())));
  pool.Set("queue_capacity",
           JsonValue::Number(static_cast<double>(pool_.queue_capacity())));
  pool.Set("queue_depth",
           JsonValue::Number(static_cast<double>(pool_.queue_depth())));
  pool.Set("active",
           JsonValue::Number(static_cast<double>(pool_.active_count())));
  pool.Set("tasks_completed",
           JsonValue::Number(static_cast<double>(pool_.tasks_completed())));
  // The shared compute pool (ParallelFor) is process-wide and distinct from
  // the request pool above; request workers always participate in their own
  // ParallelFor regions, so the two compose without oversubscription
  // deadlock.
  JsonValue compute = JsonValue::Object();
  compute.Set("width",
              JsonValue::Number(static_cast<double>(ComputePoolWidth())));
  compute.Set("parallel_for_calls",
              JsonValue::Number(static_cast<double>(ParallelForCalls())));
  compute.Set("parallel_for_parallel_calls",
              JsonValue::Number(
                  static_cast<double>(ParallelForParallelCalls())));
  // Per-op latency/error counters, read from the pre-registered instrument
  // handles. The JSON shape predates the registry (count/errors/
  // deadline_exceeded/total_micros/max_micros per op) and is kept
  // backward-compatible; like the old lazily-grown map, ops that have not
  // been called are absent. The stats op itself is recorded only after this
  // snapshot is taken, so its own in-progress call is absent.
  JsonValue ops = JsonValue::Object();
  for (const auto& [name, handles] : op_metrics_) {
    const uint64_t count = handles.count->Value();
    if (count == 0) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue::Number(static_cast<double>(count)));
    entry.Set("errors", JsonValue::Number(
                            static_cast<double>(handles.errors->Value())));
    entry.Set("deadline_exceeded",
              JsonValue::Number(static_cast<double>(
                  handles.deadline_exceeded->Value())));
    entry.Set("total_micros",
              JsonValue::Number(static_cast<double>(
                  handles.latency->sum_micros())));
    entry.Set("max_micros",
              JsonValue::Number(static_cast<double>(
                  handles.latency->max_micros())));
    ops.Set(name, std::move(entry));
  }
  const obs::AuditLog::Totals audit_totals = audit_.GlobalTotals();
  JsonValue audit = JsonValue::Object();
  audit.Set("records",
            JsonValue::Number(static_cast<double>(audit_.next_seq() - 1)));
  audit.Set("dropped",
            JsonValue::Number(static_cast<double>(audit_.dropped())));
  audit.Set("epsilon_charged", JsonValue::Number(audit_totals.epsilon_charged));
  audit.Set("epsilon_denied", JsonValue::Number(audit_totals.epsilon_denied));
  // Trace-ring occupancy mirrors the audit block: "dropped" > 0 means the
  // retained window the `trace` op serves is incomplete.
  JsonValue trace_stats = JsonValue::Object();
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_stats.Set("retained", JsonValue::Number(
                                    static_cast<double>(trace_ring_.size())));
  }
  trace_stats.Set("capacity",
                  JsonValue::Number(
                      static_cast<double>(options_.trace_ring_capacity)));
  trace_stats.Set("dropped",
                  JsonValue::Number(static_cast<double>(
                      trace_dropped_.load(std::memory_order_relaxed))));
  JsonValue body = JsonValue::Object();
  body.Set("datasets", std::move(datasets));
  body.Set("sessions", std::move(session_ids));
  body.Set("cache", std::move(cache));
  body.Set("pool", std::move(pool));
  body.Set("compute_pool", std::move(compute));
  body.Set("ops", std::move(ops));
  body.Set("audit", std::move(audit));
  body.Set("trace", std::move(trace_stats));
  body.Set("build", obs::BuildInfoJson());
  body.Set("shed", JsonValue::Number(static_cast<double>(shed_->Value())));
  body.Set("retry_after_ms",
           JsonValue::Number(static_cast<double>(options_.retry_after_ms)));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpMetricsDump(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const std::string format,
                       OptString(request, "format", "both"));
  if (format != "json" && format != "prometheus" && format != "both") {
    return Status::InvalidArgument(
        "format must be 'json', 'prometheus', or 'both'");
  }
  JsonValue body = JsonValue::Object();
  if (format == "json" || format == "both") {
    body.Set("metrics", metrics_->ToJson());
  }
  if (format == "prometheus" || format == "both") {
    body.Set("prometheus", JsonValue::String(metrics_->PrometheusText()));
  }
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpTrace(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const size_t limit, OptCount(request, "limit", 0));
  JsonValue traces = JsonValue::Array();
  size_t retained = 0;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    retained = trace_ring_.size();
    size_t start = 0;
    if (limit != 0 && trace_ring_.size() > limit) {
      start = trace_ring_.size() - limit;
    }
    for (size_t i = start; i < trace_ring_.size(); ++i) {
      traces.Append(trace_ring_[i]);
    }
  }
  JsonValue body = JsonValue::Object();
  body.Set("traces", std::move(traces));
  body.Set("trace_all", JsonValue::Bool(options_.trace_all));
  body.Set("ring_capacity",
           JsonValue::Number(
               static_cast<double>(options_.trace_ring_capacity)));
  body.Set("retained", JsonValue::Number(static_cast<double>(retained)));
  body.Set("dropped",
           JsonValue::Number(static_cast<double>(
               trace_dropped_.load(std::memory_order_relaxed))));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpAudit(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const size_t limit, OptCount(request, "limit", 0));
  return audit_.ToJson(limit);
}

// ---- durability (src/snapshot; DESIGN.md §11) -----------------------------

namespace {

snapshot::AuditRecordState ToRecordState(const obs::AuditRecord& record) {
  snapshot::AuditRecordState state;
  state.seq = record.seq;
  state.tenant = record.tenant;
  state.dataset = record.dataset;
  state.label = record.label;
  state.epsilon = record.epsilon;
  state.granted = record.granted;
  state.reason = record.reason;
  return state;
}

obs::AuditRecord ToAuditRecord(const snapshot::AuditRecordState& state) {
  obs::AuditRecord record;
  record.seq = state.seq;
  record.tenant = state.tenant;
  record.dataset = state.dataset;
  record.label = state.label;
  record.epsilon = state.epsilon;
  record.granted = state.granted;
  record.reason = state.reason;
  return record;
}

snapshot::AuditTotalsState ToTotalsState(const std::string& tenant,
                                         const obs::AuditLog::Totals& totals) {
  snapshot::AuditTotalsState state;
  state.tenant = tenant;
  state.epsilon_charged = totals.epsilon_charged;
  state.epsilon_denied = totals.epsilon_denied;
  state.charges = totals.charges;
  state.denials = totals.denials;
  return state;
}

obs::AuditLog::Totals ToTotals(const snapshot::AuditTotalsState& state) {
  obs::AuditLog::Totals totals;
  totals.epsilon_charged = state.epsilon_charged;
  totals.epsilon_denied = state.epsilon_denied;
  totals.charges = state.charges;
  totals.denials = state.denials;
  return totals;
}

std::vector<snapshot::LedgerEntryState> ToLedgerState(
    const std::vector<PrivacyBudget::LedgerEntry>& ledger) {
  std::vector<snapshot::LedgerEntryState> state;
  state.reserve(ledger.size());
  for (const PrivacyBudget::LedgerEntry& entry : ledger) {
    state.push_back(snapshot::LedgerEntryState{entry.label, entry.epsilon});
  }
  return state;
}

}  // namespace

Status ServiceEngine::RefuseIfReadOnly(const char* what) const {
  if (!options_.read_only) return Status::OK();
  return Status::FailedPrecondition(
      std::string("this worker is read-only: ") + what +
      " is refused (retry against the primary)");
}

Status ServiceEngine::EnableAuditJournal(const std::string& path) {
  DPX_RETURN_IF_ERROR(journal_.Open(path));
  // The sink runs inside AuditLog::Record, under its lock, before the
  // charge's response is built — the journal is a write-ahead log for every
  // ε charge a client could have observed.
  audit_.set_sink([this](const obs::AuditRecord& record) {
    if (journal_.Append(ToRecordState(record)).ok()) {
      journal_records_->Increment();
    } else {
      journal_failures_->Increment();
    }
  });
  return Status::OK();
}

Status ServiceEngine::SaveSnapshotToFile(const std::string& path) {
  // Exclusive gate: every in-flight Spend holds it shared across its whole
  // ledger+cap+audit transaction, so once acquired, every charge is either
  // fully in the harvested state or fully after its audit cursor.
  DPX_SPAN("snapshot_save");
  std::unique_lock<std::shared_mutex> gate(sessions_.spend_gate());
  DPX_ASSIGN_OR_RETURN(const snapshot::ServiceSnapshot state,
                       HarvestSnapshot());
  DPX_RETURN_IF_ERROR(snapshot::SaveSnapshotFile(path, state));
  snapshot_saves_->Increment();
  return Status::OK();
}

StatusOr<snapshot::ServiceSnapshot> ServiceEngine::HarvestSnapshot() {
  snapshot::ServiceSnapshot state;

  const std::vector<std::shared_ptr<ServiceSession>> sessions =
      sessions_.Sessions();
  // A session bound to a replaced (detached) dataset entry charges a cap
  // object the snapshot cannot name; a refused save beats a wrong restore.
  for (const std::shared_ptr<ServiceSession>& session : sessions) {
    StatusOr<std::shared_ptr<DatasetEntry>> current =
        registry_.Get(session->dataset()->name());
    if (!current.ok() || current->get() != session->dataset().get()) {
      return Status::FailedPrecondition(
          "session '" + session->id() + "' is bound to a replaced "
          "registration of dataset '" + session->dataset()->name() +
          "'; snapshots cannot represent detached entries");
    }
  }

  for (const std::shared_ptr<DatasetEntry>& entry : registry_.Entries()) {
    snapshot::DatasetState ds;
    ds.name = entry->name();
    ds.source = entry->source();
    ds.uid = entry->uid();
    // One locked instant: the dataset generation, its views, and the epoch
    // must agree (an append swaps all three together).
    std::shared_ptr<const Dataset> dataset;
    std::vector<std::shared_ptr<const ClusteringView>> views;
    entry->SnapshotState(&dataset, &views, &ds.epoch);
    ds.width_policy = static_cast<uint8_t>(dataset->width_policy());
    ds.cap_epsilon = entry->cap_epsilon();
    if (const PrivacyBudget* cap = entry->cap()) {
      ds.cap_ledger = ToLedgerState(cap->ledger());
    }
    ds.schema_json = SchemaToJson(dataset->schema());
    if (dataset->is_mapped()) {
      // By reference: the DPXCOL file is the durable copy of the bytes.
      // The saved row count pins the generation — the file may legitimately
      // grow past it before the snapshot is restored.
      ds.columnar_path = dataset->mapped()->path();
      ds.columnar_file_uid = dataset->mapped()->file_uid();
      ds.columnar_rows = dataset->num_rows();
    } else {
      for (size_t a = 0; a < dataset->num_attributes(); ++a) {
        const NarrowColumn& column =
            dataset->narrow_column(static_cast<AttrIndex>(a));
        snapshot::ColumnState cs;
        cs.width_tag = static_cast<uint8_t>(column.width());
        cs.rows = column.size();
        cs.bytes.assign(static_cast<const char*>(column.raw_data()),
                        column.raw_size_bytes());
        ds.columns.push_back(std::move(cs));
      }
    }
    for (const std::shared_ptr<const ClusteringView>& view : views) {
      snapshot::ClusteringState cl;
      cl.id = view->id;
      cl.description = view->description;
      cl.fingerprint = view->fingerprint;
      cl.num_clusters = view->num_clusters;
      cl.labels = view->labels;
      ds.clusterings.push_back(std::move(cl));
    }
    state.datasets.push_back(std::move(ds));
  }

  for (const std::shared_ptr<ServiceSession>& session : sessions) {
    snapshot::SessionState ss;
    ss.id = session->id();
    ss.dataset_name = session->dataset()->name();
    ss.dataset_uid = session->dataset()->uid();
    ss.total_epsilon = session->budget().total_epsilon();
    ss.spent = session->budget().spent_epsilon();
    // Exact comparison on purpose: recovery re-asserts the equality only
    // where it held at save (a closed session reusing the tenant id breaks
    // it legitimately — its charges stay in the audit totals).
    ss.audit_matches_ledger =
        audit_.TenantTotals(session->id()).epsilon_charged == ss.spent;
    ss.ledger = ToLedgerState(session->budget().ledger());
    state.sessions.push_back(std::move(ss));
  }

  for (auto& [key, payload] : cache_.Entries()) {
    state.cache.push_back(
        snapshot::CacheEntryState{std::move(key), std::move(payload)});
  }

  obs::AuditLog::State audit = audit_.SnapshotState();
  state.audit.next_seq = audit.next_seq;
  state.audit.dropped = audit.dropped;
  state.audit.global = ToTotalsState("", audit.global);
  for (const auto& [tenant, totals] : audit.tenants) {
    state.audit.tenants.push_back(ToTotalsState(tenant, totals));
  }
  for (const obs::AuditRecord& record : audit.tail) {
    state.audit.tail.push_back(ToRecordState(record));
  }
  return state;
}

Status ServiceEngine::ApplySnapshot(const snapshot::ServiceSnapshot& state,
                                    RestoreReport* report) {
  uint64_t max_uid = 0;
  for (const snapshot::DatasetState& ds : state.datasets) {
    DPX_ASSIGN_OR_RETURN(Schema schema, SchemaFromJson(ds.schema_json));
    if (ds.width_policy > static_cast<uint8_t>(WidthPolicy::kForce32)) {
      return Status::IoError("snapshot dataset '" + ds.name +
                             "' carries an unknown width policy");
    }
    const WidthPolicy policy = static_cast<WidthPolicy>(ds.width_policy);
    StatusOr<Dataset> dataset = Status::Internal("dataset not rebuilt");
    if (!ds.columnar_path.empty()) {
      // By-reference DPXCOL dataset: re-open the file and map exactly the
      // saved row prefix (the file may have grown since the save — those
      // appends belong to a later epoch than this snapshot).
      if (!ds.columns.empty()) {
        return Status::IoError("snapshot dataset '" + ds.name +
                               "' carries both inline columns and a "
                               "columnar file reference");
      }
      StatusOr<std::shared_ptr<const MappedColumnar>> mapped =
          MappedColumnar::Open(ds.columnar_path);
      if (!mapped.ok()) {
        return Status::IoError(
            "snapshot dataset '" + ds.name + "' references columnar file '" +
            ds.columnar_path + "': " + mapped.status().message());
      }
      if ((*mapped)->file_uid() != ds.columnar_file_uid) {
        return Status::IoError(
            "snapshot dataset '" + ds.name + "' expects columnar file uid " +
            std::to_string(ds.columnar_file_uid) + " but '" +
            ds.columnar_path + "' has uid " +
            std::to_string((*mapped)->file_uid()) +
            " — the file was replaced since the snapshot was saved");
      }
      dataset = Dataset::FromMapped(std::move(*mapped), ds.columnar_rows);
      if (dataset.ok() && SchemaToJson(dataset->schema()) != ds.schema_json) {
        return Status::IoError("snapshot dataset '" + ds.name +
                               "' schema does not match the columnar file's");
      }
    } else {
      std::vector<NarrowColumn> columns;
      columns.reserve(ds.columns.size());
      for (const snapshot::ColumnState& cs : ds.columns) {
        if (cs.width_tag > static_cast<uint8_t>(ColumnWidth::k32)) {
          return Status::IoError("snapshot dataset '" + ds.name +
                                 "' carries an unknown column width");
        }
        const ColumnWidth width = static_cast<ColumnWidth>(cs.width_tag);
        if (cs.bytes.size() != cs.rows * ColumnWidthBytes(width)) {
          return Status::IoError("snapshot dataset '" + ds.name +
                                 "' has a column whose byte count does not "
                                 "match its row count");
        }
        NarrowColumn column(width);
        column.AssignRaw(width, cs.bytes.data(), cs.bytes.size());
        columns.push_back(std::move(column));
      }
      dataset = Dataset::FromColumns(std::move(schema), policy,
                                     std::move(columns));
    }
    DPX_RETURN_IF_ERROR(dataset.status());
    auto entry = std::make_shared<DatasetEntry>(
        ds.name, ds.source, std::move(*dataset), ds.cap_epsilon, ds.uid);
    // Pinned like the uid: cached release keys embed (uid, epoch).
    entry->PinEpoch(ds.epoch);
    if (entry->cap() == nullptr && !ds.cap_ledger.empty()) {
      return Status::IoError("snapshot dataset '" + ds.name +
                             "' has cap charges but no cap");
    }
    for (const snapshot::LedgerEntryState& charge : ds.cap_ledger) {
      // Replaying the saved entries in order rebuilds the cap's spent total
      // through the same floating-point additions — bit-for-bit.
      const Status spent = entry->cap()->Spend(charge.epsilon, charge.label);
      if (!spent.ok()) {
        return Status::IoError("snapshot cap ledger for dataset '" + ds.name +
                               "' does not fit its cap: " + spent.message());
      }
    }
    for (const snapshot::ClusteringState& cl : ds.clusterings) {
      auto view = std::make_shared<ClusteringView>();
      view->id = cl.id;
      view->description = cl.description;
      view->fingerprint = cl.fingerprint;
      view->num_clusters = cl.num_clusters;
      view->labels = cl.labels;
      // The StatsCache is rebuilt, not stored: Build is deterministic and
      // bitwise-identical for the same (columns, labels).
      DPX_ASSIGN_OR_RETURN(
          StatsCache stats,
          StatsCache::Build(*entry->dataset(), view->labels,
                            view->num_clusters));
      view->stats = std::make_shared<const StatsCache>(std::move(stats));
      DPX_RETURN_IF_ERROR(entry->PutClustering(std::move(view)).status());
    }
    if (ds.uid > max_uid) max_uid = ds.uid;
    DPX_RETURN_IF_ERROR(registry_.RestoreEntry(std::move(entry)));
    ++report->datasets;
  }
  // Uids minted after the restore must not collide with pinned ones (release
  // cache keys embed them).
  if (max_uid > 0) DatasetEntry::BumpUidFloor(max_uid + 1);

  for (const snapshot::SessionState& ss : state.sessions) {
    DPX_ASSIGN_OR_RETURN(const std::shared_ptr<DatasetEntry> entry,
                         registry_.Get(ss.dataset_name));
    if (entry->uid() != ss.dataset_uid) {
      return Status::IoError(
          "snapshot session '" + ss.id + "' names dataset uid " +
          std::to_string(ss.dataset_uid) + " but the restored dataset '" +
          ss.dataset_name + "' has uid " + std::to_string(entry->uid()));
    }
    DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                         sessions_.Create(ss.id, entry, ss.total_epsilon));
    for (const snapshot::LedgerEntryState& charge : ss.ledger) {
      const Status charged =
          session->RestoreCharge(charge.epsilon, charge.label);
      if (!charged.ok()) {
        return Status::IoError("snapshot ledger for session '" + ss.id +
                               "' does not fit its budget: " +
                               charged.message());
      }
    }
    if (session->budget().spent_epsilon() != ss.spent) {
      return Status::IoError("restored ledger for session '" + ss.id +
                             "' does not reproduce its saved spent total");
    }
    ++report->sessions;
  }

  for (const snapshot::CacheEntryState& entry : state.cache) {
    cache_.Put(entry.key, entry.payload);
    ++report->cache_entries;
  }

  obs::AuditLog::State audit;
  audit.next_seq = state.audit.next_seq;
  audit.dropped = state.audit.dropped;
  audit.global = ToTotals(state.audit.global);
  for (const snapshot::AuditTotalsState& totals : state.audit.tenants) {
    audit.tenants.emplace(totals.tenant, ToTotals(totals));
  }
  for (const snapshot::AuditRecordState& record : state.audit.tail) {
    audit.tail.push_back(ToAuditRecord(record));
  }
  audit_.RestoreState(std::move(audit));
  return Status::OK();
}

Status ServiceEngine::ReplayJournal(const std::string& journal_path,
                                    uint64_t cursor, RestoreReport* report) {
  StatusOr<std::vector<snapshot::AuditRecordState>> records =
      snapshot::ReadAuditJournal(journal_path);
  // No journal file yet is a fresh deployment, not a recovery failure.
  if (records.status().code() == StatusCode::kNotFound) return Status::OK();
  DPX_RETURN_IF_ERROR(records.status());

  uint64_t expected = cursor;
  for (const snapshot::AuditRecordState& record : *records) {
    if (record.seq < cursor) continue;  // already inside the snapshot
    if (record.seq != expected) {
      // A hole at or after the cursor means records were lost (truncation,
      // a dropped write): ledgers rebuilt across it would be wrong.
      return Status::FailedPrecondition(
          "audit journal has a gap: expected seq " + std::to_string(expected) +
          " after the snapshot cursor, found " + std::to_string(record.seq) +
          " — refusing to rebuild ledgers across missing charges");
    }
    ++expected;
    // RestoreRecord keeps the journaled seq and does not re-invoke the sink,
    // so replay never double-journals.
    audit_.RestoreRecord(ToAuditRecord(record));
    if (record.granted) {
      StatusOr<std::shared_ptr<ServiceSession>> session =
          sessions_.Get(record.tenant);
      if (session.ok()) {
        const Status charged =
            (*session)->RestoreCharge(record.epsilon, record.label);
        if (!charged.ok()) {
          return Status::FailedPrecondition(
              "journal replay overflows the ledger of session '" +
              record.tenant + "': " + charged.message());
        }
        if (PrivacyBudget* cap = (*session)->dataset()->cap()) {
          // Post-cursor charges are not in the saved cap ledger; re-apply
          // with the same label shape ServiceSession::Spend uses.
          DPX_RETURN_IF_ERROR(
              cap->Spend(record.epsilon, record.tenant + "/" + record.label));
        }
      } else {
        // The session was created after the snapshot: its ledger cannot be
        // rebuilt (session creation is not journaled), but the dataset cap
        // must never understate — charge it and report the tenant.
        StatusOr<std::shared_ptr<DatasetEntry>> entry =
            registry_.Get(record.dataset);
        if (entry.ok() && (*entry)->cap() != nullptr) {
          DPX_RETURN_IF_ERROR((*entry)->cap()->Spend(
              record.epsilon, record.tenant + "/" + record.label));
        }
        if (std::find(report->unrecovered_sessions.begin(),
                      report->unrecovered_sessions.end(),
                      record.tenant) == report->unrecovered_sessions.end()) {
          report->unrecovered_sessions.push_back(record.tenant);
        }
      }
    }
    journal_replayed_->Increment();
    ++report->replayed_records;
  }
  return Status::OK();
}

StatusOr<ServiceEngine::RestoreReport> ServiceEngine::RestoreFromFiles(
    const std::string& snapshot_path, const std::string& journal_path) {
  DPX_SPAN("snapshot_restore");
  if (registry_.size() != 0 || sessions_.size() != 0 ||
      audit_.next_seq() != 1 || cache_.size() != 0) {
    return Status::FailedPrecondition(
        "restore requires an empty engine (datasets, sessions, audit, and "
        "cache must all be untouched)");
  }
  StatusOr<snapshot::ServiceSnapshot> state =
      snapshot::LoadSnapshotFile(snapshot_path);
  if (state.status().code() == StatusCode::kNotFound) {
    // No snapshot. An absent/empty journal is a genuinely fresh start; a
    // non-empty journal holds charges whose session budgets and dataset
    // contents were never snapshotted — rebuilding ledgers from the journal
    // alone would silently undercount, so refuse loudly instead.
    if (!journal_path.empty()) {
      StatusOr<std::vector<snapshot::AuditRecordState>> journaled =
          snapshot::ReadAuditJournal(journal_path);
      if (journaled.ok() && !journaled->empty()) {
        return Status::FailedPrecondition(
            "no snapshot at '" + snapshot_path + "' but the audit journal '" +
            journal_path + "' holds " + std::to_string(journaled->size()) +
            " records: snapshot-less recovery cannot rebuild correct ledgers "
            "(session budgets and dataset contents are not journaled) — "
            "restore from a snapshot or archive the journal first");
      }
    }
    return state.status();
  }
  DPX_RETURN_IF_ERROR(state.status());

  RestoreReport report;
  report.format_version = state->format_version;
  DPX_RETURN_IF_ERROR(ApplySnapshot(*state, &report));
  if (!journal_path.empty()) {
    DPX_RETURN_IF_ERROR(
        ReplayJournal(journal_path, state->audit.next_seq, &report));
  }
  // Cross-check: where audit/ledger equality held at save it must hold now —
  // both sides restarted from the same saved doubles and replay applied the
  // same additions to both in the same order.
  for (const snapshot::SessionState& ss : state->sessions) {
    if (!ss.audit_matches_ledger) continue;
    DPX_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                         sessions_.Get(ss.id));
    if (audit_.TenantTotals(ss.id).epsilon_charged !=
        session->budget().spent_epsilon()) {
      return Status::Internal("post-recovery audit/ledger mismatch for "
                              "session '" + ss.id +
                              "': the journal and snapshot disagree");
    }
  }
  snapshot_restores_->Increment();
  return report;
}

StatusOr<JsonValue> ServiceEngine::OpSaveSnapshot(const JsonValue& request) {
  DPX_RETURN_IF_ERROR(RefuseIfReadOnly("save_snapshot"));
  DPX_ASSIGN_OR_RETURN(const std::string path, request.GetString("path"));
  DPX_RETURN_IF_ERROR(SaveSnapshotToFile(path));
  JsonValue body = JsonValue::Object();
  body.Set("path", JsonValue::String(path));
  body.Set("format_version",
           JsonValue::Number(
               static_cast<double>(snapshot::kSnapshotFormatVersion)));
  body.Set("datasets",
           JsonValue::Number(static_cast<double>(registry_.size())));
  body.Set("sessions",
           JsonValue::Number(static_cast<double>(sessions_.size())));
  body.Set("cache_entries",
           JsonValue::Number(static_cast<double>(cache_.size())));
  body.Set("audit_next_seq",
           JsonValue::Number(static_cast<double>(audit_.next_seq())));
  return body;
}

StatusOr<JsonValue> ServiceEngine::OpLoadSnapshot(const JsonValue& request) {
  // Deliberately NOT refused on read-only workers: a restore is how a
  // respawned replica gets the primary's paid-for releases in the first
  // place (RestoreFromFiles itself requires the engine to be empty).
  DPX_ASSIGN_OR_RETURN(const std::string path, request.GetString("path"));
  DPX_ASSIGN_OR_RETURN(const std::string journal,
                       OptString(request, "journal", ""));
  DPX_ASSIGN_OR_RETURN(const RestoreReport report,
                       RestoreFromFiles(path, journal));
  JsonValue unrecovered = JsonValue::Array();
  for (const std::string& tenant : report.unrecovered_sessions) {
    unrecovered.Append(JsonValue::String(tenant));
  }
  JsonValue body = JsonValue::Object();
  body.Set("path", JsonValue::String(path));
  body.Set("format_version",
           JsonValue::Number(static_cast<double>(report.format_version)));
  body.Set("datasets",
           JsonValue::Number(static_cast<double>(report.datasets)));
  body.Set("sessions",
           JsonValue::Number(static_cast<double>(report.sessions)));
  body.Set("cache_entries",
           JsonValue::Number(static_cast<double>(report.cache_entries)));
  body.Set("replayed_records",
           JsonValue::Number(static_cast<double>(report.replayed_records)));
  body.Set("unrecovered_sessions", std::move(unrecovered));
  return body;
}

}  // namespace dpclustx::service
