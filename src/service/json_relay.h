// Zero-reparse response relay: locate the top-level "id" member of a JSON
// response line without building a document tree, so the router can splice
// the client's original id bytes into a worker response and forward the
// rest of the payload verbatim.
//
// The old relay hot path was parse → mutate → dump: every worker response
// was decoded into a JsonValue (allocating a node per key and per bin of
// every histogram), had its "id" rewritten, and was re-serialized. For a
// response whose payload is a few kilobytes of histogram bins, that work
// dwarfs the routing decision itself. The scanner here walks the line once,
// tracking only string/escape state and container depth, and records the
// byte range of the top-level "id" member; the splice is then two memcpys.
//
// Contract (enforced by tests/json_relay_test.cc against the full-parse
// path): for any line produced by JsonValue::Dump, SpliceId/EraseId output
// is byte-identical to parse → Set("id")/Remove("id") → Dump. This holds
// because Dump emits object keys in lexicographic order — rewriting one
// member's value in place cannot reorder anything — and the scanner
// validates the whole line (the object must close cleanly with no trailing
// garbage) so a torn or corrupt worker line falls back to the full parser
// rather than being spliced blind.
//
// Deliberate non-goals: the scanner does not validate token grammar beyond
// structure (a worker emitting `{"id":"r1","x":bogus}` relays verbatim —
// workers are our own engines whose output is Dump() text), and an "id"
// whose string value contains escapes is refused (kFailedPrecondition) so the
// caller falls back to the full parser; router-generated ids are plain
// ASCII and never hit that path.

#ifndef DPCLUSTX_SERVICE_JSON_RELAY_H_
#define DPCLUSTX_SERVICE_JSON_RELAY_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace dpclustx::service {

/// Byte geometry of the top-level "id" member of one scanned line.
struct RelayScan {
  std::string id;          // decoded string value of the top-level "id"
  size_t value_begin = 0;  // byte offset of the id value's opening quote
  size_t value_end = 0;    // one past the id value's closing quote
  size_t erase_begin = 0;  // byte range deleting the whole member,
  size_t erase_end = 0;    //   including exactly one separating comma
};

/// Scans one JSON object line for its top-level "id" member and validates
/// the line's structure (strings, nesting, final '}' with nothing after).
///   InvalidArgument  not an object / structurally torn / id not a string
///   NotFound         well-formed object with no top-level "id"
///   FailedPrecondition  id value contains escapes (caller must full-parse)
StatusOr<RelayScan> ScanTopLevelId(const std::string& line);

/// `line` with the id value's bytes replaced by `id_json` (the client id
/// already serialized, e.g. "\"42\"" or "7"). Everything outside
/// [value_begin, value_end) is copied verbatim.
std::string SpliceId(const std::string& line, const RelayScan& scan,
                     const std::string& id_json);

/// `line` with the whole "id" member (and one separating comma) removed —
/// for responses to clients that sent no id.
std::string EraseId(const std::string& line, const RelayScan& scan);

/// `line` (a JSON object) with a trace-context member `"_tc":<tc_json>`
/// inserted as the object's first member, without reparsing the payload.
/// `tc_json` is the already-serialized context value, canonically
/// `{"pid":"...","tid":"..."}` (Dump order: pid < tid).
///
/// Byte-identity contract (golden-tested like SpliceId): for any line
/// produced by JsonValue::Dump whose top-level keys all sort after "_tc",
/// the result equals parse → Set("_tc", tc) → Dump. That holds because
/// Dump emits keys in lexicographic order and '_' (0x5F) sorts before
/// every lowercase letter — all engine request keys are lowercase ASCII,
/// so "_tc" lands first. When the precondition fails the splice refuses
/// rather than produce non-canonical bytes:
///   InvalidArgument     not an object / structurally torn / trailing bytes
///   FailedPrecondition  an existing top-level "_tc" member, an escaped
///                       key, or a first key that does not sort after
///                       "_tc" — caller must fall back to the full parser
StatusOr<std::string> SpliceTraceContext(const std::string& line,
                                         const std::string& tc_json);

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_JSON_RELAY_H_
