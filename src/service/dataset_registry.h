// Shared, immutable dataset state for the explanation service.
//
// A production deployment loads each sensitive dataset once and serves many
// analysts against it. The registry owns that shared state: the columnar
// Dataset (immutable after registration), any number of named clustering
// views (labels + a precomputed StatsCache, built once and shared read-only
// by every request), and an optional per-dataset global privacy cap — a
// PrivacyBudget that every session's spending is *also* charged against, so
// the total ε released about one dataset is bounded across all tenants (the
// central-accounting discipline the DPM line of work argues for).
//
// Thread-safety: the registry and each entry are internally locked; Dataset,
// ClusteringView, and StatsCache are immutable once published and shared via
// shared_ptr, so request threads read them without synchronization. Streaming
// ingest keeps that discipline by copy-on-append: AppendRows builds a new
// dataset generation plus new views and swaps them in atomically with an
// epoch bump — readers holding the old generation are undisturbed.

#ifndef DPCLUSTX_SERVICE_DATASET_REGISTRY_H_
#define DPCLUSTX_SERVICE_DATASET_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "core/stats_cache.h"
#include "data/columnar_format.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "dp/privacy_budget.h"

namespace dpclustx::service {

/// One named clustering of a registered dataset: per-row labels plus the
/// per-(cluster, attribute) count cache every explanation request reuses.
/// Immutable once published. The StatsCache holds exact counts of the
/// sensitive data — it must never cross the protocol boundary; only DP
/// mechanism outputs derived from it do.
struct ClusteringView {
  std::string id;
  /// Human-readable method description ("k-means(k=5)").
  std::string description;
  /// Canonical config string ("method=k-means k=5 seed=7 eps=0"); identical
  /// re-registrations are idempotent, conflicting ones are rejected.
  std::string fingerprint;
  size_t num_clusters = 0;
  std::vector<ClusterId> labels;
  std::shared_ptr<const StatsCache> stats;
  /// The fitted clustering function, kept so appended rows can be labeled
  /// with the *same* model (assignment is pure per-row given the fitted
  /// state, so tail labels match what a full AssignAll would produce).
  /// Null for views restored from a snapshot — those must be re-clustered
  /// before the dataset accepts appends.
  std::shared_ptr<const ClusteringFunction> model;
};

/// A registered dataset plus its clusterings and optional global ε cap.
class DatasetEntry {
 public:
  /// `source` fingerprints where the data came from (e.g. "csv path=..." or
  /// "synthetic generator=... rows=... seed=...") so the registry can tell a
  /// re-registration of the same data from genuinely new data; empty means
  /// unknown. cap_epsilon <= 0 means uncapped.
  DatasetEntry(std::string name, std::string source, Dataset dataset,
               double cap_epsilon);

  /// Restore-time constructor: pins the registry uid to `uid` instead of
  /// drawing a fresh one. Release-cache keys embed the uid, so a restored
  /// entry must keep its pre-crash uid or every cached (paid-for) release
  /// would miss. Callers must also BumpUidFloor so later fresh entries
  /// cannot collide with restored uids.
  DatasetEntry(std::string name, std::string source, Dataset dataset,
               double cap_epsilon, uint64_t uid);

  /// Raises the process-wide uid counter to at least `floor` so uids minted
  /// after a restore never collide with pinned ones.
  static void BumpUidFloor(uint64_t floor);

  const std::string& name() const { return name_; }
  const std::string& source() const { return source_; }

  /// The current dataset generation. Appends swap in a new generation
  /// atomically; in-flight requests keep the shared_ptr they grabbed, so a
  /// request never sees rows change underneath it.
  std::shared_ptr<const Dataset> dataset() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dataset_;
  }

  /// Registry-unique id, distinct across re-registrations of the same name —
  /// cache keys embed it so a replaced dataset can never serve stale bytes.
  uint64_t uid() const { return uid_; }

  /// Append generation, bumped once per successful AppendRows. Release
  /// cache keys embed (uid, epoch), so an append invalidates exactly this
  /// dataset's cached releases and nothing else.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Restore-time only: pins the epoch saved in a snapshot so cache keys
  /// from before the crash keep matching.
  void PinEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }

  /// Outcome of one append batch.
  struct AppendResult {
    size_t num_rows = 0;  // total rows after the append
    uint64_t epoch = 0;   // new epoch
  };

  /// Appends `rows` (vectors of codes, validated against the schema) as one
  /// atomic batch: the dataset generation, every clustering view (tail rows
  /// labeled by the view's fitted model, StatsCache delta-updated exactly —
  /// see StatsCache::BuildAppended), and the epoch all advance together.
  /// Mapped datasets extend their DPXCOL file in place; heap datasets copy
  /// (O(base + tail) — fine for the modest sizes heap datasets are for).
  /// FailedPrecondition if any view lacks a fitted model (snapshot-restored
  /// views; re-cluster first). Appends to one entry are serialized.
  StatusOr<AppendResult> AppendRows(
      const std::vector<std::vector<ValueCode>>& rows,
      size_t num_threads = 0);

  /// Global cross-session cap, or nullptr when uncapped.
  PrivacyBudget* cap() const { return cap_.get(); }
  double cap_epsilon() const { return cap_epsilon_; }

  /// Publishes `view` under view->id. If the id already exists with the same
  /// fingerprint, returns the existing view (idempotent); a conflicting
  /// fingerprint is FailedPrecondition (views are immutable).
  StatusOr<std::shared_ptr<const ClusteringView>> PutClustering(
      std::shared_ptr<const ClusteringView> view);

  StatusOr<std::shared_ptr<const ClusteringView>> GetClustering(
      const std::string& id) const;

  std::vector<std::string> ClusteringIds() const;

  /// Every published view, in id order (snapshot harvest).
  std::vector<std::shared_ptr<const ClusteringView>> Clusterings() const;

  /// Dataset generation, views, and epoch from one locked instant — the
  /// snapshot harvester must not pair a post-append dataset with pre-append
  /// views (or vice versa). Null out-params are skipped.
  void SnapshotState(
      std::shared_ptr<const Dataset>* dataset,
      std::vector<std::shared_ptr<const ClusteringView>>* views,
      uint64_t* epoch) const;

 private:
  const std::string name_;
  const std::string source_;
  const uint64_t uid_;
  const double cap_epsilon_;
  const std::unique_ptr<PrivacyBudget> cap_;  // null when uncapped

  std::atomic<uint64_t> epoch_{0};
  std::mutex append_mutex_;  // serializes AppendRows end to end

  mutable std::mutex mutex_;
  std::shared_ptr<const Dataset> dataset_;  // guarded by mutex_
  std::map<std::string, std::shared_ptr<const ClusteringView>>
      clusterings_;  // guarded by mutex_
};

class DatasetRegistry {
 public:
  /// Registers `dataset` under `name` with the given source fingerprint
  /// (see DatasetEntry). An existing name is FailedPrecondition unless
  /// `replace` is set, in which case the old entry is detached (sessions
  /// already bound to it keep their reference and budget accounting, but no
  /// new sessions can reach it).
  ///
  /// The dataset ε cap is a property of the data, so a replacement cannot
  /// be used to reset it: unless both entries' sources are known and
  /// differ (genuinely new data), the new cap inherits the old cap's spent
  /// ε, and the cap total can be tightened but never raised or removed by
  /// re-registering.
  StatusOr<std::shared_ptr<DatasetEntry>> Register(const std::string& name,
                                                   const std::string& source,
                                                   Dataset dataset,
                                                   double cap_epsilon,
                                                   bool replace = false);

  /// Loads one of the synthetic substitutes: "diabetes", "census",
  /// "stackoverflow".
  StatusOr<std::shared_ptr<DatasetEntry>> RegisterSynthetic(
      const std::string& name, const std::string& generator, size_t rows,
      uint64_t seed, double cap_epsilon, bool replace = false);

  /// Loads a CSV table (schema inferred). `max_bytes` gates the file size
  /// like the service's max_request_bytes (0 = unlimited).
  StatusOr<std::shared_ptr<DatasetEntry>> RegisterCsv(const std::string& name,
                                                      const std::string& path,
                                                      double cap_epsilon,
                                                      bool replace = false,
                                                      size_t max_bytes = 0);

  /// Opens a DPXCOL file (data/columnar_format.h) via mmap, zero-copy. The
  /// entry's dataset reads straight from the page cache, so opening a
  /// full-scale file is O(header) and workers mapping the same file share
  /// physical pages. `verify` forces the O(data) integrity pass.
  StatusOr<std::shared_ptr<DatasetEntry>> RegisterColumnar(
      const std::string& name, const std::string& path, double cap_epsilon,
      bool replace = false, bool verify = false);

  StatusOr<std::shared_ptr<DatasetEntry>> Get(const std::string& name) const;

  /// Inserts a fully-built entry (snapshot restore). FailedPrecondition if
  /// the name is taken — restore targets an empty registry.
  Status RestoreEntry(std::shared_ptr<DatasetEntry> entry);

  std::vector<std::string> Names() const;
  /// Every live entry, in name order (snapshot harvest).
  std::vector<std::shared_ptr<DatasetEntry>> Entries() const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<DatasetEntry>> entries_;
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_DATASET_REGISTRY_H_
