#include "service/router_core.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dpclustx::service {

uint64_t RouterHash(const std::string& key) {
  // FNV-1a 64-bit, then a splitmix64-style finalizer. Raw FNV-1a is stable
  // and endianness-free but avalanches poorly on near-identical inputs —
  // the ring's vnode keys differ only in a numeric suffix, and without the
  // mix their points cluster badly enough to starve shards.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

HashRing::HashRing(std::vector<std::string> nodes, size_t vnodes)
    : nodes_(std::move(nodes)) {
  ring_.reserve(nodes_.size() * vnodes);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(
          RouterHash(nodes_[i] + "#" + std::to_string(v)), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

const std::string& HashRing::Route(const std::string& key) const {
  DPX_CHECK(!ring_.empty()) << "Route on an empty ring";
  const uint64_t h = RouterHash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, size_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap: the ring is circular
  return nodes_[it->second];
}

void SessionTable::Bind(const std::string& session,
                        const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mutex_);
  bindings_[session] = dataset;
}

void SessionTable::Unbind(const std::string& session) {
  std::lock_guard<std::mutex> lock(mutex_);
  bindings_.erase(session);
}

StatusOr<std::string> SessionTable::Lookup(const std::string& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = bindings_.find(session);
  if (it == bindings_.end()) {
    return Status::NotFound(
        "session '" + session +
        "' is not bound through this router (create_session must go "
        "through the router so it can learn the session's shard)");
  }
  return it->second;
}

size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bindings_.size();
}

int64_t Backoff::DelayMs(uint64_t attempt) const {
  if (attempt <= 1) return base_ms;
  // base * 2^(attempt-1) without overflow: stop doubling at the cap.
  int64_t delay = base_ms;
  for (uint64_t i = 1; i < attempt && delay < max_ms; ++i) delay *= 2;
  return std::min(delay, max_ms);
}

int64_t Backoff::JitteredDelayMs(uint64_t attempt, double unit_random) const {
  if (unit_random < 0.0) unit_random = 0.0;
  if (unit_random >= 1.0) unit_random = std::nextafter(1.0, 0.0);
  const double factor = 0.8 + 0.4 * unit_random;
  const auto jittered =
      static_cast<int64_t>(static_cast<double>(DelayMs(attempt)) * factor);
  return std::max<int64_t>(jittered, 1);
}

RouterCore::RouterCore(std::vector<std::string> shards, size_t vnodes)
    : ring_(std::move(shards), vnodes) {}

const std::string& RouterCore::ShardFor(const std::string& dataset) const {
  return ring_.Route(dataset);
}

StatusOr<RouteDecision> RouterCore::Classify(const JsonValue& request) {
  DPX_ASSIGN_OR_RETURN(const std::string op, request.GetString("op"));

  RouteDecision decision;

  if (op == "ping" || op == "stats" || op == "metrics" || op == "trace" ||
      op == "audit") {
    decision.kind = RouteKind::kBroadcast;
    return decision;
  }

  if (op == "save_snapshot" || op == "load_snapshot") {
    decision.kind = RouteKind::kRefused;
    return decision;
  }

  if (op == "load_dataset") {
    DPX_ASSIGN_OR_RETURN(decision.dataset, request.GetString("name"));
    decision.kind = RouteKind::kShard;
    return decision;
  }

  if (op == "schema" || op == "cluster" || op == "append_rows" ||
      op == "create_session") {
    DPX_ASSIGN_OR_RETURN(decision.dataset, request.GetString("dataset"));
    decision.kind = RouteKind::kShard;
    if (op == "create_session") {
      DPX_ASSIGN_OR_RETURN(const std::string session,
                           request.GetString("session"));
      sessions_.Bind(session, decision.dataset);
    }
    return decision;
  }

  if (op == "budget" || op == "size" || op == "close_session" ||
      op == "explain" || op == "hist") {
    DPX_ASSIGN_OR_RETURN(const std::string session,
                         request.GetString("session"));
    DPX_ASSIGN_OR_RETURN(decision.dataset, sessions_.Lookup(session));
    if (op == "close_session") {
      sessions_.Unbind(session);
      decision.kind = RouteKind::kShard;
    } else if (op == "explain" || op == "hist") {
      decision.kind = RouteKind::kReplicaRead;
    } else {
      decision.kind = RouteKind::kShard;
    }
    return decision;
  }

  decision.kind = RouteKind::kUnknownOp;
  return decision;
}

}  // namespace dpclustx::service
