// Result cache for released explanations.
//
// A DP release is data the framework has already paid ε for; re-serving the
// *same* release bytes is post-processing and free (paper Prop. 2.4). The
// cache keys on everything that determines the release exactly — dataset
// uid, clustering fingerprint, ε split, mechanism options, and seed — so a
// hit returns byte-identical output and charges zero additional ε. Distinct
// seeds are distinct releases and never collide, so caching cannot be used
// to average away noise.
//
// Bounded LRU; payloads are shared as immutable strings so hits copy nothing
// under the lock.

#ifndef DPCLUSTX_SERVICE_EXPLANATION_CACHE_H_
#define DPCLUSTX_SERVICE_EXPLANATION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dpclustx::service {

class ExplanationCache {
 public:
  explicit ExplanationCache(size_t capacity = 1024);

  /// Returns the cached payload (promoting it to most-recent) or nullptr.
  std::shared_ptr<const std::string> Get(const std::string& key);

  /// Inserts (or refreshes) `payload`, evicting the least-recently-used
  /// entry when over capacity.
  void Put(const std::string& key, std::string payload);

  /// Every cached (key, payload), least-recently-used first — so replaying
  /// the list through Put rebuilds the identical LRU order. Snapshot
  /// harvest; releases are already-paid-for DP outputs, safe to persist.
  std::vector<std::pair<std::string, std::string>> Entries() const;

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const std::string> payload;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Node> lru_;  // front = most recently used; guarded by mutex_
  std::unordered_map<std::string, std::list<Node>::iterator>
      index_;  // guarded by mutex_
  uint64_t hits_ = 0;       // guarded by mutex_
  uint64_t misses_ = 0;     // guarded by mutex_
  uint64_t evictions_ = 0;  // guarded by mutex_
};

}  // namespace dpclustx::service

#endif  // DPCLUSTX_SERVICE_EXPLANATION_CACHE_H_
