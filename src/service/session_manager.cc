#include "service/session_manager.h"

#include <cstdio>

#include "common/logging.h"

namespace dpclustx::service {

ServiceSession::ServiceSession(std::string id,
                               std::shared_ptr<DatasetEntry> dataset,
                               double total_epsilon)
    : id_(std::move(id)), dataset_(std::move(dataset)),
      budget_(total_epsilon) {
  DPX_CHECK(dataset_ != nullptr) << "session needs a dataset";
}

Status ServiceSession::Spend(double epsilon, const std::string& label) {
  if (epsilon <= 0.0) {
    // Malformed request, not a ledger event: nothing to audit.
    return Status::InvalidArgument("epsilon must be positive (label '" +
                                   label + "')");
  }
  // Shared gate first (never blocks other spenders), own lock second. A
  // snapshot harvester holding the gate exclusively therefore sees either
  // none or all of {session charge, cap charge, audit record}.
  std::shared_lock<std::shared_mutex> gate;
  if (spend_gate_ != nullptr) {
    gate = std::shared_lock<std::shared_mutex>(*spend_gate_);
  }
  std::lock_guard<std::mutex> lock(spend_mutex_);
  if (!budget_.CanSpend(epsilon)) {
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "session '%s': spending %.6g for '%s' exceeds the session "
                  "budget (spent %.6g of %.6g)",
                  id_.c_str(), epsilon, label.c_str(),
                  budget_.spent_epsilon(), budget_.total_epsilon());
    if (audit_log_ != nullptr) {
      audit_log_->Record(id_, dataset_->name(), label, epsilon,
                         /*granted=*/false, "session budget");
    }
    return Status::OutOfBudget(msg);
  }
  PrivacyBudget* cap = dataset_->cap();
  if (cap != nullptr) {
    const Status capped = cap->Spend(epsilon, id_ + "/" + label);
    if (!capped.ok()) {
      if (audit_log_ != nullptr) {
        audit_log_->Record(id_, dataset_->name(), label, epsilon,
                           /*granted=*/false, "dataset cap");
      }
      return Status::OutOfBudget("dataset '" + dataset_->name() +
                                 "' global cap: " + capped.message());
    }
  }
  // Cannot fail: spend_mutex_ serializes this session's spends, so the
  // CanSpend check above still holds.
  const Status charged = budget_.Spend(epsilon, label);
  DPX_CHECK(charged.ok()) << charged.ToString();
  // Audited under spend_mutex_, after the charge: the log sees this
  // session's grants in ledger order (see set_audit_log).
  if (audit_log_ != nullptr) {
    audit_log_->Record(id_, dataset_->name(), label, epsilon,
                       /*granted=*/true);
  }
  return Status::OK();
}

Status ServiceSession::RestoreCharge(double epsilon,
                                     const std::string& label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument(
        "restored ledger entry has non-positive epsilon (label '" + label +
        "')");
  }
  std::lock_guard<std::mutex> lock(spend_mutex_);
  // Same code path as the original charge (budget_.Spend appends the entry
  // and adds to the running total), so an in-order replay reproduces the
  // exact floating-point sum. No cap charge, no audit record: both already
  // exist in their own saved state.
  return budget_.Spend(epsilon, label);
}

StatusOr<std::shared_ptr<ServiceSession>> SessionManager::Create(
    const std::string& id, std::shared_ptr<DatasetEntry> dataset,
    double total_epsilon) {
  if (id.empty()) {
    return Status::InvalidArgument("session id must be non-empty");
  }
  if (dataset == nullptr) {
    return Status::InvalidArgument("session needs a dataset");
  }
  if (total_epsilon <= 0.0) {
    return Status::InvalidArgument("session budget must be positive");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.count(id) != 0) {
    return Status::FailedPrecondition("session '" + id +
                                      "' already exists");
  }
  auto session =
      std::make_shared<ServiceSession>(id, std::move(dataset), total_epsilon);
  session->set_audit_log(audit_log_);
  session->set_spend_gate(&spend_gate_);
  sessions_.emplace(id, session);
  return session;
}

StatusOr<std::shared_ptr<ServiceSession>> SessionManager::Get(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session '" + id + "'");
  }
  return it->second;
}

Status SessionManager::Close(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session '" + id + "'");
  }
  return Status::OK();
}

std::vector<std::string> SessionManager::Ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

std::vector<std::shared_ptr<ServiceSession>> SessionManager::Sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<ServiceSession>> sessions;
  sessions.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) sessions.push_back(session);
  return sessions;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

void SessionManager::set_audit_log(obs::AuditLog* log) {
  std::lock_guard<std::mutex> lock(mutex_);
  audit_log_ = log;
}

}  // namespace dpclustx::service
