// One-shot top-k mechanism (Durfee & Rogers 2019).
//
// Adds independent Gumbel noise of scale σ = 2·Δ·k/ε to every candidate's
// score *once*, sorts by noisy score, and returns the top k. The output
// sequence is distributed identically to k iterated exponential-mechanism
// draws at ε/k each (without replacement), so the whole release satisfies
// ε-DP by sequential composition — at the cost of one noisy pass instead of
// k (paper §2.1). This is the engine of DPClustX Stage-1.

#ifndef DPCLUSTX_DP_TOPK_H_
#define DPCLUSTX_DP_TOPK_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dpclustx {

/// Returns the indices of the k selected candidates, ordered by decreasing
/// noisy score. Requires 1 <= k <= scores.size(), sensitivity > 0,
/// epsilon > 0.
StatusOr<std::vector<size_t>> OneShotTopK(const std::vector<double>& scores,
                                          double sensitivity, double epsilon,
                                          size_t k, Rng& rng);

/// Reference implementation of top-k as k iterated exponential mechanisms at
/// ε/k each, removing the winner between rounds. Distributionally identical
/// to OneShotTopK (Durfee & Rogers) but re-noises the remaining candidates
/// every round — the O(k·m) baseline the one-shot mechanism replaces. Kept
/// for tests and the ablation bench.
StatusOr<std::vector<size_t>> IteratedExponentialTopK(
    const std::vector<double>& scores, double sensitivity, double epsilon,
    size_t k, Rng& rng);

/// Additive-error bound for the l-th selected item (paper Prop. 5.1(2),
/// specialized to one cluster): with probability >= 1 − e^{−t}, the l-th
/// selected score is at least OPT_l − (2·Δ·k/ε)·(ln m + t), where m is the
/// number of candidates.
double OneShotTopKErrorBound(size_t num_candidates, double sensitivity,
                             double epsilon, size_t k, double t);

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_TOPK_H_
