#include "dp/sparse_vector.h"

namespace dpclustx {

StatusOr<SparseVector> SparseVector::Create(double threshold,
                                            double sensitivity,
                                            double epsilon,
                                            size_t max_positives, Rng* rng) {
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("SVT: sensitivity must be positive");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("SVT: epsilon must be positive");
  }
  if (max_positives == 0) {
    return Status::InvalidArgument("SVT: max_positives must be >= 1");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("SVT: rng must not be null");
  }
  // Standard AboveThreshold calibration (Dwork & Roth, Algorithm 2,
  // generalized to c positives): threshold noise Lap(2Δ/ε₁) with ε₁ = ε/2,
  // per-query noise Lap(4cΔ/ε₂) with ε₂ = ε/2.
  const double eps_threshold = epsilon / 2.0;
  const double eps_answers = epsilon / 2.0;
  const double noisy_threshold =
      threshold + rng->Laplace(2.0 * sensitivity / eps_threshold);
  const double answer_scale =
      4.0 * static_cast<double>(max_positives) * sensitivity / eps_answers;
  return SparseVector(noisy_threshold, answer_scale, max_positives, rng);
}

StatusOr<bool> SparseVector::Query(double value) {
  if (positives_reported_ >= max_positives_) {
    return Status::FailedPrecondition(
        "SVT: all above-threshold reports are spent");
  }
  const double noisy_value = value + rng_->Laplace(answer_scale_);
  if (noisy_value >= noisy_threshold_) {
    ++positives_reported_;
    return true;
  }
  return false;
}

StatusOr<std::vector<size_t>> SvtAboveThreshold(
    const std::vector<double>& values, double threshold, double sensitivity,
    double epsilon, size_t max_positives, Rng& rng) {
  DPX_ASSIGN_OR_RETURN(
      SparseVector svt,
      SparseVector::Create(threshold, sensitivity, epsilon, max_positives,
                           &rng));
  std::vector<size_t> positives;
  for (size_t i = 0; i < values.size(); ++i) {
    if (svt.positives_remaining() == 0) break;
    DPX_ASSIGN_OR_RETURN(const bool above, svt.Query(values[i]));
    if (above) positives.push_back(i);
  }
  return positives;
}

}  // namespace dpclustx
