// Differentially private histogram release — the paper's M_hist(π_A(D), ε).
//
// Takes an exact histogram over a data-independent domain and perturbs every
// bin with independent sensitivity-1 noise. Adding or removing one tuple
// changes exactly one bin by 1 (unbounded-DP neighbors), so per-bin noise at
// ε yields an ε-DP release of the whole histogram. The default noise is the
// two-sided geometric mechanism (Ghosh et al.), matching the paper's
// DiffPrivLib configuration; Laplace is available as an alternative.
// DPClustX treats this mechanism as a black box (paper §2.1).

#ifndef DPCLUSTX_DP_DP_HISTOGRAM_H_
#define DPCLUSTX_DP_DP_HISTOGRAM_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/histogram.h"

namespace dpclustx {

/// Pluggable noise family for histogram release.
enum class HistogramNoise {
  kGeometric,     // integer noise, P(Z=z) ∝ exp(−ε|z|)  (default)
  kLaplace,       // real noise, Lap(1/ε)
  kHierarchical,  // noisy aggregation tree + consistency (Hay et al. 2010);
                  // see dp/hierarchical_histogram.h
};

/// Per-mechanism options.
struct DpHistogramOptions {
  HistogramNoise noise = HistogramNoise::kGeometric;
  /// Clamp noisy bins at zero (standard post-processing; free under DP).
  bool clamp_non_negative = true;
};

/// Releases an ε-DP noisy copy of `exact`. Requires epsilon > 0 and a
/// non-empty domain.
StatusOr<Histogram> ReleaseDpHistogram(const Histogram& exact, double epsilon,
                                       Rng& rng,
                                       const DpHistogramOptions& options = {});

/// Symmetric per-bin noise quantile of one release: the smallest t with
/// P(|noise| <= t) >= confidence for the given mechanism at `epsilon`
/// (per-bin, no union bound). Lets presentation layers annotate released
/// bins with "±t @confidence". Hierarchical releases are approximated by
/// their per-level Laplace scale times the tree height (an upper bound).
double DpHistogramBinNoiseQuantile(HistogramNoise noise, size_t domain_size,
                                   double epsilon, double confidence);

/// Utility bound: the smallest t such that *every* bin's absolute error is
/// at most t with probability >= confidence, under the geometric mechanism
/// (union bound over `domain_size` bins). Lets callers translate an accuracy
/// target into a required ε, as the paper notes such mechanisms allow.
double DpHistogramMaxErrorBound(size_t domain_size, double epsilon,
                                double confidence);

/// Smallest ε so that DpHistogramMaxErrorBound(domain_size, ε, confidence)
/// <= max_error. Requires max_error > 0.
double EpsilonForDpHistogramError(size_t domain_size, double max_error,
                                  double confidence);

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_DP_HISTOGRAM_H_
