#include "dp/privacy_budget.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx {

namespace {
// Absolute slack for floating-point budget comparisons so that, e.g., three
// charges of 0.1 against a total of 0.3 never spuriously fail.
constexpr double kBudgetSlack = 1e-9;
}  // namespace

PrivacyBudget::PrivacyBudget(double total_epsilon) : total_(total_epsilon) {
  DPX_CHECK_GT(total_epsilon, 0.0) << "privacy budget must be positive";
}

Status PrivacyBudget::Spend(double epsilon, const std::string& label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive (label '" +
                                   label + "')");
  }
  if (spent_ + epsilon > total_ + kBudgetSlack) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "spending %.6g for '%s' exceeds budget (spent %.6g of %.6g)",
                  epsilon, label.c_str(), spent_, total_);
    return Status::OutOfBudget(msg);
  }
  spent_ += epsilon;
  ledger_.push_back({label, epsilon});
  return Status::OK();
}

Status PrivacyBudget::SpendParallel(
    const std::vector<double>& per_partition_epsilons,
    const std::string& label) {
  if (per_partition_epsilons.empty()) {
    return Status::InvalidArgument("SpendParallel: empty epsilon list");
  }
  for (double eps : per_partition_epsilons) {
    if (eps <= 0.0) {
      return Status::InvalidArgument(
          "SpendParallel: all epsilons must be positive");
    }
  }
  const double max_eps = *std::max_element(per_partition_epsilons.begin(),
                                           per_partition_epsilons.end());
  return Spend(max_eps, label + " [parallel x" +
                            std::to_string(per_partition_epsilons.size()) +
                            "]");
}

std::string PrivacyBudget::Report() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "privacy budget: spent %.6g / %.6g epsilon\n", spent_, total_);
  out += line;
  for (const LedgerEntry& entry : ledger_) {
    std::snprintf(line, sizeof(line), "  %-40s %.6g\n", entry.label.c_str(),
                  entry.epsilon);
    out += line;
  }
  return out;
}

}  // namespace dpclustx
