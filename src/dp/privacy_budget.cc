#include "dp/privacy_budget.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx {

namespace {
// Relative slack for floating-point budget comparisons: summing many small
// charges accumulates rounding error proportional to the total, so an exact
// spend-down (e.g. 10^6 charges of total/10^6) must not spuriously fail. The
// max(1, total) floor keeps tiny budgets (ε ≪ 1) from demanding sub-ulp
// precision.
constexpr double kBudgetRelTolerance = 1e-9;

double BudgetSlack(double total) {
  return kBudgetRelTolerance * std::max(1.0, total);
}
}  // namespace

PrivacyBudget::PrivacyBudget(double total_epsilon) : total_(total_epsilon) {
  DPX_CHECK_GT(total_epsilon, 0.0) << "privacy budget must be positive";
}

double PrivacyBudget::spent_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spent_;
}

double PrivacyBudget::remaining_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::max(0.0, total_ - spent_);
}

Status PrivacyBudget::Spend(double epsilon, const std::string& label) {
  // The finite check must be explicit: a NaN charge passes every comparison
  // below (all false) and would poison spent_ for the ledger's lifetime.
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "epsilon must be finite and positive (label '" + label + "')");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (spent_ + epsilon > total_ + BudgetSlack(total_)) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "spending %.6g for '%s' exceeds budget (spent %.6g of %.6g)",
                  epsilon, label.c_str(), spent_, total_);
    return Status::OutOfBudget(msg);
  }
  // Clamp so drift within the tolerance cannot leave spent_ > total_ (and
  // remaining_epsilon() reporting a negative as zero forever after).
  spent_ = std::min(spent_ + epsilon, total_);
  ledger_.push_back({label, epsilon});
  return Status::OK();
}

bool PrivacyBudget::CanSpend(double epsilon) const {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return spent_ + epsilon <= total_ + BudgetSlack(total_);
}

Status PrivacyBudget::SpendParallel(
    const std::vector<double>& per_partition_epsilons,
    const std::string& label) {
  if (per_partition_epsilons.empty()) {
    return Status::InvalidArgument("SpendParallel: empty epsilon list");
  }
  for (double eps : per_partition_epsilons) {
    if (!std::isfinite(eps) || eps <= 0.0) {
      return Status::InvalidArgument(
          "SpendParallel: all epsilons must be finite and positive");
    }
  }
  const double max_eps = *std::max_element(per_partition_epsilons.begin(),
                                           per_partition_epsilons.end());
  return Spend(max_eps, label + " [parallel x" +
                            std::to_string(per_partition_epsilons.size()) +
                            "]");
}

std::vector<PrivacyBudget::LedgerEntry> PrivacyBudget::ledger() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ledger_;
}

std::string PrivacyBudget::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "privacy budget: spent %.6g / %.6g epsilon\n", spent_, total_);
  out += line;
  for (const LedgerEntry& entry : ledger_) {
    std::snprintf(line, sizeof(line), "  %-40s %.6g\n", entry.label.c_str(),
                  entry.epsilon);
    out += line;
  }
  return out;
}

}  // namespace dpclustx
