#include "dp/exponential.h"

#include <cmath>
#include <limits>

namespace dpclustx {

StatusOr<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                      double sensitivity, double epsilon,
                                      Rng& rng) {
  if (scores.empty()) {
    return Status::InvalidArgument("ExponentialMechanism: no candidates");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "ExponentialMechanism: sensitivity must be positive");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument(
        "ExponentialMechanism: epsilon must be positive");
  }
  // Gumbel-max trick: P(argmax_i(a_i + G_i) = j) = exp(a_j)/Σexp(a_i) for
  // iid standard Gumbel G_i, which is exactly the EM distribution with
  // a_i = ε·score_i/(2Δ).
  const double scale = epsilon / (2.0 * sensitivity);
  size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < scores.size(); ++i) {
    const double value = scale * scores[i] + rng.Gumbel(1.0);
    if (value > best_value) {
      best_value = value;
      best = i;
    }
  }
  return best;
}

double ExponentialMechanismErrorBound(size_t num_candidates,
                                      double sensitivity, double epsilon,
                                      double t) {
  return (2.0 * sensitivity / epsilon) *
         (std::log(static_cast<double>(num_candidates)) + t);
}

}  // namespace dpclustx
