#include "dp/eda_session.h"

#include "dp/mechanisms.h"

namespace dpclustx {

StatusOr<EdaSession> EdaSession::Open(const Dataset* dataset,
                                      std::vector<uint32_t> labels,
                                      size_t num_clusters,
                                      PrivacyBudget* budget, uint64_t seed) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must not be null");
  }
  if (budget == nullptr) {
    return Status::InvalidArgument("budget must not be null");
  }
  if (labels.size() != dataset->num_rows()) {
    return Status::InvalidArgument("labels must cover every row");
  }
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  for (uint32_t label : labels) {
    if (label >= num_clusters) {
      return Status::InvalidArgument("label out of range");
    }
  }
  return EdaSession(dataset, std::move(labels), num_clusters, budget, seed);
}

Status EdaSession::ValidateQuery(uint32_t cluster, AttrIndex attr) const {
  if (cluster >= num_clusters_) {
    return Status::InvalidArgument("cluster " + std::to_string(cluster) +
                                   " out of range");
  }
  if (attr >= dataset_->num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  return Status::OK();
}

StatusOr<Histogram> EdaSession::QueryClusterHistogram(uint32_t cluster,
                                                      AttrIndex attr,
                                                      double epsilon) {
  ++queries_issued_;
  DPX_RETURN_IF_ERROR(ValidateQuery(cluster, attr));
  DPX_RETURN_IF_ERROR(budget_->Spend(
      epsilon, "eda/cluster-histogram c=" + std::to_string(cluster) +
                   " attr=" + dataset_->schema().attribute(attr).name()));
  const std::vector<Histogram> groups =
      dataset_->ComputeGroupHistograms(attr, labels_, num_clusters_);
  return ReleaseDpHistogram(groups[cluster], epsilon, rng_,
                            histogram_options_);
}

StatusOr<std::vector<Histogram>> EdaSession::QueryAllClusterHistograms(
    AttrIndex attr, double epsilon) {
  ++queries_issued_;
  DPX_RETURN_IF_ERROR(ValidateQuery(0, attr));
  // Disjoint clusters: one parallel-composition charge covers the round.
  DPX_RETURN_IF_ERROR(budget_->SpendParallel(
      std::vector<double>(num_clusters_, epsilon),
      "eda/all-cluster-histograms attr=" +
          dataset_->schema().attribute(attr).name()));
  const std::vector<Histogram> groups =
      dataset_->ComputeGroupHistograms(attr, labels_, num_clusters_);
  std::vector<Histogram> noisy;
  noisy.reserve(groups.size());
  for (const Histogram& group : groups) {
    DPX_ASSIGN_OR_RETURN(
        Histogram h,
        ReleaseDpHistogram(group, epsilon, rng_, histogram_options_));
    noisy.push_back(std::move(h));
  }
  return noisy;
}

StatusOr<Histogram> EdaSession::QueryFullHistogram(AttrIndex attr,
                                                   double epsilon) {
  ++queries_issued_;
  DPX_RETURN_IF_ERROR(ValidateQuery(0, attr));
  DPX_RETURN_IF_ERROR(budget_->Spend(
      epsilon, "eda/full-histogram attr=" +
                   dataset_->schema().attribute(attr).name()));
  return ReleaseDpHistogram(dataset_->ComputeHistogram(attr), epsilon, rng_,
                            histogram_options_);
}

StatusOr<double> EdaSession::QueryClusterSize(uint32_t cluster,
                                              double epsilon) {
  ++queries_issued_;
  DPX_RETURN_IF_ERROR(ValidateQuery(cluster, 0));
  DPX_RETURN_IF_ERROR(budget_->Spend(
      epsilon, "eda/cluster-size c=" + std::to_string(cluster)));
  int64_t count = 0;
  for (uint32_t label : labels_) {
    if (label == cluster) ++count;
  }
  DPX_ASSIGN_OR_RETURN(
      const int64_t noisy,
      GeometricMechanism(count, /*sensitivity=*/1.0, epsilon, rng_));
  return static_cast<double>(noisy);
}

}  // namespace dpclustx
