// Privacy-budget accounting.
//
// A PrivacyBudget tracks ε spent by a sequence of mechanism invocations under
// sequential composition (Prop. 2.5 of the paper): total ε is the sum of the
// ε's of the sequential steps. Parallel composition (disjoint inputs cost
// max ε, not the sum) is exposed via SpendParallel, which charges the maximum
// of a group of per-partition costs. Post-processing is free and never
// touches the accountant.
//
// The accountant is thread-safe: Spend is an atomic check-and-charge, so
// concurrent callers (the service layer shares one accountant per dataset
// across sessions) can never jointly overdraw the budget. Accessors take the
// same lock; ledger() returns a snapshot.

#ifndef DPCLUSTX_DP_PRIVACY_BUDGET_H_
#define DPCLUSTX_DP_PRIVACY_BUDGET_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpclustx {

class PrivacyBudget {
 public:
  /// One charged step, for audit output.
  struct LedgerEntry {
    std::string label;
    double epsilon;
  };

  /// Accountant with `total_epsilon` to spend. Requires total_epsilon > 0.
  explicit PrivacyBudget(double total_epsilon);

  PrivacyBudget(const PrivacyBudget&) = delete;
  PrivacyBudget& operator=(const PrivacyBudget&) = delete;

  double total_epsilon() const { return total_; }
  double spent_epsilon() const;
  /// Never negative: summing many small charges can overshoot `total` by a
  /// few ulps, which is clamped away rather than reported as negative budget.
  double remaining_epsilon() const;

  /// Charges `epsilon` under sequential composition. Returns OutOfBudget
  /// (charging nothing) if it would exceed the total beyond a 1e-9 relative
  /// tolerance (so an exact spend-down of the budget in many small steps
  /// never fails on floating-point drift); InvalidArgument for non-positive
  /// epsilon. Atomic check-and-charge under concurrency.
  Status Spend(double epsilon, const std::string& label);

  /// True when Spend(epsilon, ...) would currently succeed. Advisory under
  /// concurrency unless the caller serializes spenders externally (the
  /// service layer holds a per-session lock across CanSpend + Spend).
  bool CanSpend(double epsilon) const;

  /// Charges max(per_partition_epsilons) — parallel composition over disjoint
  /// data partitions. Requires a non-empty list of positive epsilons.
  Status SpendParallel(const std::vector<double>& per_partition_epsilons,
                       const std::string& label);

  /// Snapshot of the charges so far.
  std::vector<LedgerEntry> ledger() const;

  /// Multi-line, human-readable spend report.
  std::string Report() const;

 private:
  const double total_;
  mutable std::mutex mutex_;
  double spent_ = 0.0;              // guarded by mutex_
  std::vector<LedgerEntry> ledger_;  // guarded by mutex_
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_PRIVACY_BUDGET_H_
