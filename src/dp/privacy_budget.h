// Privacy-budget accounting.
//
// A PrivacyBudget tracks ε spent by a sequence of mechanism invocations under
// sequential composition (Prop. 2.5 of the paper): total ε is the sum of the
// ε's of the sequential steps. Parallel composition (disjoint inputs cost
// max ε, not the sum) is exposed via SpendParallel, which charges the maximum
// of a group of per-partition costs. Post-processing is free and never
// touches the accountant.

#ifndef DPCLUSTX_DP_PRIVACY_BUDGET_H_
#define DPCLUSTX_DP_PRIVACY_BUDGET_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dpclustx {

class PrivacyBudget {
 public:
  /// One charged step, for audit output.
  struct LedgerEntry {
    std::string label;
    double epsilon;
  };

  /// Accountant with `total_epsilon` to spend. Requires total_epsilon > 0.
  explicit PrivacyBudget(double total_epsilon);

  double total_epsilon() const { return total_; }
  double spent_epsilon() const { return spent_; }
  double remaining_epsilon() const { return total_ - spent_; }

  /// Charges `epsilon` under sequential composition. Returns OutOfBudget
  /// (charging nothing) if it would exceed the total; InvalidArgument for
  /// non-positive epsilon.
  Status Spend(double epsilon, const std::string& label);

  /// Charges max(per_partition_epsilons) — parallel composition over disjoint
  /// data partitions. Requires a non-empty list of positive epsilons.
  Status SpendParallel(const std::vector<double>& per_partition_epsilons,
                       const std::string& label);

  const std::vector<LedgerEntry>& ledger() const { return ledger_; }

  /// Multi-line, human-readable spend report.
  std::string Report() const;

 private:
  double total_;
  double spent_ = 0.0;
  std::vector<LedgerEntry> ledger_;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_PRIVACY_BUDGET_H_
