#include "dp/mechanisms.h"

#include <cmath>

#include "common/logging.h"

namespace dpclustx {

namespace {

// Shared parameter gate: refusing (rather than aborting) on a bad Δ or ε
// keeps a hostile request from taking down the process, and drawing no
// noise on refusal keeps the refusal itself free of privacy cost. NaN
// must be caught explicitly — every comparison against it is false.
Status ValidateNoiseParams(const char* mechanism, double sensitivity,
                           double epsilon) {
  if (!std::isfinite(sensitivity) || sensitivity <= 0.0) {
    return Status::InvalidArgument(
        std::string(mechanism) + ": sensitivity must be finite and positive");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        std::string(mechanism) + ": epsilon must be finite and positive");
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> LaplaceMechanism(double true_value, double sensitivity,
                                  double epsilon, Rng& rng) {
  DPX_RETURN_IF_ERROR(ValidateNoiseParams("LaplaceMechanism", sensitivity,
                                          epsilon));
  return true_value + rng.Laplace(sensitivity / epsilon);
}

StatusOr<int64_t> GeometricMechanism(int64_t true_count, double sensitivity,
                                     double epsilon, Rng& rng) {
  DPX_RETURN_IF_ERROR(ValidateNoiseParams("GeometricMechanism", sensitivity,
                                          epsilon));
  return true_count + rng.TwoSidedGeometric(epsilon / sensitivity);
}

double LaplaceNoiseQuantile(double sensitivity, double epsilon,
                            double confidence) {
  DPX_CHECK_GT(sensitivity, 0.0);
  DPX_CHECK_GT(epsilon, 0.0);
  DPX_CHECK(confidence > 0.0 && confidence < 1.0);
  // P(|Lap(b)| <= t) = 1 − exp(−t/b)  =>  t = −b·ln(1 − confidence).
  const double scale = sensitivity / epsilon;
  return -scale * std::log(1.0 - confidence);
}

double EpsilonForLaplaceError(double sensitivity, double max_error,
                              double confidence) {
  DPX_CHECK_GT(sensitivity, 0.0);
  DPX_CHECK_GT(max_error, 0.0);
  DPX_CHECK(confidence > 0.0 && confidence < 1.0);
  // Invert LaplaceNoiseQuantile for epsilon.
  return -sensitivity * std::log(1.0 - confidence) / max_error;
}

}  // namespace dpclustx
