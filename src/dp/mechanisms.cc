#include "dp/mechanisms.h"

#include <cmath>

#include "common/logging.h"

namespace dpclustx {

double LaplaceMechanism(double true_value, double sensitivity, double epsilon,
                        Rng& rng) {
  DPX_CHECK_GT(sensitivity, 0.0);
  DPX_CHECK_GT(epsilon, 0.0);
  return true_value + rng.Laplace(sensitivity / epsilon);
}

int64_t GeometricMechanism(int64_t true_count, double sensitivity,
                           double epsilon, Rng& rng) {
  DPX_CHECK_GT(sensitivity, 0.0);
  DPX_CHECK_GT(epsilon, 0.0);
  return true_count + rng.TwoSidedGeometric(epsilon / sensitivity);
}

double LaplaceNoiseQuantile(double sensitivity, double epsilon,
                            double confidence) {
  DPX_CHECK_GT(sensitivity, 0.0);
  DPX_CHECK_GT(epsilon, 0.0);
  DPX_CHECK(confidence > 0.0 && confidence < 1.0);
  // P(|Lap(b)| <= t) = 1 − exp(−t/b)  =>  t = −b·ln(1 − confidence).
  const double scale = sensitivity / epsilon;
  return -scale * std::log(1.0 - confidence);
}

double EpsilonForLaplaceError(double sensitivity, double max_error,
                              double confidence) {
  DPX_CHECK_GT(sensitivity, 0.0);
  DPX_CHECK_GT(max_error, 0.0);
  DPX_CHECK(confidence > 0.0 && confidence < 1.0);
  // Invert LaplaceNoiseQuantile for epsilon.
  return -sensitivity * std::log(1.0 - confidence) / max_error;
}

}  // namespace dpclustx
