#include "dp/hierarchical_histogram.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace dpclustx {

namespace {

// Smallest power of two >= n.
size_t PowerOfTwoCeiling(size_t n) {
  size_t m = 1;
  while (m < n) m <<= 1;
  return m;
}

}  // namespace

StatusOr<Histogram> ReleaseHierarchicalDpHistogram(
    const Histogram& exact, double epsilon, Rng& rng,
    const HierarchicalHistogramOptions& options) {
  DPX_ASSIGN_OR_RETURN(HierarchicalHistogram released,
                       HierarchicalHistogram::Release(exact, epsilon, rng,
                                                      options));
  return released.leaves();
}

StatusOr<HierarchicalHistogram> HierarchicalHistogram::Release(
    const Histogram& exact, double epsilon, Rng& rng,
    const HierarchicalHistogramOptions& options) {
  const size_t domain = exact.domain_size();
  if (domain == 0) {
    return Status::InvalidArgument("hierarchical release: empty domain");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument(
        "hierarchical release: epsilon must be positive");
  }

  // Heap-layout complete binary tree over the padded domain: internal nodes
  // 1..m-1, leaves m..2m-1 (padding bins are structurally zero but noised
  // like real bins, which costs accuracy, never privacy).
  const size_t m = PowerOfTwoCeiling(domain);
  const size_t levels =
      static_cast<size_t>(std::llround(std::log2(m))) + 1;
  std::vector<double> noisy(2 * m, 0.0);

  // Exact node counts.
  for (size_t i = 0; i < domain; ++i) noisy[m + i] = exact.bin(i);
  for (size_t v = m - 1; v >= 1; --v) {
    noisy[v] = noisy[2 * v] + noisy[2 * v + 1];
  }
  // One tuple changes exactly one node per level, so releasing every level
  // at ε/levels composes to ε overall.
  const double scale = static_cast<double>(levels) / epsilon;
  for (size_t v = 1; v < 2 * m; ++v) noisy[v] += rng.Laplace(scale);

  // Constrained inference, up pass: z[v] blends the node's own noisy count
  // with its children's aggregated estimate, weighted by subtree size
  // (Hay et al., §4.1, fanout 2). subtree_height is 1 at the leaves.
  std::vector<double> z(2 * m, 0.0);
  for (size_t i = 0; i < m; ++i) z[m + i] = noisy[m + i];
  std::vector<double> pow2(levels + 1, 1.0);
  for (size_t k = 1; k <= levels; ++k) pow2[k] = 2.0 * pow2[k - 1];
  size_t level_start = m / 2;
  size_t subtree_height = 2;
  while (level_start >= 1) {
    for (size_t v = level_start; v < 2 * level_start; ++v) {
      const double lk = pow2[subtree_height];
      const double lk1 = pow2[subtree_height - 1];
      z[v] = ((lk - lk1) / (lk - 1.0)) * noisy[v] +
             ((lk1 - 1.0) / (lk - 1.0)) * (z[2 * v] + z[2 * v + 1]);
    }
    level_start /= 2;
    ++subtree_height;
  }

  // Down pass: distribute each parent's residual equally to its children,
  // yielding the least-squares consistent tree.
  std::vector<double> consistent(2 * m, 0.0);
  consistent[1] = z[1];
  for (size_t v = 1; v < m; ++v) {
    const double residual =
        0.5 * (consistent[v] - (z[2 * v] + z[2 * v + 1]));
    consistent[2 * v] = z[2 * v] + residual;
    consistent[2 * v + 1] = z[2 * v + 1] + residual;
  }

  Histogram leaves(domain);
  for (size_t i = 0; i < domain; ++i) {
    double value = consistent[m + i];
    if (options.clamp_non_negative) value = std::max(0.0, value);
    leaves.set_bin(static_cast<ValueCode>(i), value);
  }
  return HierarchicalHistogram(std::move(leaves));
}

double HierarchicalHistogram::RangeQuery(ValueCode lo, ValueCode hi) const {
  DPX_CHECK_LE(lo, hi);
  DPX_CHECK_LE(hi, leaves_.domain_size());
  double total = 0.0;
  for (ValueCode code = lo; code < hi; ++code) total += leaves_.bin(code);
  return total;
}

}  // namespace dpclustx
