#include "dp/dp_histogram.h"

#include <cmath>

#include "dp/hierarchical_histogram.h"
#include "dp/mechanisms.h"

namespace dpclustx {

StatusOr<Histogram> ReleaseDpHistogram(const Histogram& exact, double epsilon,
                                       Rng& rng,
                                       const DpHistogramOptions& options) {
  if (exact.domain_size() == 0) {
    return Status::InvalidArgument("ReleaseDpHistogram: empty domain");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument(
        "ReleaseDpHistogram: epsilon must be positive");
  }
  if (options.noise == HistogramNoise::kHierarchical) {
    HierarchicalHistogramOptions tree_options;
    tree_options.clamp_non_negative = options.clamp_non_negative;
    return ReleaseHierarchicalDpHistogram(exact, epsilon, rng, tree_options);
  }
  Histogram noisy(exact.domain_size());
  for (size_t i = 0; i < exact.domain_size(); ++i) {
    const auto code = static_cast<ValueCode>(i);
    double value = 0.0;
    switch (options.noise) {
      case HistogramNoise::kGeometric: {
        // Exact bins are integral by construction; llround guards against
        // caller-provided non-integer bins.
        const auto count = static_cast<int64_t>(std::llround(exact.bin(code)));
        DPX_ASSIGN_OR_RETURN(
            const int64_t noisy_count,
            GeometricMechanism(count, /*sensitivity=*/1.0, epsilon, rng));
        value = static_cast<double>(noisy_count);
        break;
      }
      case HistogramNoise::kLaplace: {
        DPX_ASSIGN_OR_RETURN(value,
                             LaplaceMechanism(exact.bin(code),
                                              /*sensitivity=*/1.0, epsilon,
                                              rng));
        break;
      }
      case HistogramNoise::kHierarchical:
        break;  // dispatched above; unreachable
    }
    if (options.clamp_non_negative) value = std::max(0.0, value);
    noisy.set_bin(code, value);
  }
  return noisy;
}

double DpHistogramBinNoiseQuantile(HistogramNoise noise, size_t domain_size,
                                   double epsilon, double confidence) {
  switch (noise) {
    case HistogramNoise::kGeometric: {
      // P(|Z| > t) = 2·α^{t+1}/(1+α), α = e^{−ε}; smallest integer t with
      // tail <= 1 − confidence.
      const double alpha = std::exp(-epsilon);
      const double delta = 1.0 - confidence;
      const double rhs = delta * (1.0 + alpha) / 2.0;
      if (rhs >= 1.0) return 0.0;
      return std::max(0.0,
                      std::ceil(std::log(rhs) / std::log(alpha)) - 1.0);
    }
    case HistogramNoise::kLaplace:
      return -std::log(1.0 - confidence) / epsilon;
    case HistogramNoise::kHierarchical: {
      // Upper bound: a leaf estimate aggregates noise at per-level scale
      // h/ε; the consistent estimator only shrinks it.
      size_t m = 1;
      size_t levels = 1;
      while (m < domain_size) {
        m <<= 1;
        ++levels;
      }
      const double scale = static_cast<double>(levels) / epsilon;
      return -scale * std::log(1.0 - confidence);
    }
  }
  return 0.0;
}

double DpHistogramMaxErrorBound(size_t domain_size, double epsilon,
                                double confidence) {
  // Two-sided geometric tail: P(|Z| > t) = 2·α^{t+1}/(1+α), α = e^{−ε}.
  // Union bound over domain_size bins:
  //   domain_size · 2·α^{t+1}/(1+α) <= 1 − confidence.
  const double alpha = std::exp(-epsilon);
  const double delta = 1.0 - confidence;
  const double rhs =
      delta * (1.0 + alpha) / (2.0 * static_cast<double>(domain_size));
  if (rhs >= 1.0) return 0.0;  // even zero error holds with this confidence
  const double t_plus_1 = std::log(rhs) / std::log(alpha);
  return std::max(0.0, std::ceil(t_plus_1) - 1.0);
}

double EpsilonForDpHistogramError(size_t domain_size, double max_error,
                                  double confidence) {
  // The bound is monotone decreasing in ε; bisect.
  double lo = 1e-8, hi = 64.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (DpHistogramMaxErrorBound(domain_size, mid, confidence) <= max_error) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace dpclustx
