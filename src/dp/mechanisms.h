// Additive-noise DP primitives for scalar queries.
//
// Both mechanisms release q(D) + Z for a query with known L1 sensitivity Δ:
//   - Laplace (Dwork et al. 2006): Z ~ Lap(Δ/ε), for real-valued queries.
//   - Two-sided geometric (Ghosh et al. 2009): Z integer with
//     P(Z = z) ∝ exp(-ε·|z|/Δ), universally optimal for integer counts —
//     this is the mechanism DiffPrivLib uses and the paper's default for
//     histograms.

#ifndef DPCLUSTX_DP_MECHANISMS_H_
#define DPCLUSTX_DP_MECHANISMS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace dpclustx {

/// true_value + Lap(sensitivity/epsilon). Returns InvalidArgument unless
/// sensitivity and epsilon are finite and positive — miscalibrated noise is
/// a privacy bug, and these parameters can descend from request input, so
/// the refusal must be a propagated error rather than a process abort (no
/// noise is drawn on refusal).
StatusOr<double> LaplaceMechanism(double true_value, double sensitivity,
                                  double epsilon, Rng& rng);

/// true_count + Z with Z two-sided geometric at parameter exp(-epsilon /
/// sensitivity). Same finite-positive parameter contract as
/// LaplaceMechanism.
StatusOr<int64_t> GeometricMechanism(int64_t true_count, double sensitivity,
                                     double epsilon, Rng& rng);

/// Symmetric-interval quantile of the Laplace mechanism's noise:
/// the smallest t with P(|Z| <= t) >= confidence. Used to translate accuracy
/// requirements into budgets. Requires confidence in (0, 1).
double LaplaceNoiseQuantile(double sensitivity, double epsilon,
                            double confidence);

/// Smallest epsilon such that the Laplace mechanism's error is at most
/// `max_error` with probability >= confidence.
double EpsilonForLaplaceError(double sensitivity, double max_error,
                              double confidence);

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_MECHANISMS_H_
