// The Sparse Vector Technique (AboveThreshold, Dwork & Roth §3.6).
//
// Answers a stream of sensitivity-Δ queries with "above/below threshold"
// bits, paying ε only for the (at most c) above-threshold reports rather
// than for every query. Included as an alternative Stage-1 selector for
// DPClustX: instead of fixing the candidate count k, SVT can privately
// return "all attributes whose single-cluster score clears a bar", which is
// natural when the analyst knows a meaningful score threshold instead of a
// count (see SvtSelectCandidates in core/candidate_selection.h and the
// ablation bench).

#ifndef DPCLUSTX_DP_SPARSE_VECTOR_H_
#define DPCLUSTX_DP_SPARSE_VECTOR_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dpclustx {

/// Streaming AboveThreshold mechanism. The whole object satisfies ε-DP for
/// up to `max_positives` above-threshold answers; it refuses further
/// queries once they are spent.
class SparseVector {
 public:
  /// Creates an SVT instance for sensitivity-`sensitivity` queries against
  /// `threshold`, reporting at most `max_positives` positives under total
  /// budget `epsilon`. The standard budget split is used: ε/2 for the
  /// threshold perturbation, ε/2 shared by the positive reports.
  static StatusOr<SparseVector> Create(double threshold, double sensitivity,
                                       double epsilon, size_t max_positives,
                                       Rng* rng);

  /// Tests one query value. Returns true for "above threshold" (consuming
  /// one positive), false for "below". Returns FailedPrecondition once all
  /// positives are spent.
  StatusOr<bool> Query(double value);

  size_t positives_reported() const { return positives_reported_; }
  size_t positives_remaining() const {
    return max_positives_ - positives_reported_;
  }

 private:
  SparseVector(double noisy_threshold, double answer_scale,
               size_t max_positives, Rng* rng)
      : noisy_threshold_(noisy_threshold),
        answer_scale_(answer_scale),
        max_positives_(max_positives),
        rng_(rng) {}

  double noisy_threshold_;
  double answer_scale_;  // Laplace scale of per-query noise
  size_t max_positives_;
  size_t positives_reported_ = 0;
  Rng* rng_;  // not owned
};

/// One-shot convenience: returns the indices reported above threshold when
/// scanning `values` in order with a fresh SVT instance (stops scanning
/// when the positives are exhausted).
StatusOr<std::vector<size_t>> SvtAboveThreshold(
    const std::vector<double>& values, double threshold, double sensitivity,
    double epsilon, size_t max_positives, Rng& rng);

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_SPARSE_VECTOR_H_
