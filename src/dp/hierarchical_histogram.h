// Hierarchical DP histogram release with consistency post-processing
// (Hay, Rastogi, Miklau & Suciu, "Boosting the accuracy of differentially
// private histograms through consistency", VLDB 2010) — one of the M_hist
// instantiations the paper cites (§2.1). DPClustX treats the histogram
// mechanism as a black box, so this module is a drop-in alternative to the
// flat geometric/Laplace release.
//
// Mechanism: build a binary aggregation tree over the domain, release every
// node's count with Laplace noise at ε/h (h = tree height; a tuple affects
// one node per level, so the levels compose sequentially), then enforce
// parent = Σ children by the two-pass constrained-inference estimator, which
// is the least-squares projection of the noisy tree onto the consistent
// subspace. The leaves of the projected tree are returned.
//
// Versus the flat release at the same ε: single-bin variance is larger by
// roughly h² (the per-level budget is ε/h), but *range* queries touch
// O(log n) nodes instead of O(n) bins, so wide-range accuracy and
// whole-histogram consistency improve — the regime the boosting paper
// targets.

#ifndef DPCLUSTX_DP_HIERARCHICAL_HISTOGRAM_H_
#define DPCLUSTX_DP_HIERARCHICAL_HISTOGRAM_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/histogram.h"

namespace dpclustx {

struct HierarchicalHistogramOptions {
  /// Clamp the final leaf estimates at zero (free post-processing).
  bool clamp_non_negative = true;
};

/// Releases an ε-DP estimate of `exact` through the noisy-tree +
/// constrained-inference pipeline. Requires a non-empty domain and ε > 0.
StatusOr<Histogram> ReleaseHierarchicalDpHistogram(
    const Histogram& exact, double epsilon, Rng& rng,
    const HierarchicalHistogramOptions& options = {});

/// A released hierarchical histogram that also answers range queries from
/// the consistent tree (summing leaf estimates — after constrained
/// inference, leaf sums equal internal-node estimates, so this is optimal
/// within the released tree).
class HierarchicalHistogram {
 public:
  /// Builds and releases; see ReleaseHierarchicalDpHistogram for the
  /// mechanism. The returned object is post-processing of one ε-DP release.
  static StatusOr<HierarchicalHistogram> Release(
      const Histogram& exact, double epsilon, Rng& rng,
      const HierarchicalHistogramOptions& options = {});

  /// Leaf estimates over the original domain.
  const Histogram& leaves() const { return leaves_; }

  /// Estimated count of the half-open code range [lo, hi). Requires
  /// lo <= hi <= domain_size.
  double RangeQuery(ValueCode lo, ValueCode hi) const;

  /// Estimated total count.
  double Total() const { return leaves_.Total(); }

 private:
  explicit HierarchicalHistogram(Histogram leaves)
      : leaves_(std::move(leaves)) {}

  Histogram leaves_;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_HIERARCHICAL_HISTOGRAM_H_
