#include "dp/topk.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dpclustx {

StatusOr<std::vector<size_t>> OneShotTopK(const std::vector<double>& scores,
                                          double sensitivity, double epsilon,
                                          size_t k, Rng& rng) {
  if (scores.empty()) {
    return Status::InvalidArgument("OneShotTopK: no candidates");
  }
  if (k == 0 || k > scores.size()) {
    return Status::InvalidArgument(
        "OneShotTopK: k must lie in [1, num_candidates]; got k=" +
        std::to_string(k) + " with " + std::to_string(scores.size()) +
        " candidates");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "OneShotTopK: sensitivity must be positive");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("OneShotTopK: epsilon must be positive");
  }

  // Noise scale σ = 2·Δ·k/ε (Algorithm 1, line 2 of the paper, generalized
  // to sensitivity Δ).
  const double sigma =
      2.0 * sensitivity * static_cast<double>(k) / epsilon;
  std::vector<double> noisy(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    noisy[i] = scores[i] + rng.Gumbel(sigma);
  }

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  // Only the top k need to be ordered.
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](size_t a, size_t b) {
                      return noisy[a] > noisy[b];
                    });
  order.resize(k);
  return order;
}

StatusOr<std::vector<size_t>> IteratedExponentialTopK(
    const std::vector<double>& scores, double sensitivity, double epsilon,
    size_t k, Rng& rng) {
  if (scores.empty()) {
    return Status::InvalidArgument("IteratedExponentialTopK: no candidates");
  }
  if (k == 0 || k > scores.size()) {
    return Status::InvalidArgument(
        "IteratedExponentialTopK: k out of range");
  }
  if (sensitivity <= 0.0 || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "IteratedExponentialTopK: sensitivity and epsilon must be positive");
  }
  const double eps_round = epsilon / static_cast<double>(k);
  const double scale = eps_round / (2.0 * sensitivity);
  std::vector<size_t> remaining(scores.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<size_t> selected;
  selected.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    // Fresh Gumbel noise for every remaining candidate, every round — the
    // cost profile OneShotTopK avoids.
    size_t best_position = 0;
    double best_value = -std::numeric_limits<double>::infinity();
    for (size_t position = 0; position < remaining.size(); ++position) {
      const double value =
          scale * scores[remaining[position]] + rng.Gumbel(1.0);
      if (value > best_value) {
        best_value = value;
        best_position = position;
      }
    }
    selected.push_back(remaining[best_position]);
    remaining.erase(remaining.begin() + static_cast<long>(best_position));
  }
  return selected;
}

double OneShotTopKErrorBound(size_t num_candidates, double sensitivity,
                             double epsilon, size_t k, double t) {
  return (2.0 * sensitivity * static_cast<double>(k) / epsilon) *
         (std::log(static_cast<double>(num_candidates)) + t);
}

}  // namespace dpclustx
