// The exponential mechanism (McSherry & Talwar 2007).
//
// Selects a candidate with probability proportional to
// exp(ε·q(D, r) / (2·Δq)) (paper Def. 2.7). Implemented with the Gumbel-max
// trick — argmax_i(score_i·ε/(2Δ) + Gumbel(1)) has exactly the EM output
// distribution — which is numerically stable for scores whose scaled
// magnitudes would overflow exp().

#ifndef DPCLUSTX_DP_EXPONENTIAL_H_
#define DPCLUSTX_DP_EXPONENTIAL_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dpclustx {

/// Returns the index of the selected candidate. Requires non-empty scores;
/// sensitivity > 0 and epsilon > 0.
StatusOr<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                      double sensitivity, double epsilon,
                                      Rng& rng);

/// The additive-error bound of EM utility (Theorem 3.11, Dwork & Roth):
/// with probability >= 1 − e^{−t}, the selected score is at least
/// max(score) − (2Δ/ε)·(ln|R| + t).
double ExponentialMechanismErrorBound(size_t num_candidates,
                                      double sensitivity, double epsilon,
                                      double t);

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_EXPONENTIAL_H_
