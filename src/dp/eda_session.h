// Interactive DP exploratory-data-analysis session.
//
// The paper's motivation (§1): without DPClustX, an analyst who wants to
// understand clusters runs a *manual* EDA session — a sequence of noisy
// histogram and count queries — and every query burns privacy budget under
// sequential composition. This module implements that workflow faithfully
// (in the spirit of PINQ-style interactive systems): each query draws fresh
// noise, charges the shared accountant, and is refused once the budget runs
// out. The `manual_eda_vs_dpclustx` example uses it to reproduce the
// motivating comparison.

#ifndef DPCLUSTX_DP_EDA_SESSION_H_
#define DPCLUSTX_DP_EDA_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "dp/dp_histogram.h"
#include "dp/privacy_budget.h"

namespace dpclustx {

class EdaSession {
 public:
  /// Creates a session over `dataset` partitioned by `labels` (one label per
  /// row, each < num_clusters). The session does not own the budget; all
  /// queries charge `budget`. Returns InvalidArgument on shape mismatches.
  static StatusOr<EdaSession> Open(const Dataset* dataset,
                                   std::vector<uint32_t> labels,
                                   size_t num_clusters, PrivacyBudget* budget,
                                   uint64_t seed);

  /// Noisy histogram of `attr` restricted to one cluster; charges `epsilon`.
  StatusOr<Histogram> QueryClusterHistogram(uint32_t cluster, AttrIndex attr,
                                            double epsilon);

  /// Noisy histograms of `attr` for *all* clusters in one round. Because the
  /// clusters partition the data, parallel composition applies and the whole
  /// round charges `epsilon` once — the budget-efficient way to scan an
  /// attribute.
  StatusOr<std::vector<Histogram>> QueryAllClusterHistograms(AttrIndex attr,
                                                             double epsilon);

  /// Noisy histogram of `attr` over the full dataset; charges `epsilon`.
  StatusOr<Histogram> QueryFullHistogram(AttrIndex attr, double epsilon);

  /// Noisy size of one cluster (sensitivity-1 count); charges `epsilon`.
  StatusOr<double> QueryClusterSize(uint32_t cluster, double epsilon);

  /// Number of queries issued so far (including refused ones).
  size_t queries_issued() const { return queries_issued_; }

  const DpHistogramOptions& histogram_options() const {
    return histogram_options_;
  }
  void set_histogram_options(const DpHistogramOptions& options) {
    histogram_options_ = options;
  }

 private:
  EdaSession(const Dataset* dataset, std::vector<uint32_t> labels,
             size_t num_clusters, PrivacyBudget* budget, uint64_t seed)
      : dataset_(dataset),
        labels_(std::move(labels)),
        num_clusters_(num_clusters),
        budget_(budget),
        rng_(seed) {}

  Status ValidateQuery(uint32_t cluster, AttrIndex attr) const;

  const Dataset* dataset_;  // not owned; must outlive the session
  std::vector<uint32_t> labels_;
  size_t num_clusters_;
  PrivacyBudget* budget_;  // not owned
  Rng rng_;
  DpHistogramOptions histogram_options_;
  size_t queries_issued_ = 0;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DP_EDA_SESSION_H_
