#include "baselines/dp_naive.h"

#include "baselines/tabee.h"
#include "common/rng.h"

namespace dpclustx::baselines {

StatusOr<GlobalExplanation> ExplainDpNaive(const StatsCache& stats,
                                           const DpNaiveOptions& options) {
  DPX_RETURN_IF_ERROR(options.lambda.Validate());
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  Rng rng(options.seed);
  const size_t attrs = stats.num_attributes();
  const size_t clusters = stats.num_clusters();
  const double eps_each =
      options.epsilon / (2.0 * static_cast<double>(attrs));

  // Release every histogram up front. Full-dataset histograms compose
  // sequentially over attributes (ε/2 in total); per-cluster histograms
  // compose sequentially over attributes and in parallel over the disjoint
  // clusters (ε/2 in total).
  std::vector<Histogram> noisy_full;
  noisy_full.reserve(attrs);
  std::vector<std::vector<Histogram>> noisy_clusters(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    DPX_ASSIGN_OR_RETURN(Histogram full,
                         ReleaseDpHistogram(stats.full_histogram(attr),
                                            eps_each, rng, options.histogram));
    noisy_full.push_back(std::move(full));
    noisy_clusters[a].reserve(clusters);
    for (size_t c = 0; c < clusters; ++c) {
      DPX_ASSIGN_OR_RETURN(
          Histogram hist,
          ReleaseDpHistogram(
              stats.cluster_histogram(static_cast<ClusterId>(c), attr),
              eps_each, rng, options.histogram));
      noisy_clusters[a].push_back(std::move(hist));
    }
  }

  // Post-processing: run the TabEE search over the noisy counts.
  DPX_ASSIGN_OR_RETURN(const StatsCache noisy_stats,
                       StatsCache::FromHistograms(stats.schema(),
                                                  std::move(noisy_full),
                                                  std::move(noisy_clusters)));
  TabeeOptions tabee;
  tabee.num_candidates = options.num_candidates;
  tabee.lambda = options.lambda;
  tabee.max_combinations = options.max_combinations;
  DPX_ASSIGN_OR_RETURN(GlobalExplanation explanation,
                       ExplainTabee(noisy_stats, tabee));
  // The histograms inside `explanation` already come from the noisy cache,
  // so the output as a whole is a post-processed ε-DP release.
  return explanation;
}

}  // namespace dpclustx::baselines
