// TabEE — the non-private baseline (paper §6.1).
//
// The same two-stage search shape as DPClustX, but noise-free and driven by
// the original sensitive quality functions: Stage-1 takes each cluster's
// exact top-k attributes by the sensitive single-cluster score (TVD
// interestingness + normalized sufficiency); Stage-2 picks the exact argmax
// combination of the sensitive global score (with the pairwise diversity
// surrogate; see eval/metrics.h). Histograms in the output are exact.

#ifndef DPCLUSTX_BASELINES_TABEE_H_
#define DPCLUSTX_BASELINES_TABEE_H_

#include "common/status.h"
#include "core/explanation.h"
#include "core/stats_cache.h"

namespace dpclustx::baselines {

struct TabeeOptions {
  size_t num_candidates = 3;
  GlobalWeights lambda;
  size_t max_combinations = 20000000;
};

/// Runs the non-private TabEE explainer over precomputed statistics.
StatusOr<GlobalExplanation> ExplainTabee(const StatsCache& stats,
                                         const TabeeOptions& options);

namespace internal {
/// Exact per-cluster top-k by the sensitive single-cluster score (shared
/// with DP-TabEE, which noises the same scores).
StatusOr<std::vector<std::vector<AttrIndex>>> SensitiveCandidateSets(
    const StatsCache& stats, size_t k, const SingleClusterWeights& gamma);
}  // namespace internal

}  // namespace dpclustx::baselines

#endif  // DPCLUSTX_BASELINES_TABEE_H_
