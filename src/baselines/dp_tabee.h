// DP-TabEE — the direct DP adaptation of TabEE (paper §6.1).
//
// Uses the *original, sensitive* quality functions but injects the noise
// their sensitivity requires: Stage-1 one-shot top-k and the Stage-2
// exponential mechanism are both calibrated at Δ = 1, the conservative upper
// bound for the [0,1]-ranged sensitive scores (the paper proves lower bounds
// of ½, Props. 4.1/4.3). Because the signal range is also [0,1], the noise
// dominates the scores — this baseline demonstrates *why* the
// low-sensitivity variants are needed.

#ifndef DPCLUSTX_BASELINES_DP_TABEE_H_
#define DPCLUSTX_BASELINES_DP_TABEE_H_

#include "common/rng.h"
#include "common/status.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/stats_cache.h"

namespace dpclustx::baselines {

struct DpTabeeOptions {
  double epsilon_cand_set = 0.1;
  double epsilon_top_comb = 0.1;
  /// Budget for histogram release; only used when generate_histograms.
  double epsilon_hist = 0.1;
  size_t num_candidates = 3;
  GlobalWeights lambda;
  DpHistogramOptions histogram;
  bool generate_histograms = false;
  size_t max_combinations = 20000000;
  uint64_t seed = 1;
};

/// Runs DP-TabEE over precomputed statistics. Satisfies
/// (ε_CandSet + ε_TopComb [+ ε_Hist])-DP.
StatusOr<GlobalExplanation> ExplainDpTabee(const StatsCache& stats,
                                           const DpTabeeOptions& options);

}  // namespace dpclustx::baselines

#endif  // DPCLUSTX_BASELINES_DP_TABEE_H_
