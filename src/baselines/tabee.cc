#include "baselines/tabee.h"

#include <algorithm>
#include <numeric>

#include "core/explainer.h"
#include "eval/metrics.h"

namespace dpclustx::baselines {

namespace internal {

StatusOr<std::vector<std::vector<AttrIndex>>> SensitiveCandidateSets(
    const StatsCache& stats, size_t k, const SingleClusterWeights& gamma) {
  if (k == 0 || k > stats.num_attributes()) {
    return Status::InvalidArgument("k must lie in [1, num_attributes]");
  }
  std::vector<std::vector<AttrIndex>> sets;
  sets.reserve(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    std::vector<double> scores(stats.num_attributes());
    for (size_t a = 0; a < scores.size(); ++a) {
      scores[a] = eval::SensitiveSingleClusterScore(
          stats, static_cast<ClusterId>(c), static_cast<AttrIndex>(a), gamma);
    }
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(),
                      [&](size_t a, size_t b) { return scores[a] > scores[b]; });
    std::vector<AttrIndex> set;
    set.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      set.push_back(static_cast<AttrIndex>(order[i]));
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace internal

StatusOr<GlobalExplanation> ExplainTabee(const StatsCache& stats,
                                         const TabeeOptions& options) {
  DPX_RETURN_IF_ERROR(options.lambda.Validate());
  const SingleClusterWeights gamma =
      options.lambda.ConditionalSingleClusterWeights();
  DPX_ASSIGN_OR_RETURN(
      auto candidate_sets,
      internal::SensitiveCandidateSets(stats, options.num_candidates, gamma));

  const core_internal::CombinationScoreTables tables =
      eval::BuildSensitiveTables(stats, candidate_sets, options.lambda);
  // epsilon <= 0: exact argmax (non-private). The rng is not drawn from.
  Rng unused_rng(0);
  DPX_ASSIGN_OR_RETURN(
      AttributeCombination combination,
      core_internal::SearchCombination(candidate_sets, tables,
                                       /*epsilon=*/0.0, /*sensitivity=*/1.0,
                                       options.max_combinations, unused_rng));

  GlobalExplanation explanation;
  explanation.combination = combination;
  explanation.candidate_sets = std::move(candidate_sets);
  explanation.per_cluster.resize(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    SingleClusterExplanation& e = explanation.per_cluster[c];
    e.cluster = cluster;
    e.attribute = combination[c];
    e.inside = stats.cluster_histogram(cluster, combination[c]);
    e.outside =
        stats.full_histogram(combination[c]).SubtractClamped(e.inside);
  }
  return explanation;
}

}  // namespace dpclustx::baselines
