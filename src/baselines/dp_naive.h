// DP-Naive — the naive "all histograms up front" baseline (paper §6.1).
//
// Given a total budget ε, releases a noisy full-dataset histogram for every
// attribute at ε/(2|A|) each (sequential composition) and a noisy per-cluster
// histogram for every attribute at ε/(2|A|) each (sequential over attributes,
// parallel over disjoint clusters), then runs the TabEE search over the noisy
// counts as pure post-processing. The whole procedure is ε-DP. Its weakness
// is exactly what the paper exploits: the budget is diluted over |A|
// attributes before the search begins, and independent per-bin noise
// accumulates in the quality evaluation.

#ifndef DPCLUSTX_BASELINES_DP_NAIVE_H_
#define DPCLUSTX_BASELINES_DP_NAIVE_H_

#include "common/status.h"
#include "core/explanation.h"
#include "core/stats_cache.h"
#include "dp/dp_histogram.h"

namespace dpclustx::baselines {

struct DpNaiveOptions {
  /// Total budget ε of the whole baseline.
  double epsilon = 0.2;
  size_t num_candidates = 3;
  GlobalWeights lambda;
  DpHistogramOptions histogram;
  size_t max_combinations = 20000000;
  uint64_t seed = 1;
};

/// Runs DP-Naive over precomputed (exact) statistics; the exact counts are
/// used only to draw the noisy histograms. Satisfies ε-DP.
StatusOr<GlobalExplanation> ExplainDpNaive(const StatsCache& stats,
                                           const DpNaiveOptions& options);

}  // namespace dpclustx::baselines

#endif  // DPCLUSTX_BASELINES_DP_NAIVE_H_
