#include "baselines/dp_tabee.h"

#include <set>

#include "dp/dp_histogram.h"
#include "dp/topk.h"
#include "eval/metrics.h"

namespace dpclustx::baselines {

StatusOr<GlobalExplanation> ExplainDpTabee(const StatsCache& stats,
                                           const DpTabeeOptions& options) {
  DPX_RETURN_IF_ERROR(options.lambda.Validate());
  if (options.epsilon_cand_set <= 0.0 || options.epsilon_top_comb <= 0.0) {
    return Status::InvalidArgument("stage budgets must be positive");
  }
  if (options.num_candidates == 0 ||
      options.num_candidates > stats.num_attributes()) {
    return Status::InvalidArgument("invalid num_candidates");
  }
  Rng rng(options.seed);
  const SingleClusterWeights gamma =
      options.lambda.ConditionalSingleClusterWeights();

  // Stage-1: one-shot top-k over the sensitive single-cluster scores, at
  // ε_CandSet/|C| per cluster and Δ = 1.
  const double eps_topk =
      options.epsilon_cand_set / static_cast<double>(stats.num_clusters());
  std::vector<std::vector<AttrIndex>> candidate_sets;
  candidate_sets.reserve(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    std::vector<double> scores(stats.num_attributes());
    for (size_t a = 0; a < scores.size(); ++a) {
      scores[a] = eval::SensitiveSingleClusterScore(
          stats, static_cast<ClusterId>(c), static_cast<AttrIndex>(a), gamma);
    }
    DPX_ASSIGN_OR_RETURN(
        const std::vector<size_t> top,
        OneShotTopK(scores, eval::kSensitiveScoreSensitivity, eps_topk,
                    options.num_candidates, rng));
    std::vector<AttrIndex> set;
    set.reserve(top.size());
    for (size_t index : top) set.push_back(static_cast<AttrIndex>(index));
    candidate_sets.push_back(std::move(set));
  }

  // Stage-2: exponential mechanism over the sensitive global score, Δ = 1.
  const core_internal::CombinationScoreTables tables =
      eval::BuildSensitiveTables(stats, candidate_sets, options.lambda);
  DPX_ASSIGN_OR_RETURN(
      AttributeCombination combination,
      core_internal::SearchCombination(
          candidate_sets, tables, options.epsilon_top_comb,
          eval::kSensitiveScoreSensitivity, options.max_combinations, rng));

  GlobalExplanation explanation;
  explanation.combination = combination;
  explanation.candidate_sets = std::move(candidate_sets);
  if (!options.generate_histograms) return explanation;
  if (options.epsilon_hist <= 0.0) {
    return Status::InvalidArgument("epsilon_hist must be positive");
  }

  // Histogram release mirrors DPClustX's Stage-2 (Algorithm 2, lines 6–15).
  std::set<AttrIndex> distinct(combination.begin(), combination.end());
  const double eps_hist_all =
      options.epsilon_hist / (2.0 * static_cast<double>(distinct.size()));
  const double eps_hist_cluster = options.epsilon_hist / 2.0;
  std::vector<Histogram> noisy_full(stats.num_attributes());
  for (AttrIndex attr : distinct) {
    DPX_ASSIGN_OR_RETURN(
        noisy_full[attr],
        ReleaseDpHistogram(stats.full_histogram(attr), eps_hist_all, rng,
                           options.histogram));
  }
  explanation.per_cluster.resize(stats.num_clusters());
  for (size_t c = 0; c < stats.num_clusters(); ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    SingleClusterExplanation& e = explanation.per_cluster[c];
    e.cluster = cluster;
    e.attribute = combination[c];
    DPX_ASSIGN_OR_RETURN(
        e.inside,
        ReleaseDpHistogram(stats.cluster_histogram(cluster, combination[c]),
                           eps_hist_cluster, rng, options.histogram));
    e.outside = noisy_full[combination[c]].SubtractClamped(e.inside);
  }
  return explanation;
}

}  // namespace dpclustx::baselines
