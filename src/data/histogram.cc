#include "data/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx {

double Histogram::Total() const {
  double total = 0.0;
  for (double b : bins_) total += b;
  return total;
}

std::vector<double> Histogram::Normalized() const {
  DPX_CHECK(!bins_.empty());
  const double total = Total();
  std::vector<double> out(bins_.size());
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(bins_.size());
    std::fill(out.begin(), out.end(), uniform);
    return out;
  }
  for (size_t i = 0; i < bins_.size(); ++i) out[i] = bins_[i] / total;
  return out;
}

ValueCode Histogram::ArgMax() const {
  DPX_CHECK(!bins_.empty());
  return static_cast<ValueCode>(
      std::max_element(bins_.begin(), bins_.end()) - bins_.begin());
}

double Histogram::L1Distance(const Histogram& a, const Histogram& b) {
  DPX_CHECK_EQ(a.domain_size(), b.domain_size());
  double sum = 0.0;
  for (size_t i = 0; i < a.bins_.size(); ++i) {
    sum += std::fabs(a.bins_[i] - b.bins_[i]);
  }
  return sum;
}

double Histogram::Tvd(const Histogram& a, const Histogram& b) {
  DPX_CHECK_EQ(a.domain_size(), b.domain_size());
  const std::vector<double> p = a.Normalized();
  const std::vector<double> q = b.Normalized();
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) sum += std::fabs(p[i] - q[i]);
  return 0.5 * sum;
}

double Histogram::JensenShannonDistance(const Histogram& a,
                                        const Histogram& b) {
  DPX_CHECK_EQ(a.domain_size(), b.domain_size());
  const std::vector<double> p = a.Normalized();
  const std::vector<double> q = b.Normalized();
  // JSD(p, q) = H((p+q)/2) − (H(p) + H(q))/2, entropy in bits.
  auto entropy_term = [](double x) {
    return x > 0.0 ? -x * std::log2(x) : 0.0;
  };
  double divergence = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    divergence += entropy_term(0.5 * (p[i] + q[i])) -
                  0.5 * (entropy_term(p[i]) + entropy_term(q[i]));
  }
  // Numerical slack can push the divergence a hair below zero.
  return std::sqrt(std::max(0.0, divergence));
}

Histogram Histogram::SubtractClamped(const Histogram& other) const {
  DPX_CHECK_EQ(domain_size(), other.domain_size());
  Histogram out(domain_size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    out.bins_[i] = std::max(0.0, bins_[i] - other.bins_[i]);
  }
  return out;
}

Histogram Histogram::Plus(const Histogram& other) const {
  DPX_CHECK_EQ(domain_size(), other.domain_size());
  Histogram out(domain_size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    out.bins_[i] = bins_[i] + other.bins_[i];
  }
  return out;
}

void Histogram::PlusInPlace(const Histogram& other) {
  DPX_CHECK_EQ(domain_size(), other.domain_size());
  for (size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
}

Histogram Histogram::RoundedNonNegative() const {
  Histogram out(domain_size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    out.bins_[i] = std::max(0.0, std::round(bins_[i]));
  }
  return out;
}

std::string Histogram::ToAsciiArt(const Attribute& attr,
                                  size_t bar_width) const {
  DPX_CHECK_EQ(attr.domain_size(), domain_size());
  const std::vector<double> probs = Normalized();
  size_t label_width = 0;
  for (const std::string& label : attr.value_labels()) {
    label_width = std::max(label_width, label.size());
  }
  std::string out;
  for (size_t i = 0; i < bins_.size(); ++i) {
    const std::string& label = attr.label(static_cast<ValueCode>(i));
    out += "  " + label + std::string(label_width - label.size(), ' ') + " |";
    const auto bar = static_cast<size_t>(
        std::llround(probs[i] * static_cast<double>(bar_width)));
    out += std::string(bar, '#');
    char pct[16];
    std::snprintf(pct, sizeof(pct), " %5.1f%%", 100.0 * probs[i]);
    out += pct;
    out += '\n';
  }
  return out;
}

}  // namespace dpclustx
