#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

namespace dpclustx {

namespace csv_internal {

StatusOr<std::vector<std::vector<std::string>>> ParseDocument(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // doubled quote = literal quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          field += c;  // stray quote mid-field: treat literally
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::IoError("unterminated quoted field at end of input");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();  // final line without trailing newline
  }
  return rows;
}

}  // namespace csv_internal

namespace {

std::string EscapeField(const std::string& s) {
  const bool needs_quotes = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = dataset.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (a > 0) out << ',';
    out << EscapeField(schema.attribute(static_cast<AttrIndex>(a)).name());
  }
  out << '\n';
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr_index = static_cast<AttrIndex>(a);
      if (a > 0) out << ',';
      out << EscapeField(schema.attribute(attr_index)
                             .label(dataset.at(row, attr_index)));
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<Dataset> ReadCsv(const std::string& path) {
  DPX_ASSIGN_OR_RETURN(const std::string text, ReadWholeFile(path));
  DPX_ASSIGN_OR_RETURN(const auto rows, csv_internal::ParseDocument(text));
  if (rows.empty()) return Status::IoError("'" + path + "' is empty");
  const std::vector<std::string>& header = rows[0];

  // First pass: collect each column's distinct values in first-appearance
  // order to form the inferred domain.
  std::vector<std::vector<std::string>> domains(header.size());
  std::vector<std::unordered_map<std::string, ValueCode>> code_of(
      header.size());
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::IoError("row " + std::to_string(r) + " has " +
                             std::to_string(rows[r].size()) +
                             " fields, header has " +
                             std::to_string(header.size()));
    }
    for (size_t a = 0; a < header.size(); ++a) {
      auto [it, inserted] = code_of[a].try_emplace(
          rows[r][a], static_cast<ValueCode>(domains[a].size()));
      if (inserted) domains[a].push_back(rows[r][a]);
    }
  }

  std::vector<Attribute> attrs;
  attrs.reserve(header.size());
  for (size_t a = 0; a < header.size(); ++a) {
    if (domains[a].empty()) domains[a].push_back("<empty>");
    attrs.emplace_back(header[a], domains[a]);
  }
  Schema schema(std::move(attrs));
  DPX_RETURN_IF_ERROR(schema.Validate());

  Dataset dataset(std::move(schema));
  dataset.Reserve(rows.size() - 1);
  std::vector<ValueCode> row_codes(header.size());
  for (size_t r = 1; r < rows.size(); ++r) {
    for (size_t a = 0; a < header.size(); ++a) {
      row_codes[a] = code_of[a].at(rows[r][a]);
    }
    dataset.AppendRowUnchecked(row_codes);
  }
  return dataset;
}

StatusOr<Dataset> ReadCsvWithSchema(const std::string& path,
                                    const Schema& schema) {
  DPX_RETURN_IF_ERROR(schema.Validate());
  DPX_ASSIGN_OR_RETURN(const std::string text, ReadWholeFile(path));
  DPX_ASSIGN_OR_RETURN(const auto rows, csv_internal::ParseDocument(text));
  if (rows.empty()) return Status::IoError("'" + path + "' is empty");

  const std::vector<std::string>& header = rows[0];
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "header has " + std::to_string(header.size()) +
        " columns, schema expects " +
        std::to_string(schema.num_attributes()));
  }
  // Pre-index each domain for O(1) lookups.
  std::vector<std::unordered_map<std::string, ValueCode>> code_of(
      header.size());
  for (size_t a = 0; a < header.size(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    if (header[a] != attr.name()) {
      return Status::InvalidArgument("column " + std::to_string(a) +
                                     " is '" + header[a] +
                                     "', schema expects '" + attr.name() +
                                     "'");
    }
    for (size_t v = 0; v < attr.domain_size(); ++v) {
      code_of[a][attr.label(static_cast<ValueCode>(v))] =
          static_cast<ValueCode>(v);
    }
  }

  Dataset dataset(schema);
  dataset.Reserve(rows.size() - 1);
  std::vector<ValueCode> row_codes(header.size());
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::IoError("row " + std::to_string(r) +
                             " has wrong field count");
    }
    for (size_t a = 0; a < header.size(); ++a) {
      const auto it = code_of[a].find(rows[r][a]);
      if (it == code_of[a].end()) {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + ": value '" + rows[r][a] +
            "' not in domain of '" + header[a] + "'");
      }
      row_codes[a] = it->second;
    }
    dataset.AppendRowUnchecked(row_codes);
  }
  return dataset;
}

}  // namespace dpclustx
