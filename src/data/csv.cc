#include "data/csv.h"

#include <fstream>
#include <unordered_map>

#include "common/logging.h"

namespace dpclustx {

namespace csv_internal {

Status StreamParser::StrayError(char c) const {
  return Status::IoError(
      "stray character '" + std::string(1, c) +
      "' after closed quoted field at row " + std::to_string(row_number()) +
      ", column " + std::to_string(column_) +
      " (expected ',', end of row, or end of input)");
}

Status StreamParser::EndRow() {
  row_.push_back(std::move(field_));
  field_.clear();
  field_started_ = false;
  state_ = State::kFieldStart;
  Status status = on_row_(std::move(row_));
  row_.clear();
  ++rows_emitted_;
  column_ = 0;
  return status;
}

Status StreamParser::Consume(char c) {
  if (pending_cr_) {
    pending_cr_ = false;
    if (c == '\n') return EndRow();  // CRLF
    // A bare CR not followed by LF is field data, not a terminator — the
    // old parser silently deleted it mid-field. It is never legal right
    // after a closed quoted field, though.
    if (state_ == State::kQuoteClosed) {
      ++column_;
      return StrayError('\r');
    }
    field_ += '\r';
    field_started_ = true;
    state_ = State::kUnquoted;
    // fall through and process c normally
  }
  ++column_;
  switch (state_) {
    case State::kQuoted:
      if (c == '"') {
        state_ = State::kQuoteInQuoted;
      } else {
        field_ += c;  // anything goes inside quotes, CR/LF included
      }
      return Status::OK();
    case State::kQuoteInQuoted:
      if (c == '"') {
        field_ += '"';  // doubled quote = literal quote
        state_ = State::kQuoted;
        return Status::OK();
      }
      state_ = State::kQuoteClosed;
      break;  // reprocess c below in the closed-quote state
    default:
      break;
  }
  // state_ is kFieldStart, kUnquoted, or kQuoteClosed.
  switch (c) {
    case ',':
      row_.push_back(std::move(field_));
      field_.clear();
      field_started_ = false;
      state_ = State::kFieldStart;
      return Status::OK();
    case '\n':
      return EndRow();
    case '\r':
      pending_cr_ = true;
      return Status::OK();
    case '"':
      if (state_ == State::kFieldStart) {
        state_ = State::kQuoted;
        field_started_ = true;
        return Status::OK();
      }
      if (state_ == State::kQuoteClosed) return StrayError(c);
      field_ += c;  // quote inside an unquoted field: kept literally
      return Status::OK();
    default:
      if (state_ == State::kQuoteClosed) return StrayError(c);
      field_ += c;
      field_started_ = true;
      state_ = State::kUnquoted;
      return Status::OK();
  }
}

Status StreamParser::Feed(const char* data, size_t size) {
  DPX_CHECK(!finished_) << "Feed after Finish";
  for (size_t i = 0; i < size; ++i) {
    DPX_RETURN_IF_ERROR(Consume(data[i]));
  }
  return Status::OK();
}

Status StreamParser::Finish() {
  DPX_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  if (state_ == State::kQuoted) {
    return Status::IoError("unterminated quoted field at end of input (row " +
                           std::to_string(row_number()) + ")");
  }
  if (state_ == State::kQuoteInQuoted) state_ = State::kQuoteClosed;
  if (pending_cr_) {
    pending_cr_ = false;
    return EndRow();  // torn final CRLF: treat the CR as the row end
  }
  if (state_ == State::kQuoteClosed || field_started_ || !field_.empty() ||
      !row_.empty()) {
    return EndRow();  // final line without trailing newline
  }
  return Status::OK();
}

StatusOr<std::vector<std::vector<std::string>>> ParseDocument(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  StreamParser parser([&](std::vector<std::string>&& row) {
    rows.push_back(std::move(row));
    return Status::OK();
  });
  DPX_RETURN_IF_ERROR(parser.Feed(text.data(), text.size()));
  DPX_RETURN_IF_ERROR(parser.Finish());
  return rows;
}

}  // namespace csv_internal

namespace {

// Chunk size for streaming file reads; peak parser memory is one chunk
// plus the current row, never the whole file.
constexpr size_t kReadChunkBytes = size_t{1} << 20;

std::string EscapeField(const std::string& s) {
  const bool needs_quotes = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// Opens `path`, applies the max-bytes gate, and streams its contents
/// through `parser` chunk by chunk (Feed* + Finish).
Status StreamFileThroughParser(const std::string& path,
                               const CsvReadOptions& options,
                               csv_internal::StreamParser& parser) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  const auto end = in.tellg();
  if (end < 0) return Status::IoError("cannot size '" + path + "'");
  const auto size = static_cast<size_t>(end);
  if (options.max_bytes != 0 && size > options.max_bytes) {
    return Status::IoError(
        "'" + path + "' is " + std::to_string(size) +
        " bytes, over the " + std::to_string(options.max_bytes) +
        "-byte CSV ingest limit; raise the limit or convert to DPXCOL "
        "(dpclustx_convert) instead of parsing CSV at this scale");
  }
  in.seekg(0, std::ios::beg);
  std::string chunk(kReadChunkBytes, '\0');
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    DPX_RETURN_IF_ERROR(parser.Feed(chunk.data(), got));
  }
  if (in.bad()) return Status::IoError("read failure on '" + path + "'");
  return parser.Finish();
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = dataset.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (a > 0) out << ',';
    out << EscapeField(schema.attribute(static_cast<AttrIndex>(a)).name());
  }
  out << '\n';
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const auto attr_index = static_cast<AttrIndex>(a);
      if (a > 0) out << ',';
      out << EscapeField(schema.attribute(attr_index)
                             .label(dataset.at(row, attr_index)));
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options) {
  // Pass 1: stream the file once to collect the header and each column's
  // distinct values in first-appearance order (the inferred domain), plus
  // the row count for the exact Reserve in pass 2.
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> domains;
  std::vector<std::unordered_map<std::string, ValueCode>> code_of;
  size_t data_rows = 0;
  {
    csv_internal::StreamParser parser([&](std::vector<std::string>&& row) {
      if (header.empty()) {
        header = std::move(row);
        domains.resize(header.size());
        code_of.resize(header.size());
        return Status::OK();
      }
      if (row.size() != header.size()) {
        return Status::IoError("row " + std::to_string(data_rows + 1) +
                               " has " + std::to_string(row.size()) +
                               " fields, header has " +
                               std::to_string(header.size()));
      }
      for (size_t a = 0; a < header.size(); ++a) {
        auto [it, inserted] = code_of[a].try_emplace(
            std::move(row[a]), static_cast<ValueCode>(domains[a].size()));
        if (inserted) domains[a].push_back(it->first);
      }
      ++data_rows;
      return Status::OK();
    });
    DPX_RETURN_IF_ERROR(StreamFileThroughParser(path, options, parser));
  }
  if (header.empty()) return Status::IoError("'" + path + "' is empty");

  std::vector<Attribute> attrs;
  attrs.reserve(header.size());
  for (size_t a = 0; a < header.size(); ++a) {
    if (domains[a].empty()) domains[a].push_back("<empty>");
    attrs.emplace_back(header[a], domains[a]);
  }
  Schema schema(std::move(attrs));
  DPX_RETURN_IF_ERROR(schema.Validate());

  // Pass 2: stream again and encode rows straight into the dataset — no
  // whole-file buffer, no materialized row-of-strings table.
  Dataset dataset(std::move(schema));
  dataset.Reserve(data_rows);
  std::vector<ValueCode> row_codes(header.size());
  bool saw_header = false;
  csv_internal::StreamParser parser([&](std::vector<std::string>&& row) {
    if (!saw_header) {
      saw_header = true;
      return Status::OK();
    }
    if (row.size() != header.size()) {
      return Status::IoError("'" + path + "' changed between passes");
    }
    for (size_t a = 0; a < header.size(); ++a) {
      const auto it = code_of[a].find(row[a]);
      if (it == code_of[a].end()) {
        return Status::IoError("'" + path + "' changed between passes");
      }
      row_codes[a] = it->second;
    }
    dataset.AppendRowUnchecked(row_codes);
    return Status::OK();
  });
  DPX_RETURN_IF_ERROR(StreamFileThroughParser(path, options, parser));
  if (dataset.num_rows() != data_rows) {
    return Status::IoError("'" + path + "' changed between passes");
  }
  return dataset;
}

StatusOr<Dataset> ReadCsvWithSchema(const std::string& path,
                                    const Schema& schema,
                                    const CsvReadOptions& options) {
  DPX_RETURN_IF_ERROR(schema.Validate());
  // Pre-index each domain for O(1) lookups.
  std::vector<std::unordered_map<std::string, ValueCode>> code_of(
      schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    for (size_t v = 0; v < attr.domain_size(); ++v) {
      code_of[a][attr.label(static_cast<ValueCode>(v))] =
          static_cast<ValueCode>(v);
    }
  }

  // One streaming pass: the schema is known up front, so rows encode as
  // they arrive.
  Dataset dataset(schema);
  bool saw_header = false;
  size_t data_rows = 0;
  std::vector<ValueCode> row_codes(schema.num_attributes());
  csv_internal::StreamParser parser([&](std::vector<std::string>&& row) {
    if (!saw_header) {
      saw_header = true;
      if (row.size() != schema.num_attributes()) {
        return Status::InvalidArgument(
            "header has " + std::to_string(row.size()) +
            " columns, schema expects " +
            std::to_string(schema.num_attributes()));
      }
      for (size_t a = 0; a < row.size(); ++a) {
        const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
        if (row[a] != attr.name()) {
          return Status::InvalidArgument("column " + std::to_string(a) +
                                         " is '" + row[a] +
                                         "', schema expects '" + attr.name() +
                                         "'");
        }
      }
      return Status::OK();
    }
    ++data_rows;
    if (row.size() != schema.num_attributes()) {
      return Status::IoError("row " + std::to_string(data_rows) +
                             " has wrong field count");
    }
    for (size_t a = 0; a < row.size(); ++a) {
      const auto it = code_of[a].find(row[a]);
      if (it == code_of[a].end()) {
        return Status::InvalidArgument(
            "row " + std::to_string(data_rows) + ": value '" + row[a] +
            "' not in domain of '" +
            schema.attribute(static_cast<AttrIndex>(a)).name() + "'");
      }
      row_codes[a] = it->second;
    }
    dataset.AppendRowUnchecked(row_codes);
    return Status::OK();
  });
  DPX_RETURN_IF_ERROR(StreamFileThroughParser(path, options, parser));
  if (!saw_header) return Status::IoError("'" + path + "' is empty");
  return dataset;
}

}  // namespace dpclustx
