// Synthetic dataset generators.
//
// The paper evaluates on US Census (PUMS 1990), UCI Diabetes, and the 2018
// Stack Overflow survey — datasets we cannot ship. These generators produce
// structurally equivalent substitutes: categorical tables with the same
// attribute counts and domain-size ranges, a planted latent-group structure
// that clustering algorithms can recover, a mix of strongly informative,
// weakly informative, and pure-noise attributes, and uneven group sizes.
// Every DPClustX code path (count scans, quality scores, DP selection, noisy
// histograms) depends only on per-(cluster, attribute) count histograms, so
// these substitutes exercise the system identically; DESIGN.md §1 documents
// the substitution.

#ifndef DPCLUSTX_DATA_SYNTHETIC_H_
#define DPCLUSTX_DATA_SYNTHETIC_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace dpclustx::synth {

struct SyntheticConfig {
  /// Number of tuples to generate.
  size_t num_rows = 100000;
  /// Number of attributes.
  size_t num_attributes = 47;
  /// Number of planted latent groups (the "true" clusters).
  size_t num_latent_groups = 5;
  /// Attribute domain sizes are drawn uniformly from [min_domain,
  /// max_domain].
  size_t min_domain = 2;
  size_t max_domain = 39;
  /// Fraction of attributes whose distribution depends on the latent group.
  double informative_fraction = 0.4;
  /// Mixing weight of the group-specific distribution for informative
  /// attributes (1 = fully determined by group, 0 = pure noise).
  double signal_strength = 0.75;
  /// Zipf-like skew of latent group sizes (0 = equal groups).
  double group_skew = 0.6;
  /// Prefix for generated attribute names ("diab_attr0", ...).
  std::string name_prefix = "attr";
  /// Master seed; the generator is fully deterministic given the config.
  uint64_t seed = 1;
};

/// Generates a dataset under the planted-group model. Returns
/// InvalidArgument for degenerate configs (zero rows/attributes/groups,
/// min_domain < 2, fractions outside [0, 1]).
StatusOr<Dataset> Generate(const SyntheticConfig& config);

/// Diabetes-like preset: 47 attributes, domains 2–39 (paper §6.1), ~100k
/// rows by default.
SyntheticConfig DiabetesLike(size_t num_rows = 100000, uint64_t seed = 11);

/// Census-like preset: 68 attributes, a large table with strong planted
/// structure (the paper's Census runs are the most stable).
SyntheticConfig CensusLike(size_t num_rows = 250000, uint64_t seed = 13);

/// StackOverflow-like preset: 60 attributes, domains 2–22.
SyntheticConfig StackOverflowLike(size_t num_rows = 100000,
                                  uint64_t seed = 17);

/// Numeric synthetic data for discretization studies (the paper's
/// future-work item on binning strategies). Columns are real-valued with
/// group-dependent means; they must be binned (data/binning.h) before
/// entering the categorical pipeline.
struct NumericSyntheticConfig {
  size_t num_rows = 20000;
  size_t num_columns = 12;
  size_t num_latent_groups = 4;
  /// Fraction of columns whose mean depends on the latent group.
  double informative_fraction = 0.5;
  /// Gap between group means, in within-group standard deviations.
  double separation = 2.0;
  uint64_t seed = 1;
};

struct NumericSynthetic {
  /// columns[c][r] — real value of column c at row r.
  std::vector<std::vector<double>> columns;
  /// Planted group of each row (usable directly as cluster labels).
  std::vector<uint32_t> groups;
};

/// Generates numeric columns under the planted-group model. Returns
/// InvalidArgument on degenerate configs.
StatusOr<NumericSynthetic> GenerateNumeric(
    const NumericSyntheticConfig& config);

/// Cramér's V association between two attributes of `dataset` (bias-
/// uncorrected, as in standard practice): sqrt(χ² / (n · (min(r,c) − 1))).
/// Returns 0 for degenerate tables (an attribute with one active value).
double CramersV(const Dataset& dataset, AttrIndex a, AttrIndex b);

/// Returns `dataset` extended with one correlated twin per original
/// attribute, produced by copying the column and re-randomizing entries until
/// the empirical Cramér's V to the original is ≈ target_v (±0.02). Twins are
/// named "<orig>_corr". This reproduces the paper's attribute-correlation
/// robustness experiment (§6.2). Requires 0 < target_v < 1.
StatusOr<Dataset> AddCorrelatedTwins(const Dataset& dataset, double target_v,
                                     uint64_t seed);

}  // namespace dpclustx::synth

#endif  // DPCLUSTX_DATA_SYNTHETIC_H_
