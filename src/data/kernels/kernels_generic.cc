// Scalar reference kernels. Compiled with vectorization disabled (see
// CMakeLists.txt) so "generic" is an honest no-SIMD baseline for the
// per-ISA benchmark sweeps, and the level every other table must match
// bitwise.

#define DPX_KERNEL_NAMESPACE generic_impl
#define DPX_KERNEL_LEVEL ::dpclustx::kernels::IsaLevel::kGeneric
#define DPX_KERNEL_NAME "generic"
#include "data/kernels/kernels_impl.inc"
