#include "data/kernels/isa.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "data/kernels/kernel_table.h"

// Which per-ISA translation units this binary carries. Injected by
// src/data/kernels/CMakeLists.txt on this file only, after probing the
// compiler for each -m flag; the generic TU is always present.

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define DPCLUSTX_X86_CPUID 1
#else
#define DPCLUSTX_X86_CPUID 0
#endif

namespace dpclustx::kernels {

namespace {

bool CompiledIn(IsaLevel level) {
  switch (level) {
    case IsaLevel::kGeneric:
      return true;
    case IsaLevel::kSse2:
#ifdef DPCLUSTX_HAVE_ISA_SSE2
      return true;
#else
      return false;
#endif
    case IsaLevel::kAvx2:
#ifdef DPCLUSTX_HAVE_ISA_AVX2
      return true;
#else
      return false;
#endif
    case IsaLevel::kAvx512:
#ifdef DPCLUSTX_HAVE_ISA_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool CpuSupports(IsaLevel level) {
#if DPCLUSTX_X86_CPUID
  __builtin_cpu_init();
  switch (level) {
    case IsaLevel::kGeneric:
      return true;
    case IsaLevel::kSse2:
      return __builtin_cpu_supports("sse2");
    case IsaLevel::kAvx2:
      return __builtin_cpu_supports("avx2");
    case IsaLevel::kAvx512:
      // The kernels use 512-bit integer lanes on narrow codes (BW), doubles
      // (F/DQ) and 128/256-bit tails (VL), so all four bits gate together.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return level == IsaLevel::kGeneric;
#endif
}

const KernelTable* TablePtr(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx512:
#ifdef DPCLUSTX_HAVE_ISA_AVX512
      return avx512_impl::GetKernelTable();
#else
      break;
#endif
    case IsaLevel::kAvx2:
#ifdef DPCLUSTX_HAVE_ISA_AVX2
      return avx2_impl::GetKernelTable();
#else
      break;
#endif
    case IsaLevel::kSse2:
#ifdef DPCLUSTX_HAVE_ISA_SSE2
      return sse2_impl::GetKernelTable();
#else
      break;
#endif
    case IsaLevel::kGeneric:
      break;
  }
  return generic_impl::GetKernelTable();
}

IsaLevel ClampToDetected(IsaLevel level) {
  const IsaLevel detected = DetectedIsaLevel();
  return level < detected ? level : detected;
}

// Startup level: detected, clamped (never raised) by DPCLUSTX_ISA.
IsaLevel InitialLevel() {
  IsaLevel level = DetectedIsaLevel();
  const char* env = std::getenv("DPCLUSTX_ISA");
  if (env == nullptr || env[0] == '\0') return level;
  IsaLevel requested;
  if (!ParseIsaLevel(env, &requested)) {
    std::fprintf(stderr,
                 "dpclustx: ignoring unknown DPCLUSTX_ISA value '%s' "
                 "(expected generic|sse2|avx2|avx512); dispatching %s\n",
                 env, IsaLevelName(level));
    return level;
  }
  if (requested > level) {
    std::fprintf(stderr,
                 "dpclustx: DPCLUSTX_ISA=%s exceeds what this host/build "
                 "supports; dispatching %s\n",
                 env, IsaLevelName(level));
    return level;
  }
  return requested;
}

std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{TablePtr(InitialLevel())};
  return slot;
}

}  // namespace

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kGeneric:
      return "generic";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "generic";
}

bool ParseIsaLevel(const std::string& text, IsaLevel* level) {
  for (const IsaLevel candidate :
       {IsaLevel::kGeneric, IsaLevel::kSse2, IsaLevel::kAvx2,
        IsaLevel::kAvx512}) {
    if (text == IsaLevelName(candidate)) {
      *level = candidate;
      return true;
    }
  }
  return false;
}

IsaLevel DetectedIsaLevel() {
  static const IsaLevel detected = [] {
    for (const IsaLevel level : {IsaLevel::kAvx512, IsaLevel::kAvx2,
                                 IsaLevel::kSse2}) {
      if (CompiledIn(level) && CpuSupports(level)) return level;
    }
    return IsaLevel::kGeneric;
  }();
  return detected;
}

IsaLevel ActiveIsaLevel() { return Active().level; }

std::vector<IsaLevel> SupportedIsaLevels() {
  std::vector<IsaLevel> levels;
  const IsaLevel detected = DetectedIsaLevel();
  for (const IsaLevel level : {IsaLevel::kGeneric, IsaLevel::kSse2,
                               IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    if (level <= detected && CompiledIn(level)) levels.push_back(level);
  }
  return levels;
}

std::string CpuFeatureString() {
#if DPCLUSTX_X86_CPUID
  __builtin_cpu_init();
  std::string out;
  const auto append = [&out](bool supported, const char* name) {
    if (!supported) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(__builtin_cpu_supports("sse2"), "sse2");
  append(__builtin_cpu_supports("sse4.2"), "sse4.2");
  append(__builtin_cpu_supports("avx"), "avx");
  append(__builtin_cpu_supports("avx2"), "avx2");
  append(__builtin_cpu_supports("fma"), "fma");
  append(__builtin_cpu_supports("avx512f"), "avx512f");
  append(__builtin_cpu_supports("avx512bw"), "avx512bw");
  append(__builtin_cpu_supports("avx512dq"), "avx512dq");
  append(__builtin_cpu_supports("avx512vl"), "avx512vl");
  return out;
#else
  return "";
#endif
}

const KernelTable& Active() {
  return *ActiveSlot().load(std::memory_order_acquire);
}

const KernelTable& TableFor(IsaLevel level) {
  return *TablePtr(ClampToDetected(level));
}

ScopedForceIsa::ScopedForceIsa(IsaLevel level)
    : saved_(ActiveSlot().exchange(TablePtr(ClampToDetected(level)),
                                   std::memory_order_acq_rel)) {}

ScopedForceIsa::~ScopedForceIsa() {
  ActiveSlot().store(saved_, std::memory_order_release);
}

}  // namespace dpclustx::kernels
