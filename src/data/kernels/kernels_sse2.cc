// SSE2 kernels (the x86-64 baseline: 16-byte integer lanes, 2 doubles).

#define DPX_KERNEL_NAMESPACE sse2_impl
#define DPX_KERNEL_LEVEL ::dpclustx::kernels::IsaLevel::kSse2
#define DPX_KERNEL_NAME "sse2"
#include "data/kernels/kernels_impl.inc"
