// AVX2 kernels (32-byte integer lanes, 4 doubles). No -mfma on purpose:
// contraction would break the cross-level float identity (kernels_impl.inc).

#define DPX_KERNEL_NAMESPACE avx2_impl
#define DPX_KERNEL_LEVEL ::dpclustx::kernels::IsaLevel::kAvx2
#define DPX_KERNEL_NAME "avx2"
#include "data/kernels/kernels_impl.inc"
