// Runtime ISA dispatch for the multi-arch data-plane kernels (DESIGN.md §12).
//
// The hot width-monomorphic kernels (histogram counting, embedding, the
// k-modes Hamming tile, the GMM/centroid float primitives) are compiled once
// per ISA level — baseline scalar, SSE2, AVX2, AVX-512 — into separate
// translation units with per-TU target flags (src/data/kernels/CMakeLists).
// At first use the process picks the best level the CPU supports via cpuid
// and publishes one KernelTable of function pointers; the existing
// VisitColumn width dispatch calls through it, so release binaries are fast
// on every machine without a -march=native build.
//
// Level selection can be clamped (never raised) with the DPCLUSTX_ISA
// environment variable: generic|sse2|avx2|avx512. Requesting a level the
// host or build lacks falls back to the best supported one with a warning —
// the variable exists for A/B benchmarking and for the forced-level
// equivalence sweeps in scripts/check.sh.
//
// Determinism contract: every integer kernel is bitwise-identical across
// levels by construction (integer sums reorder freely), and the float
// kernels are too, because (a) all kernel TUs are compiled with
// -ffp-contract=off so no level fuses multiply-add, and (b) every float
// reduction runs the same fixed eight-accumulator structure regardless of
// vector width (kernels_impl.inc). tests/dataset_layout_test enforces this
// per level.

#ifndef DPCLUSTX_DATA_KERNELS_ISA_H_
#define DPCLUSTX_DATA_KERNELS_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dpclustx::kernels {

struct KernelTable;

/// Dispatch levels, ascending. Comparison order is meaningful: a level is
/// usable iff it is <= DetectedIsaLevel().
enum class IsaLevel : uint8_t { kGeneric = 0, kSse2 = 1, kAvx2 = 2,
                                kAvx512 = 3 };

/// "generic", "sse2", "avx2", "avx512".
const char* IsaLevelName(IsaLevel level);

/// Parses an IsaLevel name (the DPCLUSTX_ISA vocabulary). Returns false and
/// leaves `level` untouched on an unknown name.
bool ParseIsaLevel(const std::string& text, IsaLevel* level);

/// Best level that is both compiled into this binary and supported by the
/// CPU (cpuid). Constant for the process lifetime.
IsaLevel DetectedIsaLevel();

/// The level the process dispatches to: DetectedIsaLevel() clamped by
/// DPCLUSTX_ISA, read once at first kernel use.
IsaLevel ActiveIsaLevel();

/// All usable levels, ascending — generic first, DetectedIsaLevel() last.
/// The forced-level equivalence tests and bench sweeps iterate this.
std::vector<IsaLevel> SupportedIsaLevels();

/// Space-separated cpuid feature list of this host (e.g. "sse2 sse4.2 avx
/// avx2 avx512f avx512bw avx512dq avx512vl"), independent of what this
/// build compiled in. Stamped into bench snapshots. Empty on non-x86.
std::string CpuFeatureString();

/// The process-wide kernel table (detected level clamped by DPCLUSTX_ISA).
/// Hot loops should hoist the reference out of per-row code.
const KernelTable& Active();

/// The table for an explicit level, clamped to DetectedIsaLevel() — asking
/// for more than the host supports returns the best usable table.
const KernelTable& TableFor(IsaLevel level);

/// Temporarily forces the process-wide table to `level` (clamped to the
/// detected level); restores the previous table on destruction. Test and
/// benchmark use only — swapping is atomic but not synchronized against
/// kernels already running on other threads.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(IsaLevel level);
  ~ScopedForceIsa();
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  const KernelTable* saved_;
};

}  // namespace dpclustx::kernels

#endif  // DPCLUSTX_DATA_KERNELS_ISA_H_
