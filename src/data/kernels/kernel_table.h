// The per-ISA kernel function-pointer table (DESIGN.md §12).
//
// One KernelTable exists per compiled ISA level; kernels::Active() (isa.h)
// returns the one matching the host CPU. Entries are plain function
// pointers so the call sites stay free of templates over the ISA dimension:
// the width dimension is handled by the caller's VisitColumn dispatch, which
// picks the matching _u8/_u16/_u32 entry via the overload helpers below.
//
// Contract for every entry (enforced by tests/dataset_layout_test):
//   - integer kernels produce bitwise-identical outputs at every level;
//   - float kernels produce bitwise-identical outputs at every level
//     (fixed eight-accumulator reductions, no FMA contraction);
//   - no entry validates its inputs — callers check codes/labels/bounds.

#ifndef DPCLUSTX_DATA_KERNELS_KERNEL_TABLE_H_
#define DPCLUSTX_DATA_KERNELS_KERNEL_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/kernels/isa.h"

namespace dpclustx::kernels {

struct KernelTable {
  IsaLevel level;
  const char* name;

  /// counts[codes[row]] += 1 for row in [begin, end); bins = domain size.
  /// Banked 4-way when bins fits L1 (see kernels_impl.inc).
  void (*hist_u8)(const uint8_t* codes, size_t begin, size_t end, size_t bins,
                  uint64_t* counts);
  void (*hist_u16)(const uint16_t* codes, size_t begin, size_t end,
                   size_t bins, uint64_t* counts);
  void (*hist_u32)(const uint32_t* codes, size_t begin, size_t end,
                   size_t bins, uint64_t* counts);

  /// counts[codes[rows[i]]] += 1 for i in [0, n) — the sub-bag histogram.
  void (*hist_rows_u8)(const uint8_t* codes, const uint32_t* rows, size_t n,
                       size_t bins, uint64_t* counts);
  void (*hist_rows_u16)(const uint16_t* codes, const uint32_t* rows, size_t n,
                        size_t bins, uint64_t* counts);
  void (*hist_rows_u32)(const uint32_t* codes, const uint32_t* rows, size_t n,
                        size_t bins, uint64_t* counts);

  /// base[labels[row]*domain + codes[row]] += 1 for row in [begin, end).
  /// `bank` is caller-owned scratch reused across calls; end - begin must
  /// stay below 2^32 so the banked uint32 partials cannot overflow.
  void (*group_hist_u8)(const uint8_t* codes, const uint32_t* labels,
                        size_t begin, size_t end, size_t domain,
                        size_t num_groups, uint64_t* base,
                        std::vector<uint32_t>* bank);
  void (*group_hist_u16)(const uint16_t* codes, const uint32_t* labels,
                         size_t begin, size_t end, size_t domain,
                         size_t num_groups, uint64_t* base,
                         std::vector<uint32_t>* bank);
  void (*group_hist_u32)(const uint32_t* codes, const uint32_t* labels,
                         size_t begin, size_t end, size_t domain,
                         size_t num_groups, uint64_t* base,
                         std::vector<uint32_t>* bank);

  /// out[(row-begin)*stride] = offset + scale*codes[row] for row in
  /// [begin, end) — one strided embedded coordinate column.
  void (*embed_u8)(const uint8_t* codes, size_t begin, size_t end,
                   double scale, double offset, double* out, size_t stride);
  void (*embed_u16)(const uint16_t* codes, size_t begin, size_t end,
                    double scale, double offset, double* out, size_t stride);
  void (*embed_u32)(const uint32_t* codes, size_t begin, size_t end,
                    double scale, double offset, double* out, size_t stride);

  /// partial[r] += (col[r] != mode) for r in [0, n) — one attribute of the
  /// Hamming tile, accumulating at the codes' own lane width (uint32
  /// accumulates straight into the 32-bit distance block).
  void (*hamming_u8)(const uint8_t* col, size_t n, uint8_t mode,
                     uint8_t* partial);
  void (*hamming_u16)(const uint16_t* col, size_t n, uint16_t mode,
                      uint16_t* partial);
  void (*hamming_u32)(const uint32_t* col, size_t n, uint32_t mode,
                      uint32_t* partial);

  /// Σ (x[i]-y[i])² over [0, n), fixed eight-accumulator reduction.
  double (*squared_distance)(const double* x, const double* y, size_t n);

  /// Σ (x[i]-mean[i])²·inv_var[i] over [0, n), same reduction structure —
  /// the GMM E-step quadratic form (variances pre-inverted by the caller).
  double (*quad_form)(const double* x, const double* mean,
                      const double* inv_var, size_t n);

  /// y[i] += a·x[i] — the E-step responsibility-weighted coordinate
  /// accumulation (elementwise, so lane-exact at any width).
  void (*axpy)(double a, const double* x, double* y, size_t n);

  /// acc[i] += w·(x[i]-mean[i])² — the M-step variance accumulation.
  void (*weighted_sq_acc)(double w, const double* x, const double* mean,
                          double* acc, size_t n);
};

/// Per-ISA table accessors, defined one per translation unit. Only levels
/// compiled into the binary are referenced (isa.cc, under the
/// DPCLUSTX_HAVE_ISA_* definitions its CMake rule injects).
namespace generic_impl { const KernelTable* GetKernelTable(); }
namespace sse2_impl { const KernelTable* GetKernelTable(); }
namespace avx2_impl { const KernelTable* GetKernelTable(); }
namespace avx512_impl { const KernelTable* GetKernelTable(); }

/// Overload helpers: pick the table entry matching a typed code pointer, so
/// VisitColumn lambdas stay width-generic:
///   VisitColumn(view, [&](const auto* codes) {
///     HistFn(table, codes)(codes, begin, end, bins, counts);
///   });
inline auto HistFn(const KernelTable& t, const uint8_t*) { return t.hist_u8; }
inline auto HistFn(const KernelTable& t, const uint16_t*) {
  return t.hist_u16;
}
inline auto HistFn(const KernelTable& t, const uint32_t*) {
  return t.hist_u32;
}

inline auto HistRowsFn(const KernelTable& t, const uint8_t*) {
  return t.hist_rows_u8;
}
inline auto HistRowsFn(const KernelTable& t, const uint16_t*) {
  return t.hist_rows_u16;
}
inline auto HistRowsFn(const KernelTable& t, const uint32_t*) {
  return t.hist_rows_u32;
}

inline auto GroupHistFn(const KernelTable& t, const uint8_t*) {
  return t.group_hist_u8;
}
inline auto GroupHistFn(const KernelTable& t, const uint16_t*) {
  return t.group_hist_u16;
}
inline auto GroupHistFn(const KernelTable& t, const uint32_t*) {
  return t.group_hist_u32;
}

inline auto EmbedFn(const KernelTable& t, const uint8_t*) {
  return t.embed_u8;
}
inline auto EmbedFn(const KernelTable& t, const uint16_t*) {
  return t.embed_u16;
}
inline auto EmbedFn(const KernelTable& t, const uint32_t*) {
  return t.embed_u32;
}

inline auto HammingFn(const KernelTable& t, const uint8_t*) {
  return t.hamming_u8;
}
inline auto HammingFn(const KernelTable& t, const uint16_t*) {
  return t.hamming_u16;
}
inline auto HammingFn(const KernelTable& t, const uint32_t*) {
  return t.hamming_u32;
}

}  // namespace dpclustx::kernels

#endif  // DPCLUSTX_DATA_KERNELS_KERNEL_TABLE_H_
