// AVX-512 kernels (64-byte integer lanes, 8 doubles — one vector per
// accumulator bank of the fixed float reduction). Requires F+BW+DQ+VL at
// runtime; isa.cc gates dispatch on all four cpuid bits.

#define DPX_KERNEL_NAMESPACE avx512_impl
#define DPX_KERNEL_LEVEL ::dpclustx::kernels::IsaLevel::kAvx512
#define DPX_KERNEL_NAME "avx512"
#include "data/kernels/kernels_impl.inc"
