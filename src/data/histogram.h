// Histogram over an attribute's domain.
//
// A histogram h_A(D) maps every value of dom(A) to a count (paper §2). Bins
// are doubles because DP-noised histograms carry non-integer (and, before
// clamping, possibly negative) counts; exact histograms hold integers
// exactly (counts well below 2^53).

#ifndef DPCLUSTX_DATA_HISTOGRAM_H_
#define DPCLUSTX_DATA_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/schema.h"

namespace dpclustx {

class Histogram {
 public:
  Histogram() = default;
  /// Zero histogram over a domain of `domain_size` bins.
  explicit Histogram(size_t domain_size) : bins_(domain_size, 0.0) {}
  /// Histogram with the given bin contents.
  explicit Histogram(std::vector<double> bins) : bins_(std::move(bins)) {}

  size_t domain_size() const { return bins_.size(); }
  double bin(ValueCode code) const { return bins_[code]; }
  const std::vector<double>& bins() const { return bins_; }

  void set_bin(ValueCode code, double value) { bins_[code] = value; }
  void Increment(ValueCode code, double by = 1.0) { bins_[code] += by; }

  /// Sum of all bins.
  double Total() const;

  /// Bin values as a probability vector. An all-zero histogram normalizes to
  /// the uniform distribution (the convention avoids 0/0 for empty noisy
  /// clusters and only arises in degenerate inputs).
  std::vector<double> Normalized() const;

  /// Index of the largest bin (ties broken toward the smaller code).
  ValueCode ArgMax() const;

  /// L1 distance between raw bin vectors. Requires equal domain sizes.
  static double L1Distance(const Histogram& a, const Histogram& b);

  /// Total variation distance between the *normalized* histograms:
  ///   TVD = (1/2)·Σ_a |p(a) − q(a)|   (paper Eq. 1).
  /// Requires equal domain sizes.
  static double Tvd(const Histogram& a, const Histogram& b);

  /// Jensen–Shannon *distance* (square root of the divergence, log base 2 so
  /// the range is [0, 1]) between the normalized histograms.
  static double JensenShannonDistance(const Histogram& a, const Histogram& b);

  /// max(this − other, 0) bin-wise — the paper's out-of-cluster histogram
  /// derivation (Algorithm 2, line 13). Requires equal domain sizes.
  Histogram SubtractClamped(const Histogram& other) const;

  /// Bin-wise sum. Requires equal domain sizes.
  Histogram Plus(const Histogram& other) const;

  /// Bin-wise sum in place (no O(domain) allocation, unlike Plus). Requires
  /// equal domain sizes. The fold primitive of hot count paths
  /// (StatsCache::Build's full-histogram fold).
  void PlusInPlace(const Histogram& other);

  /// Rounds every bin to the nearest non-negative integer (presentation
  /// post-processing of noisy histograms).
  Histogram RoundedNonNegative() const;

  /// Multi-line ASCII rendering with proportional bars, labeled by `attr`'s
  /// value labels. For examples and debugging.
  std::string ToAsciiArt(const Attribute& attr, size_t bar_width = 40) const;

 private:
  std::vector<double> bins_;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_HISTOGRAM_H_
