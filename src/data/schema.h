// Relational schema for DPClustX datasets.
//
// Following the paper (§2, "Data"), every attribute has a discrete, finite,
// and data-independent domain. Domains are data-independent because DP noise
// must be added to *every* domain value's count, including values that do not
// occur in the sensitive dataset — otherwise the histogram's support would
// leak information. Cell values are stored as dense codes in
// [0, domain_size); the schema maps codes to human-readable labels.

#ifndef DPCLUSTX_DATA_SCHEMA_H_
#define DPCLUSTX_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpclustx {

/// Dense code of a categorical value within its attribute's domain.
using ValueCode = uint32_t;
/// Index of an attribute within a schema.
using AttrIndex = uint32_t;

/// One attribute: a name plus an ordered list of value labels defining the
/// domain. The label at position i names code i.
class Attribute {
 public:
  /// Creates an attribute whose domain is the given ordered label list.
  /// Requires a non-empty, duplicate-free label list (checked lazily by
  /// Schema validation).
  Attribute(std::string name, std::vector<std::string> value_labels)
      : name_(std::move(name)), value_labels_(std::move(value_labels)) {}

  /// Creates an attribute with an anonymous domain of `domain_size` values
  /// labeled "v0", "v1", ....
  static Attribute WithAnonymousDomain(std::string name, size_t domain_size);

  const std::string& name() const { return name_; }
  size_t domain_size() const { return value_labels_.size(); }
  const std::vector<std::string>& value_labels() const {
    return value_labels_;
  }
  const std::string& label(ValueCode code) const {
    return value_labels_[code];
  }

  /// Returns the code of `label`, or NotFound. Linear scan — use only on
  /// ingestion paths, not inner loops.
  StatusOr<ValueCode> CodeOf(const std::string& label) const;

 private:
  std::string name_;
  std::vector<std::string> value_labels_;
};

/// An ordered collection of attributes. Immutable once built.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(AttrIndex index) const {
    return attributes_[index];
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or NotFound.
  StatusOr<AttrIndex> FindAttribute(const std::string& name) const;

  /// Verifies the schema is well-formed: at least one attribute, unique
  /// attribute names, non-empty duplicate-free domains.
  Status Validate() const;

  /// Schema restricted to the given attribute indices, in the given order.
  Schema Project(const std::vector<AttrIndex>& indices) const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_SCHEMA_H_
