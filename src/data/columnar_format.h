// DPXCOL — the on-disk columnar dataset format, mmap-opened zero-copy.
//
// A DPXCOL file is the narrow-width column layout of data/column.h written
// to disk verbatim, so a Dataset can map it read-only and hand the existing
// width-dispatched kernels pointers straight into the page cache:
//
//   magic   "DPXCOL\n\0"                                   (8 bytes)
//   version u32 little-endian format version               (4 bytes)
//   hlen    u64 header payload byte count                  (8 bytes)
//   hcrc    u32 CRC-32 of the header payload               (4 bytes)
//   header  hlen bytes (ByteWriter-encoded, see below)
//   padding zero bytes to the first 64-byte boundary
//   column* one raw code array per attribute, each starting at a 64-byte
//           aligned absolute offset recorded in the header
//
// The header payload is:
//
//   u64 file_uid        random identity minted at creation, preserved by
//                       appends and grows — snapshots fingerprint the file
//                       with (path, file_uid, rows) instead of inlining rows
//   u8  width_policy    WidthPolicy the columns were laid out under
//   u64 num_rows        committed rows (every column has exactly this many)
//   u64 capacity_rows   rows of reserved space per column (>= num_rows)
//   schema              u64 attr count, then per attribute: name string,
//                       u64 domain size, one label string per domain value
//   u64 num_columns     == attr count (explicit for structural checking)
//   per column:         u8 width tag, u64 absolute file offset,
//                       u64 max code present in the committed rows,
//                       u32 CRC-32 of the committed rows' bytes
//
// Every header field is fixed-width and the schema never changes after
// creation, so the encoded header length is a constant of the file. That is
// the commit protocol for appends: write the new tail bytes into each
// column's reserved space first, then pwrite the re-encoded header (same
// length, new num_rows/max_code/CRC) over the old one. A crash between the
// two leaves the old header — which still describes a fully valid file.
//
// Trust model (DESIGN.md §13): opening verifies magic/version/header CRC
// and every structural invariant (offsets in bounds, widths matching the
// policy, max codes inside the domains) in O(header) time — that is what
// makes a 2.46M×68 file open in milliseconds. The column payloads are
// checksummed on write but only re-verified under
// ColumnarOpenOptions::verify_data (or VerifyData()), because a full scan
// is exactly the cost mmap exists to avoid. A DPXCOL file is a trusted
// local artifact, like a snapshot; run `dpclustx_convert --verify` on
// anything of doubtful provenance before serving it.
//
// The loader is forward-refusing like the snapshot loader: a newer format
// version is FailedPrecondition, any structural or CRC mismatch is IoError.
//
// Concurrency: any number of processes may map one file for reading (the
// pages are shared, which is the point). Appends must be serialized by the
// owner — one writer per file, no writer in another process. Readers that
// opened before an append keep seeing their row count (MappedColumnar is an
// immutable row-count snapshot over a shared mapping); a grow that outruns
// capacity rewrites to a new inode and renames, so old mappings stay valid.

#ifndef DPCLUSTX_DATA_COLUMNAR_FORMAT_H_
#define DPCLUSTX_DATA_COLUMNAR_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace dpclustx {

/// 8-byte file magic; trailing newline catches ASCII-mode mangling.
inline constexpr char kColumnarMagic[8] = {'D', 'P', 'X', 'C',
                                           'O', 'L', '\n', '\0'};

/// Current DPXCOL format version; the loader refuses anything newer.
inline constexpr uint32_t kColumnarFormatVersion = 1;

struct ColumnarWriteOptions {
  /// Reserved rows per column. 0 means exactly the dataset's row count;
  /// anything larger pre-allocates space so appends can commit in place
  /// without rewriting the file.
  size_t capacity_rows = 0;
};

struct ColumnarOpenOptions {
  /// Re-verify every column's data CRC and re-scan max codes (O(data)).
  /// Off by default — see the trust model in the file comment.
  bool verify_data = false;
};

namespace columnar_internal {
struct Mapping;  // refcounted fd + mmap span, shared across append snapshots
}  // namespace columnar_internal

/// An immutable view of one DPXCOL file at a fixed committed row count.
/// Appends return a new MappedColumnar (sharing the mapping when capacity
/// sufficed); existing handles never change underneath their readers.
class MappedColumnar {
 public:
  /// Maps `path` read-only and validates it (see trust model above). The
  /// file is also opened read-write if permissions allow, which is what
  /// makes AppendRowsToColumnar possible on the returned handle.
  static StatusOr<std::shared_ptr<const MappedColumnar>> Open(
      const std::string& path, const ColumnarOpenOptions& options = {});

  MappedColumnar(const MappedColumnar&) = delete;
  MappedColumnar& operator=(const MappedColumnar&) = delete;
  ~MappedColumnar();

  const std::string& path() const { return path_; }
  uint64_t file_uid() const { return file_uid_; }
  const Schema& schema() const { return schema_; }
  WidthPolicy width_policy() const { return width_policy_; }
  size_t num_rows() const { return num_rows_; }
  size_t capacity_rows() const { return capacity_rows_; }
  /// True when the underlying fd is writable (appends possible).
  bool writable() const;

  ColumnWidth column_width(AttrIndex attr) const {
    return column_widths_[attr];
  }

  /// Read-only span over the first `rows` committed codes of one column,
  /// pointing directly into the mapping. `rows` must be <= num_rows().
  ColumnView column(AttrIndex attr, size_t rows) const;

  /// Full O(data) integrity pass: per-column CRC over the committed rows
  /// plus a max-code rescan against the header's recorded values.
  Status VerifyData() const;

 private:
  friend StatusOr<std::shared_ptr<const MappedColumnar>> AppendRowsToColumnar(
      const std::shared_ptr<const MappedColumnar>& base,
      const std::vector<std::vector<ValueCode>>& rows);

  MappedColumnar() = default;

  /// Re-encodes the header payload from current fields (constant length).
  std::string EncodeHeaderPayload() const;

  std::shared_ptr<columnar_internal::Mapping> mapping_;
  std::string path_;
  uint64_t file_uid_ = 0;
  Schema schema_;
  WidthPolicy width_policy_ = WidthPolicy::kAdaptive;
  size_t num_rows_ = 0;
  size_t capacity_rows_ = 0;
  std::vector<ColumnWidth> column_widths_;
  std::vector<uint64_t> column_offsets_;    // absolute file offsets
  std::vector<uint64_t> column_max_codes_;  // over the committed rows
  std::vector<uint32_t> column_crcs_;       // over the committed rows' bytes
};

/// Writes `dataset` to `path` as a DPXCOL file (atomically: temp file +
/// rename), minting a fresh file_uid. The dataset must be heap-backed or
/// mapped — either works; bytes are copied out column by column.
Status WriteColumnarFile(const Dataset& dataset, const std::string& path,
                         const ColumnarWriteOptions& options = {});

/// Appends `rows` (validated against the schema) to the file behind `base`
/// and returns a new handle at the extended row count. If the reserved
/// capacity suffices, the tail is pwritten into place and the header
/// re-committed — the returned handle shares `base`'s mapping. Otherwise
/// the file is rewritten to a new inode with doubled capacity and renamed
/// over `path`; `base` stays valid on the old inode. The caller must
/// serialize appends to one file.
StatusOr<std::shared_ptr<const MappedColumnar>> AppendRowsToColumnar(
    const std::shared_ptr<const MappedColumnar>& base,
    const std::vector<std::vector<ValueCode>>& rows);

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_COLUMNAR_FORMAT_H_
