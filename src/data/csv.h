// CSV ingestion and export.
//
// Lets users run DPClustX on their own tabular data. Reading without a
// schema infers one (each column's domain = distinct cell values in order of
// first appearance); reading with a schema enforces the data-independent
// domains that DP requires. The parser handles RFC 4180 quoting (quoted
// fields, embedded commas/newlines, doubled quotes) and is strict about
// malformed quoting: a stray character after a closed quoted field is an
// IoError with the row/column position, never a silent guess.
//
// Files are streamed in chunks through csv_internal::StreamParser — peak
// memory is one chunk plus the dataset being built, not file + rows +
// columns at once — and gated by CsvReadOptions::max_bytes the same way the
// service gates request lines with max_request_bytes.

#ifndef DPCLUSTX_DATA_CSV_H_
#define DPCLUSTX_DATA_CSV_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace dpclustx {

struct CsvReadOptions {
  /// Refuse files larger than this many bytes (0 = no limit). The analogue
  /// of the service's max_request_bytes for the file-ingest path: a
  /// full-scale CSV should go through dpclustx_convert → DPXCOL, not an
  /// unbounded in-service parse.
  size_t max_bytes = 0;
};

/// Writes `dataset` to `path` with a header of attribute names and cells
/// rendered as value labels. Labels containing commas, quotes, CR, or LF
/// are quoted, so WriteCsv → ReadCsv round-trips them exactly.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV file, inferring a categorical schema from its contents.
/// NOTE: an inferred domain is data-*dependent*; releasing histograms over it
/// is only DP with respect to that fixed domain. Prefer ReadCsvWithSchema for
/// production use.
StatusOr<Dataset> ReadCsv(const std::string& path,
                          const CsvReadOptions& options = {});

/// Reads a CSV file whose header must match `schema`'s attribute names and
/// whose cells must all be labels from the corresponding domains.
StatusOr<Dataset> ReadCsvWithSchema(const std::string& path,
                                    const Schema& schema,
                                    const CsvReadOptions& options = {});

namespace csv_internal {

/// Incremental RFC 4180 parser. Push chunks with Feed (any split points,
/// including mid-quote and mid-CRLF), then call Finish once; every complete
/// row is handed to the callback, which may return a non-OK Status to abort
/// the parse (propagated to the Feed/Finish caller).
///
/// Dialect notes:
///   - CR is a row terminator only as part of CRLF or as the last byte of
///     the input (a torn final CRLF); a bare CR inside an unquoted field is
///     preserved as data, matching WriteCsv's quoting of CR on output.
///   - After a closed quoted field the only legal continuations are a
///     comma, a row end, or end of input; anything else ("a"b) is an
///     IoError naming the 1-based row and column.
///   - A quote inside an unquoted field (ab"c) is kept literally, as
///     before.
class StreamParser {
 public:
  using RowCallback = std::function<Status(std::vector<std::string>&& row)>;

  explicit StreamParser(RowCallback on_row) : on_row_(std::move(on_row)) {}

  Status Feed(const char* data, size_t size);
  Status Finish();

  /// 1-based row number the parser is currently inside (rows emitted + 1).
  size_t row_number() const { return rows_emitted_ + 1; }

 private:
  enum class State : uint8_t {
    kFieldStart,     // nothing consumed for the current field yet
    kUnquoted,       // inside an unquoted field
    kQuoted,         // inside a quoted field
    kQuoteInQuoted,  // saw a quote inside a quoted field; '"' escapes it
    kQuoteClosed,    // quoted field just closed; ',', row end, or EOF only
  };

  Status Consume(char c);
  Status EndRow();
  Status StrayError(char c) const;

  RowCallback on_row_;
  State state_ = State::kFieldStart;
  bool pending_cr_ = false;  // saw CR, waiting to see whether LF follows
  std::string field_;
  std::vector<std::string> row_;
  bool field_started_ = false;
  size_t rows_emitted_ = 0;
  size_t column_ = 0;  // 1-based byte position in the current row's text
  bool finished_ = false;
};

/// Splits one in-memory CSV document into rows of fields (exposed for
/// tests; implemented on StreamParser, so both paths share one dialect).
StatusOr<std::vector<std::vector<std::string>>> ParseDocument(
    const std::string& text);

}  // namespace csv_internal

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_CSV_H_
