// CSV ingestion and export.
//
// Lets users run DPClustX on their own tabular data. Reading without a
// schema infers one (each column's domain = distinct cell values in order of
// first appearance); reading with a schema enforces the data-independent
// domains that DP requires. The parser handles RFC 4180 quoting (quoted
// fields, embedded commas/newlines, doubled quotes).

#ifndef DPCLUSTX_DATA_CSV_H_
#define DPCLUSTX_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace dpclustx {

/// Writes `dataset` to `path` with a header of attribute names and cells
/// rendered as value labels.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV file, inferring a categorical schema from its contents.
/// NOTE: an inferred domain is data-*dependent*; releasing histograms over it
/// is only DP with respect to that fixed domain. Prefer ReadCsvWithSchema for
/// production use.
StatusOr<Dataset> ReadCsv(const std::string& path);

/// Reads a CSV file whose header must match `schema`'s attribute names and
/// whose cells must all be labels from the corresponding domains.
StatusOr<Dataset> ReadCsvWithSchema(const std::string& path,
                                    const Schema& schema);

namespace csv_internal {
/// Splits one CSV document into rows of fields (exposed for tests).
StatusOr<std::vector<std::vector<std::string>>> ParseDocument(
    const std::string& text);
}  // namespace csv_internal

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_CSV_H_
