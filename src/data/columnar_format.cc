#include "data/columnar_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>

#include "common/logging.h"
#include "snapshot/crc32.h"
#include "snapshot/snapshot_io.h"

namespace dpclustx {

namespace columnar_internal {

/// Refcounted fd + mmap span. Shared by every MappedColumnar snapshot of
/// one open file, so an in-place append does not remap and existing Dataset
/// views stay valid for as long as any of them is alive.
struct Mapping {
  int fd = -1;
  void* base = nullptr;
  size_t length = 0;
  bool writable = false;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (base != nullptr) ::munmap(base, length);
    if (fd >= 0) ::close(fd);
  }

  const char* bytes() const { return static_cast<const char*>(base); }
};

}  // namespace columnar_internal

namespace {

using columnar_internal::Mapping;
using snapshot::ByteReader;
using snapshot::ByteWriter;
using snapshot::Crc32;

// Column payloads start at 64-byte boundaries: cache-line aligned, and a
// multiple of every element width, so typed loads through the mapping are
// always aligned.
constexpr size_t kColumnAlignment = 64;
// magic(8) + version u32(4) + header length u64(8) + header crc u32(4).
constexpr size_t kFixedPrefixBytes = 24;

size_t AlignUp(size_t offset) {
  return (offset + kColumnAlignment - 1) / kColumnAlignment * kColumnAlignment;
}

uint64_t MintFileUid() {
  // Identity only (snapshots cross-check it against the path they saved);
  // not security-sensitive, but collisions across files should be unlikely.
  std::random_device rd;
  uint64_t uid = (uint64_t{rd()} << 32) ^ uint64_t{rd()};
  if (uid == 0) uid = 1;
  return uid;
}

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

Status PWriteAll(int fd, const void* data, size_t size, uint64_t offset,
                 const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite failed on", path);
    }
    p += n;
    left -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

struct ColumnMeta {
  ColumnWidth width = ColumnWidth::k32;
  uint64_t offset = 0;
  uint64_t max_code = 0;
  uint32_t crc = 0;
};

std::string EncodeHeader(uint64_t file_uid, WidthPolicy policy,
                         uint64_t num_rows, uint64_t capacity_rows,
                         const Schema& schema,
                         const std::vector<ColumnMeta>& columns) {
  ByteWriter w;
  w.PutU64(file_uid);
  w.PutU8(static_cast<uint8_t>(policy));
  w.PutU64(num_rows);
  w.PutU64(capacity_rows);
  w.PutU64(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    w.PutString(attr.name());
    w.PutU64(attr.domain_size());
    for (size_t v = 0; v < attr.domain_size(); ++v) {
      w.PutString(attr.label(static_cast<ValueCode>(v)));
    }
  }
  w.PutU64(columns.size());
  for (const ColumnMeta& col : columns) {
    w.PutU8(static_cast<uint8_t>(col.width));
    w.PutU64(col.offset);
    w.PutU64(col.max_code);
    w.PutU32(col.crc);
  }
  return w.Take();
}

/// One column's payload as (head, tail) byte spans — head is the already
/// committed bytes (heap column or old mapping), tail the rows being
/// appended. max_code/crc cover head+tail and are computed by the caller.
struct ColumnSource {
  ColumnWidth width = ColumnWidth::k32;
  const void* head = nullptr;
  size_t head_bytes = 0;
  const void* tail = nullptr;
  size_t tail_bytes = 0;
  uint64_t max_code = 0;
  uint32_t crc = 0;
};

/// Streams a complete DPXCOL image to `path` atomically (tmp + fsync +
/// rename). Used by both the fresh-write and the grow-on-append paths.
Status WriteImage(const std::string& path, uint64_t file_uid,
                  WidthPolicy policy, const Schema& schema, uint64_t num_rows,
                  uint64_t capacity_rows, const std::vector<ColumnSource>& cols) {
  DPX_CHECK_LE(num_rows, capacity_rows);
  // Lay out the column blocks. Every header field is fixed-width, so the
  // encoded length does not depend on the offsets — encode once with
  // placeholder metas to learn it, then fill in the real offsets.
  std::vector<ColumnMeta> metas(cols.size());
  const size_t header_len =
      EncodeHeader(file_uid, policy, num_rows, capacity_rows, schema, metas)
          .size();
  size_t offset = AlignUp(kFixedPrefixBytes + header_len);
  for (size_t a = 0; a < cols.size(); ++a) {
    metas[a].width = cols[a].width;
    metas[a].offset = offset;
    metas[a].max_code = cols[a].max_code;
    metas[a].crc = cols[a].crc;
    offset = AlignUp(offset + capacity_rows * ColumnWidthBytes(cols[a].width));
  }
  const size_t total_bytes = offset;
  const std::string header =
      EncodeHeader(file_uid, policy, num_rows, capacity_rows, schema, metas);
  DPX_CHECK_EQ(header.size(), header_len);

  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC,
                        0644);
  if (fd < 0) return ErrnoError("cannot create", tmp);
  auto fail = [&](Status status) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };
  // ftruncate reserves the full capacity and zero-fills the uncommitted
  // space (sparse where the filesystem allows).
  if (::ftruncate(fd, static_cast<off_t>(total_bytes)) != 0) {
    return fail(ErrnoError("cannot size", tmp));
  }
  ByteWriter prefix;
  prefix.PutBytes(kColumnarMagic, sizeof(kColumnarMagic));
  prefix.PutU32(kColumnarFormatVersion);
  prefix.PutU64(header.size());
  prefix.PutU32(Crc32(header.data(), header.size()));
  DPX_CHECK_EQ(prefix.buffer().size(), kFixedPrefixBytes);
  Status status =
      PWriteAll(fd, prefix.buffer().data(), prefix.buffer().size(), 0, tmp);
  if (status.ok()) status = PWriteAll(fd, header.data(), header.size(),
                                      kFixedPrefixBytes, tmp);
  for (size_t a = 0; status.ok() && a < cols.size(); ++a) {
    status = PWriteAll(fd, cols[a].head, cols[a].head_bytes, metas[a].offset,
                       tmp);
    if (status.ok() && cols[a].tail_bytes != 0) {
      status = PWriteAll(fd, cols[a].tail, cols[a].tail_bytes,
                         metas[a].offset + cols[a].head_bytes, tmp);
    }
  }
  if (!status.ok()) return fail(std::move(status));
  if (::fsync(fd) != 0) return fail(ErrnoError("fsync failed on", tmp));
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoError("cannot rename over", path);
  }
  return Status::OK();
}

ColumnWidth ExpectedWidth(WidthPolicy policy, size_t domain_size) {
  return policy == WidthPolicy::kForce32 ? ColumnWidth::k32
                                         : NarrowestColumnWidth(domain_size);
}

/// Scans a view's codes for the maximum (0 for an empty view).
uint64_t MaxCode(const ColumnView& view) {
  uint64_t max_code = 0;
  VisitColumn(view, [&](const auto* codes) {
    for (size_t row = 0; row < view.size(); ++row) {
      max_code = std::max<uint64_t>(max_code, codes[row]);
    }
  });
  return max_code;
}

const void* ViewData(const ColumnView& view) {
  const void* data = nullptr;
  VisitColumn(view, [&](const auto* codes) { data = codes; });
  return data;
}

}  // namespace

// ---- write ----------------------------------------------------------------

Status WriteColumnarFile(const Dataset& dataset, const std::string& path,
                         const ColumnarWriteOptions& options) {
  DPX_RETURN_IF_ERROR(dataset.schema().Validate());
  const size_t rows = dataset.num_rows();
  const size_t capacity = std::max(options.capacity_rows, rows);
  std::vector<ColumnSource> cols(dataset.num_attributes());
  for (size_t a = 0; a < cols.size(); ++a) {
    const ColumnView view = dataset.column(static_cast<AttrIndex>(a));
    cols[a].width = view.width();
    cols[a].head = ViewData(view);
    cols[a].head_bytes = rows * ColumnWidthBytes(view.width());
    cols[a].max_code = MaxCode(view);
    cols[a].crc = Crc32(cols[a].head, cols[a].head_bytes);
  }
  return WriteImage(path, MintFileUid(), dataset.width_policy(),
                    dataset.schema(), rows, capacity, cols);
}

// ---- open -----------------------------------------------------------------

MappedColumnar::~MappedColumnar() = default;

bool MappedColumnar::writable() const { return mapping_->writable; }

ColumnView MappedColumnar::column(AttrIndex attr, size_t rows) const {
  DPX_CHECK_LT(attr, column_offsets_.size());
  DPX_CHECK_LE(rows, num_rows_);
  return ColumnView(mapping_->bytes() + column_offsets_[attr], rows,
                    column_widths_[attr]);
}

std::string MappedColumnar::EncodeHeaderPayload() const {
  std::vector<ColumnMeta> metas(column_offsets_.size());
  for (size_t a = 0; a < metas.size(); ++a) {
    metas[a] = {column_widths_[a], column_offsets_[a], column_max_codes_[a],
                column_crcs_[a]};
  }
  return EncodeHeader(file_uid_, width_policy_, num_rows_, capacity_rows_,
                      schema_, metas);
}

StatusOr<std::shared_ptr<const MappedColumnar>> MappedColumnar::Open(
    const std::string& path, const ColumnarOpenOptions& options) {
  auto mapping = std::make_shared<Mapping>();
  mapping->fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  mapping->writable = mapping->fd >= 0;
  if (mapping->fd < 0) mapping->fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (mapping->fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no DPXCOL file at '" + path + "'");
    }
    return ErrnoError("cannot open", path);
  }
  struct stat st;
  if (::fstat(mapping->fd, &st) != 0) return ErrnoError("cannot stat", path);
  mapping->length = static_cast<size_t>(st.st_size);
  if (mapping->length < kFixedPrefixBytes) {
    return Status::IoError("'" + path + "' is truncated (" +
                           std::to_string(mapping->length) +
                           " bytes, need at least the file prefix)");
  }
  void* base =
      ::mmap(nullptr, mapping->length, PROT_READ, MAP_SHARED, mapping->fd, 0);
  if (base == MAP_FAILED) return ErrnoError("cannot mmap", path);
  mapping->base = base;
  const char* bytes = mapping->bytes();

  if (std::memcmp(bytes, kColumnarMagic, sizeof(kColumnarMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a DPXCOL file (bad magic)");
  }
  ByteReader prefix(bytes + sizeof(kColumnarMagic),
                    kFixedPrefixBytes - sizeof(kColumnarMagic));
  DPX_ASSIGN_OR_RETURN(const uint32_t version, prefix.GetU32());
  DPX_ASSIGN_OR_RETURN(const uint64_t header_len, prefix.GetU64());
  DPX_ASSIGN_OR_RETURN(const uint32_t header_crc, prefix.GetU32());
  if (version > kColumnarFormatVersion) {
    return Status::FailedPrecondition(
        "'" + path + "' has DPXCOL format version " + std::to_string(version) +
        "; this build reads up to " + std::to_string(kColumnarFormatVersion));
  }
  if (version == 0) {
    return Status::IoError("'" + path + "' has format version 0");
  }
  if (header_len > mapping->length - kFixedPrefixBytes) {
    return Status::IoError("'" + path + "' header length " +
                           std::to_string(header_len) +
                           " exceeds the file size");
  }
  if (Crc32(bytes + kFixedPrefixBytes, header_len) != header_crc) {
    return Status::IoError("'" + path + "' header CRC mismatch");
  }

  auto out = std::shared_ptr<MappedColumnar>(new MappedColumnar());
  out->mapping_ = mapping;
  out->path_ = path;
  ByteReader r(bytes + kFixedPrefixBytes, header_len);
  DPX_ASSIGN_OR_RETURN(out->file_uid_, r.GetU64());
  DPX_ASSIGN_OR_RETURN(const uint8_t policy_tag, r.GetU8());
  if (policy_tag > static_cast<uint8_t>(WidthPolicy::kForce32)) {
    return Status::IoError("'" + path + "' has unknown width policy tag " +
                           std::to_string(policy_tag));
  }
  out->width_policy_ = static_cast<WidthPolicy>(policy_tag);
  DPX_ASSIGN_OR_RETURN(const uint64_t num_rows, r.GetU64());
  DPX_ASSIGN_OR_RETURN(const uint64_t capacity_rows, r.GetU64());
  if (num_rows > capacity_rows) {
    return Status::IoError("'" + path + "' has num_rows " +
                           std::to_string(num_rows) + " > capacity " +
                           std::to_string(capacity_rows));
  }
  out->num_rows_ = num_rows;
  out->capacity_rows_ = capacity_rows;

  DPX_ASSIGN_OR_RETURN(const uint64_t num_attrs, r.GetU64());
  std::vector<Attribute> attrs;
  attrs.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    DPX_ASSIGN_OR_RETURN(std::string name, r.GetString());
    DPX_ASSIGN_OR_RETURN(const uint64_t domain_size, r.GetU64());
    if (domain_size == 0) {
      return Status::IoError("'" + path + "' attribute '" + name +
                             "' has an empty domain");
    }
    std::vector<std::string> labels;
    labels.reserve(domain_size);
    for (uint64_t v = 0; v < domain_size; ++v) {
      DPX_ASSIGN_OR_RETURN(std::string label, r.GetString());
      labels.push_back(std::move(label));
    }
    attrs.emplace_back(std::move(name), std::move(labels));
  }
  out->schema_ = Schema(std::move(attrs));
  DPX_RETURN_IF_ERROR(out->schema_.Validate());

  DPX_ASSIGN_OR_RETURN(const uint64_t num_columns, r.GetU64());
  if (num_columns != num_attrs) {
    return Status::IoError("'" + path + "' has " + std::to_string(num_columns) +
                           " columns for " + std::to_string(num_attrs) +
                           " attributes");
  }
  out->column_widths_.reserve(num_columns);
  out->column_offsets_.reserve(num_columns);
  out->column_max_codes_.reserve(num_columns);
  out->column_crcs_.reserve(num_columns);
  for (uint64_t a = 0; a < num_columns; ++a) {
    DPX_ASSIGN_OR_RETURN(const uint8_t width_tag, r.GetU8());
    DPX_ASSIGN_OR_RETURN(const uint64_t offset, r.GetU64());
    DPX_ASSIGN_OR_RETURN(const uint64_t max_code, r.GetU64());
    DPX_ASSIGN_OR_RETURN(const uint32_t crc, r.GetU32());
    if (width_tag > static_cast<uint8_t>(ColumnWidth::k32)) {
      return Status::IoError("'" + path + "' column " + std::to_string(a) +
                             " has unknown width tag " +
                             std::to_string(width_tag));
    }
    const auto width = static_cast<ColumnWidth>(width_tag);
    const Attribute& attr = out->schema_.attribute(static_cast<AttrIndex>(a));
    // Structural invariants, all O(1): these are what let FromMapped skip
    // the O(data) domain scan that Dataset::FromColumns does.
    if (width != ExpectedWidth(out->width_policy_, attr.domain_size())) {
      return Status::IoError("'" + path + "' column '" + attr.name() +
                             "' width does not match the width policy");
    }
    if (offset % kColumnAlignment != 0) {
      return Status::IoError("'" + path + "' column '" + attr.name() +
                             "' offset is not " +
                             std::to_string(kColumnAlignment) +
                             "-byte aligned");
    }
    const uint64_t block_bytes = capacity_rows * ColumnWidthBytes(width);
    if (offset > mapping->length || block_bytes > mapping->length - offset) {
      return Status::IoError("'" + path + "' column '" + attr.name() +
                             "' extends past the end of the file");
    }
    if (num_rows > 0 && max_code >= attr.domain_size()) {
      return Status::IoError("'" + path + "' column '" + attr.name() +
                             "' max code " + std::to_string(max_code) +
                             " is outside its domain of " +
                             std::to_string(attr.domain_size()));
    }
    out->column_widths_.push_back(width);
    out->column_offsets_.push_back(offset);
    out->column_max_codes_.push_back(max_code);
    out->column_crcs_.push_back(crc);
  }
  if (!r.AtEnd()) {
    return Status::IoError("'" + path + "' has " +
                           std::to_string(r.remaining()) +
                           " unexpected trailing header bytes");
  }
  if (options.verify_data) DPX_RETURN_IF_ERROR(out->VerifyData());
  return std::shared_ptr<const MappedColumnar>(std::move(out));
}

Status MappedColumnar::VerifyData() const {
  for (size_t a = 0; a < column_offsets_.size(); ++a) {
    const Attribute& attr = schema_.attribute(static_cast<AttrIndex>(a));
    const char* data = mapping_->bytes() + column_offsets_[a];
    const size_t bytes = num_rows_ * ColumnWidthBytes(column_widths_[a]);
    if (Crc32(data, bytes) != column_crcs_[a]) {
      return Status::IoError("'" + path_ + "' column '" + attr.name() +
                             "' data CRC mismatch");
    }
    if (num_rows_ > 0 &&
        MaxCode(ColumnView(data, num_rows_, column_widths_[a])) !=
            column_max_codes_[a]) {
      return Status::IoError("'" + path_ + "' column '" + attr.name() +
                             "' max code does not match the header");
    }
  }
  return Status::OK();
}

// ---- append ---------------------------------------------------------------

StatusOr<std::shared_ptr<const MappedColumnar>> AppendRowsToColumnar(
    const std::shared_ptr<const MappedColumnar>& base,
    const std::vector<std::vector<ValueCode>>& rows) {
  if (base == nullptr) {
    return Status::InvalidArgument("null columnar handle");
  }
  if (!base->writable()) {
    return Status::FailedPrecondition("'" + base->path() +
                                      "' was opened read-only; appends need "
                                      "write permission on the file");
  }
  const Schema& schema = base->schema();
  const size_t attrs = schema.num_attributes();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != attrs) {
      return Status::InvalidArgument(
          "append row " + std::to_string(i) + " has " +
          std::to_string(rows[i].size()) + " cells, schema has " +
          std::to_string(attrs) + " attributes");
    }
    for (size_t a = 0; a < attrs; ++a) {
      const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
      if (rows[i][a] >= attr.domain_size()) {
        return Status::InvalidArgument(
            "append row " + std::to_string(i) + ": code " +
            std::to_string(rows[i][a]) + " out of domain for attribute '" +
            attr.name() + "'");
      }
    }
  }
  if (rows.empty()) return base;

  const size_t old_rows = base->num_rows();
  const size_t new_rows = old_rows + rows.size();

  // Encode the tail rows column-major at each column's width, tracking the
  // new max codes and extending the data CRCs (Crc32 streams via its seed).
  std::vector<std::string> tails(attrs);
  std::vector<uint64_t> max_codes(attrs);
  std::vector<uint32_t> crcs(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    const ColumnWidth width = base->column_width(static_cast<AttrIndex>(a));
    const size_t elem = ColumnWidthBytes(width);
    std::string& tail = tails[a];
    tail.resize(rows.size() * elem);
    uint64_t max_code = old_rows > 0 ? base->column_max_codes_[a] : 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const ValueCode code = rows[i][a];
      max_code = std::max<uint64_t>(max_code, code);
      switch (width) {
        case ColumnWidth::k8: {
          const auto v = static_cast<uint8_t>(code);
          std::memcpy(tail.data() + i * elem, &v, elem);
          break;
        }
        case ColumnWidth::k16: {
          const auto v = static_cast<uint16_t>(code);
          std::memcpy(tail.data() + i * elem, &v, elem);
          break;
        }
        case ColumnWidth::k32: {
          std::memcpy(tail.data() + i * elem, &code, elem);
          break;
        }
      }
    }
    max_codes[a] = max_code;
    crcs[a] = Crc32(tail.data(), tail.size(), base->column_crcs_[a]);
  }

  if (new_rows <= base->capacity_rows()) {
    // In-place commit: tails into the reserved space, fdatasync, then the
    // re-encoded header (same byte length) as the commit point. A crash
    // before the header write leaves the old, still-valid file.
    const int fd = base->mapping_->fd;
    for (size_t a = 0; a < attrs; ++a) {
      const size_t elem = ColumnWidthBytes(base->column_widths_[a]);
      DPX_RETURN_IF_ERROR(PWriteAll(
          fd, tails[a].data(), tails[a].size(),
          base->column_offsets_[a] + old_rows * elem, base->path()));
    }
    if (::fdatasync(fd) != 0) {
      return ErrnoError("fdatasync failed on", base->path());
    }
    auto out = std::shared_ptr<MappedColumnar>(new MappedColumnar());
    out->mapping_ = base->mapping_;
    out->path_ = base->path_;
    out->file_uid_ = base->file_uid_;
    out->schema_ = base->schema_;
    out->width_policy_ = base->width_policy_;
    out->num_rows_ = new_rows;
    out->capacity_rows_ = base->capacity_rows_;
    out->column_widths_ = base->column_widths_;
    out->column_offsets_ = base->column_offsets_;
    out->column_max_codes_ = std::move(max_codes);
    out->column_crcs_ = std::move(crcs);
    const std::string header = out->EncodeHeaderPayload();
    ByteWriter commit;
    commit.PutU64(header.size());
    commit.PutU32(Crc32(header.data(), header.size()));
    commit.PutBytes(header.data(), header.size());
    DPX_RETURN_IF_ERROR(PWriteAll(fd, commit.buffer().data(),
                                  commit.buffer().size(),
                                  sizeof(kColumnarMagic) + sizeof(uint32_t),
                                  base->path()));
    if (::fdatasync(fd) != 0) {
      return ErrnoError("fdatasync failed on", base->path());
    }
    return std::shared_ptr<const MappedColumnar>(std::move(out));
  }

  // Grow: rewrite to a new inode with doubled capacity and rename over the
  // path, preserving the file_uid. `base` (and every Dataset viewing it)
  // stays valid on the old inode until the last reference drops.
  const size_t new_capacity = std::max(base->capacity_rows() * 2, new_rows);
  std::vector<ColumnSource> cols(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    cols[a].width = base->column_widths_[a];
    cols[a].head = base->mapping_->bytes() + base->column_offsets_[a];
    cols[a].head_bytes = old_rows * ColumnWidthBytes(cols[a].width);
    cols[a].tail = tails[a].data();
    cols[a].tail_bytes = tails[a].size();
    cols[a].max_code = max_codes[a];
    cols[a].crc = crcs[a];
  }
  DPX_RETURN_IF_ERROR(WriteImage(base->path(), base->file_uid(),
                                 base->width_policy(), schema, new_rows,
                                 new_capacity, cols));
  return MappedColumnar::Open(base->path());
}

// ---- Dataset bridge -------------------------------------------------------

// Defined here rather than dataset.cc so the data library's core stays
// independent of the mmap machinery; dataset.h only forward-declares
// MappedColumnar.
StatusOr<Dataset> Dataset::FromMapped(
    std::shared_ptr<const MappedColumnar> mapped, size_t num_rows) {
  if (mapped == nullptr) {
    return Status::InvalidArgument("null columnar handle");
  }
  if (num_rows == kAllMappedRows) num_rows = mapped->num_rows();
  if (num_rows > mapped->num_rows()) {
    return Status::InvalidArgument(
        "requested " + std::to_string(num_rows) + " rows, '" + mapped->path() +
        "' has " + std::to_string(mapped->num_rows()) + " committed");
  }
  // Domain safety comes from the structural checks MappedColumnar::Open
  // already ran (max_code < domain per column) — no O(data) rescan here.
  Dataset dataset(mapped->schema(), mapped->width_policy());
  dataset.mapped_views_.reserve(dataset.num_attributes());
  for (size_t a = 0; a < dataset.num_attributes(); ++a) {
    dataset.mapped_views_.push_back(
        mapped->column(static_cast<AttrIndex>(a), num_rows));
  }
  dataset.mapped_ = std::move(mapped);
  dataset.num_rows_ = num_rows;
  return dataset;
}

}  // namespace dpclustx
