// Discretization of numeric columns into categorical attributes.
//
// The paper's datasets bin numeric and large-domain attributes before
// explanation ("Numerical and large-domain categorical attributes are
// binned", §6.1) so that histograms stay interpretable and DP noise per bin
// stays small relative to bin counts. A Binner owns the bin edges; encoding
// maps a double to the code of its half-open bin [edge_i, edge_{i+1}), with
// the last bin closed on the right.

#ifndef DPCLUSTX_DATA_BINNING_H_
#define DPCLUSTX_DATA_BINNING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace dpclustx {

class Binner {
 public:
  /// `num_bins` equal-width bins spanning [min(values), max(values)].
  /// Requires non-empty values and num_bins >= 1; degenerate all-equal input
  /// yields a single bin.
  static StatusOr<Binner> EqualWidth(const std::string& attr_name,
                                     const std::vector<double>& values,
                                     size_t num_bins);

  /// `num_bins` bins holding approximately equal row counts (quantile bins).
  /// Duplicate quantiles collapse, so the result may have fewer bins.
  static StatusOr<Binner> EqualFrequency(const std::string& attr_name,
                                         const std::vector<double>& values,
                                         size_t num_bins);

  /// Explicit, strictly increasing edges: edges[i], edges[i+1] bound bin i;
  /// requires >= 2 edges. Values outside [front, back] clamp to the first or
  /// last bin (the paper's preprocessing assigns out-of-range values to the
  /// boundary categories).
  static StatusOr<Binner> FromEdges(const std::string& attr_name,
                                    std::vector<double> edges);

  /// Number of bins (= domain size of the produced attribute).
  size_t num_bins() const { return edges_.size() - 1; }

  /// The categorical attribute this binner produces, with labels like
  /// "[40, 50)".
  Attribute ToAttribute() const;

  /// Code of the bin containing `value`.
  ValueCode CodeFor(double value) const;

  /// Encodes a whole column.
  std::vector<ValueCode> Encode(const std::vector<double>& values) const;

  const std::vector<double>& edges() const { return edges_; }

 private:
  Binner(std::string attr_name, std::vector<double> edges)
      : attr_name_(std::move(attr_name)), edges_(std::move(edges)) {}

  std::string attr_name_;
  std::vector<double> edges_;  // size num_bins + 1, strictly increasing
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_BINNING_H_
