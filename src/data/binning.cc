#include "data/binning.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace dpclustx {

namespace {

std::string FormatEdge(double x) {
  // Integral edges print without a decimal point to match the paper's
  // "[40, 50)" style labels.
  if (x == std::floor(x) && std::fabs(x) < 1e15) {
    return std::to_string(static_cast<long long>(x));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return buf;
}

}  // namespace

StatusOr<Binner> Binner::EqualWidth(const std::string& attr_name,
                                    const std::vector<double>& values,
                                    size_t num_bins) {
  if (values.empty()) {
    return Status::InvalidArgument("EqualWidth: empty value list");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("EqualWidth: num_bins must be >= 1");
  }
  const auto [min_it, max_it] = std::minmax_element(values.begin(),
                                                    values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (lo == hi) {
    // Degenerate column: one bin [lo, lo + 1).
    return Binner(attr_name, {lo, lo + 1.0});
  }
  std::vector<double> edges;
  edges.reserve(num_bins + 1);
  for (size_t i = 0; i <= num_bins; ++i) {
    edges.push_back(lo + (hi - lo) * static_cast<double>(i) /
                             static_cast<double>(num_bins));
  }
  edges.back() = hi;  // guard against floating-point drift
  return Binner(attr_name, std::move(edges));
}

StatusOr<Binner> Binner::EqualFrequency(const std::string& attr_name,
                                        const std::vector<double>& values,
                                        size_t num_bins) {
  if (values.empty()) {
    return Status::InvalidArgument("EqualFrequency: empty value list");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("EqualFrequency: num_bins must be >= 1");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.push_back(sorted.front());
  for (size_t i = 1; i < num_bins; ++i) {
    const size_t rank = i * sorted.size() / num_bins;
    const double edge = sorted[rank];
    if (edge > edges.back()) edges.push_back(edge);  // collapse duplicates
  }
  if (sorted.back() > edges.back()) {
    edges.push_back(sorted.back());
  } else {
    edges.push_back(edges.back() + 1.0);  // all values equal past last edge
  }
  return Binner(attr_name, std::move(edges));
}

StatusOr<Binner> Binner::FromEdges(const std::string& attr_name,
                                   std::vector<double> edges) {
  if (edges.size() < 2) {
    return Status::InvalidArgument("FromEdges: need at least 2 edges");
  }
  for (size_t i = 1; i < edges.size(); ++i) {
    if (edges[i] <= edges[i - 1]) {
      return Status::InvalidArgument(
          "FromEdges: edges must be strictly increasing");
    }
  }
  return Binner(attr_name, std::move(edges));
}

Attribute Binner::ToAttribute() const {
  std::vector<std::string> labels;
  labels.reserve(num_bins());
  for (size_t i = 0; i + 1 < edges_.size(); ++i) {
    const bool last = (i + 2 == edges_.size());
    labels.push_back("[" + FormatEdge(edges_[i]) + ", " +
                     FormatEdge(edges_[i + 1]) + (last ? "]" : ")"));
  }
  return Attribute(attr_name_, std::move(labels));
}

ValueCode Binner::CodeFor(double value) const {
  if (value <= edges_.front()) return 0;
  if (value >= edges_.back()) return static_cast<ValueCode>(num_bins() - 1);
  // First edge strictly greater than value; the bin is the one before it.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<ValueCode>(it - edges_.begin() - 1);
}

std::vector<ValueCode> Binner::Encode(
    const std::vector<double>& values) const {
  std::vector<ValueCode> codes;
  codes.reserve(values.size());
  for (double v : values) codes.push_back(CodeFor(v));
  return codes;
}

}  // namespace dpclustx
