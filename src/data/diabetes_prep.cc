#include "data/diabetes_prep.h"

#include <cstdlib>
#include <map>
#include <unordered_map>

#include "data/binning.h"
#include "data/csv.h"

namespace dpclustx::diabetes {

namespace {

// Fixed bin edges per numeric column, chosen to match the paper's
// interpretable ranges (e.g. lab procedures in decades, Fig. 2).
const std::map<std::string, std::vector<double>>& NumericColumnEdges() {
  static const auto* edges = new std::map<std::string, std::vector<double>>{
      {"time_in_hospital", {1, 3, 5, 7, 9, 11, 15}},
      {"num_lab_procedures", {0, 10, 20, 30, 40, 50, 60, 70, 140}},
      {"num_procedures", {0, 1, 2, 3, 7}},
      {"num_medications", {0, 5, 10, 15, 20, 25, 30, 90}},
      {"number_outpatient", {0, 1, 2, 5, 50}},
      {"number_emergency", {0, 1, 2, 5, 80}},
      {"number_inpatient", {0, 1, 2, 5, 25}},
      {"number_diagnoses", {1, 3, 5, 7, 9, 17}},
  };
  return *edges;
}

bool ParseNumeric(const std::string& raw, double* out) {
  if (raw.empty() || raw == "?") return false;
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

const std::vector<std::string>& DiagnosisCategories() {
  static const auto* categories = new std::vector<std::string>{
      "Circulatory", "Respiratory", "Digestive",      "Diabetes",
      "Injury",      "Musculoskeletal", "Genitourinary", "Neoplasms",
      "Other"};
  return *categories;
}

std::string Icd9Category(const std::string& code) {
  if (code.empty() || code == "?") return "Other";
  // Supplementary E/V codes group to Other.
  if (code[0] == 'E' || code[0] == 'V' || code[0] == 'e' || code[0] == 'v') {
    return "Other";
  }
  char* end = nullptr;
  const double value = std::strtod(code.c_str(), &end);
  if (end == code.c_str()) return "Other";
  const int icd = static_cast<int>(value);
  if (icd == 250) return "Diabetes";  // 250.xx
  if ((icd >= 390 && icd <= 459) || icd == 785) return "Circulatory";
  if ((icd >= 460 && icd <= 519) || icd == 786) return "Respiratory";
  if ((icd >= 520 && icd <= 579) || icd == 787) return "Digestive";
  if (icd >= 800 && icd <= 999) return "Injury";
  if (icd >= 710 && icd <= 739) return "Musculoskeletal";
  if ((icd >= 580 && icd <= 629) || icd == 788) return "Genitourinary";
  if (icd >= 140 && icd <= 239) return "Neoplasms";
  return "Other";
}

const std::vector<std::string>& SpecialtyGroups() {
  static const auto* groups = new std::vector<std::string>{
      "Missing",          "InternalMedicine", "General Practice",
      "Cardiology",       "Surgery",          "Emergency",
      "Family/GeneralPractice", "Pediatrics", "Other"};
  return *groups;
}

std::string MedicalSpecialtyGroup(const std::string& specialty) {
  if (specialty.empty() || specialty == "?") return "Missing";
  if (specialty == "InternalMedicine") return "InternalMedicine";
  if (specialty == "Family/GeneralPractice") return "Family/GeneralPractice";
  if (specialty == "GeneralPractice" || specialty == "General Practice") {
    return "General Practice";
  }
  if (specialty.rfind("Cardiology", 0) == 0) return "Cardiology";
  if (specialty.rfind("Surgery", 0) == 0 ||
      specialty.rfind("Surgeon", 0) == 0 ||
      specialty == "SurgicalSpecialty" ||
      specialty.rfind("Orthopedics", 0) == 0) {
    return "Surgery";
  }
  if (specialty.rfind("Emergency", 0) == 0) return "Emergency";
  if (specialty.rfind("Pediatrics", 0) == 0) return "Pediatrics";
  return "Other";
}

StatusOr<Dataset> Preprocess(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.size() < 2) {
    return Status::InvalidArgument("need a header row and at least one row");
  }
  const std::vector<std::string>& header = rows[0];
  const size_t num_columns = header.size();
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != num_columns) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has wrong field count");
    }
  }

  enum class Kind { kDrop, kBinned, kDiagnosis, kSpecialty, kCategorical };
  struct Column {
    Kind kind;
    Binner binner = *Binner::FromEdges("unused", {0.0, 1.0});
  };
  std::vector<Column> columns;
  columns.reserve(num_columns);
  std::vector<Attribute> attrs;
  for (size_t col = 0; col < num_columns; ++col) {
    const std::string& name = header[col];
    if (name == "encounter_id" || name == "patient_nbr") {
      columns.push_back({Kind::kDrop});
      continue;
    }
    const auto edges_it = NumericColumnEdges().find(name);
    if (edges_it != NumericColumnEdges().end()) {
      auto binner = Binner::FromEdges(name, edges_it->second);
      DPX_RETURN_IF_ERROR(binner.status());
      attrs.push_back(binner->ToAttribute());
      columns.push_back({Kind::kBinned, *binner});
      continue;
    }
    if (name == "diag_1" || name == "diag_2" || name == "diag_3") {
      attrs.emplace_back(name, DiagnosisCategories());
      columns.push_back({Kind::kDiagnosis});
      continue;
    }
    if (name == "medical_specialty") {
      attrs.emplace_back(name, SpecialtyGroups());
      columns.push_back({Kind::kSpecialty});
      continue;
    }
    // Plain categorical: infer the domain (first-appearance order).
    std::vector<std::string> domain;
    std::unordered_map<std::string, ValueCode> seen;
    for (size_t r = 1; r < rows.size(); ++r) {
      const auto [it, inserted] = seen.try_emplace(
          rows[r][col], static_cast<ValueCode>(domain.size()));
      if (inserted) domain.push_back(rows[r][col]);
    }
    attrs.emplace_back(name, std::move(domain));
    columns.push_back({Kind::kCategorical});
  }

  Schema schema(std::move(attrs));
  DPX_RETURN_IF_ERROR(schema.Validate());
  Dataset dataset(schema);

  // Per-column code lookup for categorical columns.
  std::vector<std::unordered_map<std::string, ValueCode>> lookup(num_columns);
  {
    size_t attr = 0;
    for (size_t col = 0; col < num_columns; ++col) {
      if (columns[col].kind == Kind::kDrop) continue;
      const Attribute& a = schema.attribute(static_cast<AttrIndex>(attr));
      if (columns[col].kind == Kind::kCategorical ||
          columns[col].kind == Kind::kDiagnosis ||
          columns[col].kind == Kind::kSpecialty) {
        for (size_t v = 0; v < a.domain_size(); ++v) {
          lookup[col][a.label(static_cast<ValueCode>(v))] =
              static_cast<ValueCode>(v);
        }
      }
      ++attr;
    }
  }

  std::vector<ValueCode> codes(schema.num_attributes());
  for (size_t r = 1; r < rows.size(); ++r) {
    size_t attr = 0;
    for (size_t col = 0; col < num_columns; ++col) {
      const Column& column = columns[col];
      if (column.kind == Kind::kDrop) continue;
      const std::string& raw = rows[r][col];
      switch (column.kind) {
        case Kind::kBinned: {
          double value = 0.0;
          // Missing numeric values clamp to the lowest bin.
          codes[attr] = column.binner.CodeFor(
              ParseNumeric(raw, &value) ? value : 0.0);
          break;
        }
        case Kind::kDiagnosis:
          codes[attr] = lookup[col].at(Icd9Category(raw));
          break;
        case Kind::kSpecialty:
          codes[attr] = lookup[col].at(MedicalSpecialtyGroup(raw));
          break;
        case Kind::kCategorical:
          codes[attr] = lookup[col].at(raw);
          break;
        case Kind::kDrop:
          break;
      }
      ++attr;
    }
    dataset.AppendRowUnchecked(codes);
  }
  return dataset;
}

StatusOr<Dataset> PreprocessCsv(const std::string& path) {
  DPX_ASSIGN_OR_RETURN(const Dataset raw, ReadCsv(path));
  // Re-materialize the raw strings and delegate; simpler than a second CSV
  // code path and the file is read once either way.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(raw.num_rows() + 1);
  std::vector<std::string> header;
  for (size_t a = 0; a < raw.num_attributes(); ++a) {
    header.push_back(raw.schema().attribute(static_cast<AttrIndex>(a))
                         .name());
  }
  rows.push_back(std::move(header));
  for (size_t r = 0; r < raw.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(raw.num_attributes());
    for (size_t a = 0; a < raw.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      row.push_back(raw.schema().attribute(attr).label(raw.at(r, attr)));
    }
    rows.push_back(std::move(row));
  }
  return Preprocess(rows);
}

}  // namespace dpclustx::diabetes
