#include "data/dataset.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "data/kernels/kernel_table.h"

namespace dpclustx {

namespace {

// Rows per shard of the fused counting sweep. ~68 attributes per row makes
// this ~280k bin increments per chunk — large enough to amortize dispatch,
// small enough that a shard's label slice stays cache-resident.
constexpr size_t kGroupCountGrain = 4096;

// Rows per kernel call of the single-attribute grouped count. The grouped
// kernels bank into uint32 partials, so one call must see fewer than 2^32
// rows; 2^31 keeps the bound with headroom. Integer counts merge exactly,
// so segmentation never changes the totals.
constexpr size_t kGroupSegmentRows = size_t{1} << 31;

}  // namespace

Dataset::Dataset(Schema schema, WidthPolicy policy)
    : schema_(std::move(schema)), width_policy_(policy) {
  columns_.reserve(schema_.num_attributes());
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    const ColumnWidth width =
        policy == WidthPolicy::kForce32
            ? ColumnWidth::k32
            : NarrowestColumnWidth(
                  schema_.attribute(static_cast<AttrIndex>(a)).domain_size());
    columns_.emplace_back(width);
  }
}

void Dataset::Reserve(size_t num_rows) {
  DPX_CHECK(mapped_ == nullptr) << "Reserve on a mapped dataset";
  for (NarrowColumn& column : columns_) column.reserve(num_rows);
}

StatusOr<Dataset> Dataset::FromColumns(Schema schema, WidthPolicy policy,
                                       std::vector<NarrowColumn> columns) {
  DPX_RETURN_IF_ERROR(schema.Validate());
  if (columns.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) +
        " does not match schema attribute count " +
        std::to_string(schema.num_attributes()));
  }
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t a = 0; a < columns.size(); ++a) {
    const Attribute& attr = schema.attribute(static_cast<AttrIndex>(a));
    if (columns[a].size() != rows) {
      return Status::InvalidArgument(
          "column '" + attr.name() + "' has " +
          std::to_string(columns[a].size()) + " rows, expected " +
          std::to_string(rows));
    }
    const ColumnWidth expected =
        policy == WidthPolicy::kForce32
            ? ColumnWidth::k32
            : NarrowestColumnWidth(attr.domain_size());
    if (columns[a].width() != expected) {
      return Status::InvalidArgument(
          "column '" + attr.name() + "' has width " +
          std::to_string(ColumnWidthBytes(columns[a].width())) +
          " bytes, the width policy requires " +
          std::to_string(ColumnWidthBytes(expected)));
    }
    // Out-of-domain codes would index past histogram buffers downstream;
    // a width that covers the domain does not imply every code is in it.
    const size_t domain = attr.domain_size();
    bool in_domain = true;
    VisitColumn(columns[a].view(), [&](const auto* codes) {
      for (size_t row = 0; row < rows; ++row) {
        if (codes[row] >= domain) {
          in_domain = false;
          return;
        }
      }
    });
    if (!in_domain) {
      return Status::InvalidArgument("column '" + attr.name() +
                                     "' contains a code outside its domain");
    }
  }
  Dataset dataset(std::move(schema), policy);
  dataset.columns_ = std::move(columns);
  dataset.num_rows_ = rows;
  return dataset;
}

Status Dataset::AppendRow(const std::vector<ValueCode>& row) {
  if (mapped_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot append to a mapped dataset; append to the DPXCOL file "
        "(AppendRowsToColumnar) and re-open");
  }
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(schema_.num_attributes()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    if (row[a] >= schema_.attribute(static_cast<AttrIndex>(a)).domain_size()) {
      return Status::InvalidArgument(
          "code " + std::to_string(row[a]) + " out of domain for attribute '" +
          schema_.attribute(static_cast<AttrIndex>(a)).name() + "'");
    }
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Dataset::AppendRowUnchecked(const std::vector<ValueCode>& row) {
  DPX_CHECK(mapped_ == nullptr) << "append on a mapped dataset";
  for (size_t a = 0; a < row.size(); ++a) columns_[a].push_back(row[a]);
  ++num_rows_;
}

std::vector<ValueCode> Dataset::Row(size_t row) const {
  std::vector<ValueCode> out;
  RowInto(row, &out);
  return out;
}

void Dataset::RowInto(size_t row, std::vector<ValueCode>* out) const {
  DPX_CHECK_LT(row, num_rows_);
  const size_t attrs = schema_.num_attributes();
  out->resize(attrs);
  ValueCode* cells = out->data();
  for (size_t a = 0; a < attrs; ++a) {
    cells[a] = column(static_cast<AttrIndex>(a))[row];
  }
}

std::vector<ValueCode> Dataset::ColumnCodes(AttrIndex attr) const {
  DPX_CHECK_LT(attr, schema_.num_attributes());
  std::vector<ValueCode> out(num_rows_);
  VisitColumn(column(attr), [&](const auto* codes) {
    for (size_t row = 0; row < num_rows_; ++row) out[row] = codes[row];
  });
  return out;
}

Histogram Dataset::ComputeHistogram(AttrIndex attr) const {
  DPX_CHECK_LT(attr, schema_.num_attributes());
  const size_t domain = schema_.attribute(attr).domain_size();
  // Count into integers (exact; no float add chain), then widen the bins.
  // The counting loop itself is the ISA-dispatched kernel (DESIGN.md §12).
  std::vector<uint64_t> counts(domain, 0);
  const kernels::KernelTable& kt = kernels::Active();
  VisitColumn(column(attr), [&](const auto* codes) {
    kernels::HistFn(kt, codes)(codes, 0, num_rows_, domain, counts.data());
  });
  Histogram hist(domain);
  for (size_t v = 0; v < domain; ++v) {
    hist.set_bin(static_cast<ValueCode>(v), static_cast<double>(counts[v]));
  }
  return hist;
}

Histogram Dataset::ComputeHistogram(
    AttrIndex attr, const std::vector<uint32_t>& row_indices) const {
  DPX_CHECK_LT(attr, schema_.num_attributes());
  const size_t domain = schema_.attribute(attr).domain_size();
  // Bounds-check the index list once up front; the kernel trusts its input.
  for (const uint32_t row : row_indices) DPX_CHECK_LT(row, num_rows_);
  std::vector<uint64_t> counts(domain, 0);
  const kernels::KernelTable& kt = kernels::Active();
  VisitColumn(column(attr), [&](const auto* codes) {
    kernels::HistRowsFn(kt, codes)(codes, row_indices.data(),
                                   row_indices.size(), domain, counts.data());
  });
  Histogram hist(domain);
  for (size_t v = 0; v < domain; ++v) {
    hist.set_bin(static_cast<ValueCode>(v), static_cast<double>(counts[v]));
  }
  return hist;
}

std::vector<Histogram> Dataset::ComputeGroupHistograms(
    AttrIndex attr, const std::vector<uint32_t>& labels,
    size_t num_groups) const {
  DPX_CHECK_LT(attr, schema_.num_attributes());
  DPX_CHECK_EQ(labels.size(), num_rows_);
  const size_t domain = schema_.attribute(attr).domain_size();
  for (size_t row = 0; row < num_rows_; ++row) {
    DPX_CHECK_LT(labels[row], num_groups);
  }
  std::vector<uint64_t> counts(num_groups * domain, 0);
  const kernels::KernelTable& kt = kernels::Active();
  std::vector<uint32_t> bank;
  VisitColumn(column(attr), [&](const auto* codes) {
    // Segmented so the kernel's uint32 bank partials cannot overflow.
    for (size_t begin = 0; begin < num_rows_; begin += kGroupSegmentRows) {
      const size_t end = std::min(num_rows_, begin + kGroupSegmentRows);
      kernels::GroupHistFn(kt, codes)(codes, labels.data(), begin, end,
                                      domain, num_groups, counts.data(),
                                      &bank);
    }
  });
  std::vector<Histogram> hists;
  hists.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<double> bins(domain);
    for (size_t v = 0; v < domain; ++v) {
      bins[v] = static_cast<double>(counts[g * domain + v]);
    }
    hists.emplace_back(std::move(bins));
  }
  return hists;
}

StatusOr<std::vector<std::vector<Histogram>>>
Dataset::ComputeAllGroupHistograms(const std::vector<uint32_t>& labels,
                                   size_t num_groups,
                                   size_t max_threads) const {
  if (labels.size() != num_rows_) {
    return Status::InvalidArgument(
        "labels has " + std::to_string(labels.size()) + " entries, dataset " +
        std::to_string(num_rows_) + " rows");
  }
  if (num_groups == 0) {
    return Status::InvalidArgument("num_groups must be >= 1");
  }
  const size_t attrs = schema_.num_attributes();

  // Flat per-shard count layout: offset[a] + label*domain(a) + value.
  std::vector<size_t> offsets(attrs + 1, 0);
  for (size_t a = 0; a < attrs; ++a) {
    offsets[a + 1] = offsets[a] +
                     num_groups *
                         schema_.attribute(static_cast<AttrIndex>(a))
                             .domain_size();
  }
  const size_t flat_size = offsets[attrs];

  const size_t chunks = ParallelForNumChunks(num_rows_, kGroupCountGrain);
  std::vector<std::vector<uint64_t>> shard_counts(chunks);
  // An out-of-range label would index outside the flat buffer, so each shard
  // validates before counting; the first offender is reported afterwards.
  std::atomic<int64_t> bad_label{-1};
  ParallelFor(
      num_rows_, kGroupCountGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        for (size_t row = begin; row < end; ++row) {
          if (labels[row] >= num_groups) {
            int64_t expected = -1;
            bad_label.compare_exchange_strong(
                expected, static_cast<int64_t>(labels[row]));
            return;
          }
        }
        std::vector<uint64_t>& counts = shard_counts[chunk];
        counts.assign(flat_size, 0);
        // Banked-count scratch, reused across the shard's attribute sweep.
        // The kernel's uint32 bank partials cannot overflow: a bank sees at
        // most end-begin (≈ grain) increments per bin.
        const kernels::KernelTable& kt = kernels::Active();
        std::vector<uint32_t> bank;
        for (size_t a = 0; a < attrs; ++a) {
          const size_t domain =
              schema_.attribute(static_cast<AttrIndex>(a)).domain_size();
          uint64_t* base = counts.data() + offsets[a];
          VisitColumn(column(static_cast<AttrIndex>(a)), [&](const auto* codes) {
            kernels::GroupHistFn(kt, codes)(codes, labels.data(), begin, end,
                                            domain, num_groups, base, &bank);
          });
        }
      },
      max_threads);
  if (const int64_t bad = bad_label.load(); bad >= 0) {
    return Status::InvalidArgument("label " + std::to_string(bad) +
                                   " >= num_groups " +
                                   std::to_string(num_groups));
  }

  // Merge shards in ascending chunk order. Counts are integers, so the sum
  // is exact regardless of order — bitwise-identical at any thread count.
  std::vector<uint64_t> merged(flat_size, 0);
  for (const std::vector<uint64_t>& counts : shard_counts) {
    if (counts.empty()) continue;  // empty dataset edge case
    for (size_t i = 0; i < flat_size; ++i) merged[i] += counts[i];
  }

  std::vector<std::vector<Histogram>> result(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    const size_t domain =
        schema_.attribute(static_cast<AttrIndex>(a)).domain_size();
    result[a].reserve(num_groups);
    const uint64_t* base = merged.data() + offsets[a];
    for (size_t g = 0; g < num_groups; ++g) {
      std::vector<double> bins(domain);
      for (size_t v = 0; v < domain; ++v) {
        bins[v] = static_cast<double>(base[g * domain + v]);
      }
      result[a].emplace_back(std::move(bins));
    }
  }
  return result;
}

Dataset Dataset::SelectRows(const std::vector<uint32_t>& row_indices) const {
  // Output is always heap-backed, even when the source is mapped.
  Dataset out(schema_, width_policy_);
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    NarrowColumn& out_col = out.columns_[a];
    out_col.reserve(row_indices.size());
    VisitColumn(column(static_cast<AttrIndex>(a)), [&](const auto* codes) {
      for (uint32_t row : row_indices) {
        DPX_CHECK_LT(row, num_rows_);
        out_col.push_back(codes[row]);
      }
    });
  }
  out.num_rows_ = row_indices.size();
  return out;
}

Dataset Dataset::SelectAttributes(const std::vector<AttrIndex>& attrs) const {
  // Output is always heap-backed, even when the source is mapped.
  Dataset out(schema_.Project(attrs), width_policy_);
  for (size_t i = 0; i < attrs.size(); ++i) {
    DPX_CHECK_LT(attrs[i], schema_.num_attributes());
    if (mapped_ == nullptr) {
      // Same domain → same width under either policy; whole-column copy.
      out.columns_[i] = columns_[attrs[i]];
    } else {
      NarrowColumn& out_col = out.columns_[i];
      out_col.reserve(num_rows_);
      VisitColumn(column(attrs[i]), [&](const auto* codes) {
        for (size_t row = 0; row < num_rows_; ++row) {
          out_col.push_back(codes[row]);
        }
      });
    }
  }
  out.num_rows_ = num_rows_;
  return out;
}

Dataset Dataset::SampleRows(double fraction, Rng& rng) const {
  const double p = Clamp(fraction, 0.0, 1.0);
  std::vector<uint32_t> kept;
  kept.reserve(static_cast<size_t>(p * static_cast<double>(num_rows_)) + 16);
  for (size_t row = 0; row < num_rows_; ++row) {
    if (rng.Bernoulli(p)) kept.push_back(static_cast<uint32_t>(row));
  }
  return SelectRows(kept);
}

}  // namespace dpclustx
