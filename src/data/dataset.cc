#include "data/dataset.h"

#include <atomic>
#include <cstdint>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace dpclustx {

namespace {

// Rows per shard of the fused counting sweep. ~68 attributes per row makes
// this ~280k bin increments per chunk — large enough to amortize dispatch,
// small enough that a shard's label slice stays cache-resident.
constexpr size_t kGroupCountGrain = 4096;

}  // namespace

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

void Dataset::Reserve(size_t num_rows) {
  for (std::vector<ValueCode>& column : columns_) column.reserve(num_rows);
}

Status Dataset::AppendRow(const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(schema_.num_attributes()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    if (row[a] >= schema_.attribute(static_cast<AttrIndex>(a)).domain_size()) {
      return Status::InvalidArgument(
          "code " + std::to_string(row[a]) + " out of domain for attribute '" +
          schema_.attribute(static_cast<AttrIndex>(a)).name() + "'");
    }
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Dataset::AppendRowUnchecked(const std::vector<ValueCode>& row) {
  for (size_t a = 0; a < row.size(); ++a) columns_[a].push_back(row[a]);
  ++num_rows_;
}

std::vector<ValueCode> Dataset::Row(size_t row) const {
  DPX_CHECK_LT(row, num_rows_);
  std::vector<ValueCode> out(columns_.size());
  for (size_t a = 0; a < columns_.size(); ++a) out[a] = columns_[a][row];
  return out;
}

Histogram Dataset::ComputeHistogram(AttrIndex attr) const {
  DPX_CHECK_LT(attr, columns_.size());
  Histogram hist(schema_.attribute(attr).domain_size());
  for (ValueCode code : columns_[attr]) hist.Increment(code);
  return hist;
}

Histogram Dataset::ComputeHistogram(
    AttrIndex attr, const std::vector<uint32_t>& row_indices) const {
  DPX_CHECK_LT(attr, columns_.size());
  Histogram hist(schema_.attribute(attr).domain_size());
  const std::vector<ValueCode>& col = columns_[attr];
  for (uint32_t row : row_indices) {
    DPX_CHECK_LT(row, num_rows_);
    hist.Increment(col[row]);
  }
  return hist;
}

std::vector<Histogram> Dataset::ComputeGroupHistograms(
    AttrIndex attr, const std::vector<uint32_t>& labels,
    size_t num_groups) const {
  DPX_CHECK_LT(attr, columns_.size());
  DPX_CHECK_EQ(labels.size(), num_rows_);
  std::vector<Histogram> hists(
      num_groups, Histogram(schema_.attribute(attr).domain_size()));
  const std::vector<ValueCode>& col = columns_[attr];
  for (size_t row = 0; row < num_rows_; ++row) {
    DPX_CHECK_LT(labels[row], num_groups);
    hists[labels[row]].Increment(col[row]);
  }
  return hists;
}

StatusOr<std::vector<std::vector<Histogram>>>
Dataset::ComputeAllGroupHistograms(const std::vector<uint32_t>& labels,
                                   size_t num_groups,
                                   size_t max_threads) const {
  if (labels.size() != num_rows_) {
    return Status::InvalidArgument(
        "labels has " + std::to_string(labels.size()) + " entries, dataset " +
        std::to_string(num_rows_) + " rows");
  }
  if (num_groups == 0) {
    return Status::InvalidArgument("num_groups must be >= 1");
  }
  const size_t attrs = columns_.size();

  // Flat per-shard count layout: offset[a] + label*domain(a) + value.
  std::vector<size_t> offsets(attrs + 1, 0);
  for (size_t a = 0; a < attrs; ++a) {
    offsets[a + 1] = offsets[a] +
                     num_groups *
                         schema_.attribute(static_cast<AttrIndex>(a))
                             .domain_size();
  }
  const size_t flat_size = offsets[attrs];

  const size_t chunks = ParallelForNumChunks(num_rows_, kGroupCountGrain);
  std::vector<std::vector<uint64_t>> shard_counts(chunks);
  // An out-of-range label would index outside the flat buffer, so each shard
  // validates before counting; the first offender is reported afterwards.
  std::atomic<int64_t> bad_label{-1};
  ParallelFor(
      num_rows_, kGroupCountGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        for (size_t row = begin; row < end; ++row) {
          if (labels[row] >= num_groups) {
            int64_t expected = -1;
            bad_label.compare_exchange_strong(
                expected, static_cast<int64_t>(labels[row]));
            return;
          }
        }
        std::vector<uint64_t>& counts = shard_counts[chunk];
        counts.assign(flat_size, 0);
        for (size_t a = 0; a < attrs; ++a) {
          const size_t domain =
              schema_.attribute(static_cast<AttrIndex>(a)).domain_size();
          const ValueCode* col = columns_[a].data();
          uint64_t* base = counts.data() + offsets[a];
          for (size_t row = begin; row < end; ++row) {
            ++base[static_cast<size_t>(labels[row]) * domain + col[row]];
          }
        }
      },
      max_threads);
  if (const int64_t bad = bad_label.load(); bad >= 0) {
    return Status::InvalidArgument("label " + std::to_string(bad) +
                                   " >= num_groups " +
                                   std::to_string(num_groups));
  }

  // Merge shards in ascending chunk order. Counts are integers, so the sum
  // is exact regardless of order — bitwise-identical at any thread count.
  std::vector<uint64_t> merged(flat_size, 0);
  for (const std::vector<uint64_t>& counts : shard_counts) {
    if (counts.empty()) continue;  // empty dataset edge case
    for (size_t i = 0; i < flat_size; ++i) merged[i] += counts[i];
  }

  std::vector<std::vector<Histogram>> result(attrs);
  for (size_t a = 0; a < attrs; ++a) {
    const size_t domain =
        schema_.attribute(static_cast<AttrIndex>(a)).domain_size();
    result[a].reserve(num_groups);
    const uint64_t* base = merged.data() + offsets[a];
    for (size_t g = 0; g < num_groups; ++g) {
      std::vector<double> bins(domain);
      for (size_t v = 0; v < domain; ++v) {
        bins[v] = static_cast<double>(base[g * domain + v]);
      }
      result[a].emplace_back(std::move(bins));
    }
  }
  return result;
}

Dataset Dataset::SelectRows(const std::vector<uint32_t>& row_indices) const {
  Dataset out(schema_);
  for (size_t a = 0; a < columns_.size(); ++a) {
    out.columns_[a].reserve(row_indices.size());
    for (uint32_t row : row_indices) {
      DPX_CHECK_LT(row, num_rows_);
      out.columns_[a].push_back(columns_[a][row]);
    }
  }
  out.num_rows_ = row_indices.size();
  return out;
}

Dataset Dataset::SelectAttributes(const std::vector<AttrIndex>& attrs) const {
  Dataset out(schema_.Project(attrs));
  for (size_t i = 0; i < attrs.size(); ++i) {
    DPX_CHECK_LT(attrs[i], columns_.size());
    out.columns_[i] = columns_[attrs[i]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Dataset Dataset::SampleRows(double fraction, Rng& rng) const {
  const double p = Clamp(fraction, 0.0, 1.0);
  std::vector<uint32_t> kept;
  kept.reserve(static_cast<size_t>(p * static_cast<double>(num_rows_)) + 16);
  for (size_t row = 0; row < num_rows_; ++row) {
    if (rng.Bernoulli(p)) kept.push_back(static_cast<uint32_t>(row));
  }
  return SelectRows(kept);
}

}  // namespace dpclustx
