#include "data/dataset.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace dpclustx {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Dataset::AppendRow(const std::vector<ValueCode>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(schema_.num_attributes()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    if (row[a] >= schema_.attribute(static_cast<AttrIndex>(a)).domain_size()) {
      return Status::InvalidArgument(
          "code " + std::to_string(row[a]) + " out of domain for attribute '" +
          schema_.attribute(static_cast<AttrIndex>(a)).name() + "'");
    }
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Dataset::AppendRowUnchecked(const std::vector<ValueCode>& row) {
  for (size_t a = 0; a < row.size(); ++a) columns_[a].push_back(row[a]);
  ++num_rows_;
}

std::vector<ValueCode> Dataset::Row(size_t row) const {
  DPX_CHECK_LT(row, num_rows_);
  std::vector<ValueCode> out(columns_.size());
  for (size_t a = 0; a < columns_.size(); ++a) out[a] = columns_[a][row];
  return out;
}

Histogram Dataset::ComputeHistogram(AttrIndex attr) const {
  DPX_CHECK_LT(attr, columns_.size());
  Histogram hist(schema_.attribute(attr).domain_size());
  for (ValueCode code : columns_[attr]) hist.Increment(code);
  return hist;
}

Histogram Dataset::ComputeHistogram(
    AttrIndex attr, const std::vector<uint32_t>& row_indices) const {
  DPX_CHECK_LT(attr, columns_.size());
  Histogram hist(schema_.attribute(attr).domain_size());
  const std::vector<ValueCode>& col = columns_[attr];
  for (uint32_t row : row_indices) {
    DPX_CHECK_LT(row, num_rows_);
    hist.Increment(col[row]);
  }
  return hist;
}

std::vector<Histogram> Dataset::ComputeGroupHistograms(
    AttrIndex attr, const std::vector<uint32_t>& labels,
    size_t num_groups) const {
  DPX_CHECK_LT(attr, columns_.size());
  DPX_CHECK_EQ(labels.size(), num_rows_);
  std::vector<Histogram> hists(
      num_groups, Histogram(schema_.attribute(attr).domain_size()));
  const std::vector<ValueCode>& col = columns_[attr];
  for (size_t row = 0; row < num_rows_; ++row) {
    DPX_CHECK_LT(labels[row], num_groups);
    hists[labels[row]].Increment(col[row]);
  }
  return hists;
}

Dataset Dataset::SelectRows(const std::vector<uint32_t>& row_indices) const {
  Dataset out(schema_);
  for (size_t a = 0; a < columns_.size(); ++a) {
    out.columns_[a].reserve(row_indices.size());
    for (uint32_t row : row_indices) {
      DPX_CHECK_LT(row, num_rows_);
      out.columns_[a].push_back(columns_[a][row]);
    }
  }
  out.num_rows_ = row_indices.size();
  return out;
}

Dataset Dataset::SelectAttributes(const std::vector<AttrIndex>& attrs) const {
  Dataset out(schema_.Project(attrs));
  for (size_t i = 0; i < attrs.size(); ++i) {
    DPX_CHECK_LT(attrs[i], columns_.size());
    out.columns_[i] = columns_[attrs[i]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Dataset Dataset::SampleRows(double fraction, Rng& rng) const {
  const double p = Clamp(fraction, 0.0, 1.0);
  std::vector<uint32_t> kept;
  kept.reserve(static_cast<size_t>(p * static_cast<double>(num_rows_)) + 16);
  for (size_t row = 0; row < num_rows_; ++row) {
    if (rng.Bernoulli(p)) kept.push_back(static_cast<uint32_t>(row));
  }
  return SelectRows(kept);
}

}  // namespace dpclustx
