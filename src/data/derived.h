// Derived attributes: Cartesian-product columns for two-dimensional
// histogram explanations.
//
// The paper's future-work discussion (§8) proposes extending DPClustX to
// higher-dimensional histograms "by considering the Cartesian product of
// the domains". This module implements exactly that: a derived attribute
// whose domain is dom(A) × dom(B) and whose codes combine the source codes.
// The derived column is an ordinary categorical attribute, so the whole
// framework — quality functions, DP selection, noisy release — applies
// unchanged. The caveat the paper raises is real and observable here:
// product domains are large, per-cell counts small, and DP noise per cell
// therefore relatively heavier.

#ifndef DPCLUSTX_DATA_DERIVED_H_
#define DPCLUSTX_DATA_DERIVED_H_

#include "common/status.h"
#include "data/dataset.h"

namespace dpclustx {

struct ProductAttributeOptions {
  /// Refuse products whose domain would exceed this (noise per cell grows
  /// with domain size; huge products are never useful under DP).
  size_t max_domain = 4096;
  /// Separator in the derived labels ("<a_label>|<b_label>") and name
  /// ("<a>x<b>").
  std::string label_separator = "|";
};

/// Returns `dataset` extended with one derived attribute combining columns
/// `a` and `b` (appended last). Requires a != b, both valid.
StatusOr<Dataset> WithProductAttribute(
    const Dataset& dataset, AttrIndex a, AttrIndex b,
    const ProductAttributeOptions& options = {});

/// Returns `dataset` extended with the products of all listed attribute
/// pairs.
StatusOr<Dataset> WithProductAttributes(
    const Dataset& dataset,
    const std::vector<std::pair<AttrIndex, AttrIndex>>& pairs,
    const ProductAttributeOptions& options = {});

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_DERIVED_H_
