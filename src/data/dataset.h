// Columnar dataset of categorical codes.
//
// A dataset is a bag of tuples over a Schema (paper §2). Storage is columnar
// (one contiguous code vector per attribute) because every quality function
// in DPClustX reduces to single-attribute count scans — and each column is
// stored in the narrowest physical width (uint8/uint16/uint32) that covers
// its domain, so those scans move as few bytes as the data allows (see
// data/column.h and DESIGN.md §9).

#ifndef DPCLUSTX_DATA_DATASET_H_
#define DPCLUSTX_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/column.h"
#include "data/histogram.h"
#include "data/schema.h"

namespace dpclustx {

class MappedColumnar;  // data/columnar_format.h

class Dataset {
 public:
  Dataset() = default;
  /// Empty dataset over `schema`. Each column's width is the narrowest that
  /// fits its domain; `policy` = kForce32 pins every column to the legacy
  /// 4-byte layout (equivalence tests, pre-narrowing benchmark baselines).
  explicit Dataset(Schema schema, WidthPolicy policy = WidthPolicy::kAdaptive);

  /// Rebuilds a dataset from pre-built columns — the snapshot-restore path.
  /// Validates that the column set matches `schema` (count, per-column row
  /// count, width per `policy`) and that every code is inside its
  /// attribute's domain (a snapshot is CRC-protected, but an out-of-domain
  /// code would index past histogram buffers, so restore re-checks).
  static StatusOr<Dataset> FromColumns(Schema schema, WidthPolicy policy,
                                       std::vector<NarrowColumn> columns);

  /// Sentinel for FromMapped: use every committed row in the file.
  static constexpr size_t kAllMappedRows = static_cast<size_t>(-1);

  /// Zero-copy dataset over the first `num_rows` committed rows of a mapped
  /// DPXCOL file (data/columnar_format.h). Column reads go straight into
  /// the mapping; a mapped dataset is immutable (AppendRow refuses) and
  /// keeps the mapping alive for its lifetime. Defined in
  /// columnar_format.cc so dataset.cc stays free of the mmap machinery.
  static StatusOr<Dataset> FromMapped(
      std::shared_ptr<const MappedColumnar> mapped,
      size_t num_rows = kAllMappedRows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }
  WidthPolicy width_policy() const { return width_policy_; }

  /// True when the rows live in a mapped DPXCOL file rather than heap
  /// columns. Mapped datasets are read-only; SelectRows/SelectAttributes/
  /// SampleRows still work and produce heap-backed outputs.
  bool is_mapped() const { return mapped_ != nullptr; }

  /// The backing mapped file, or nullptr for heap datasets.
  const std::shared_ptr<const MappedColumnar>& mapped() const {
    return mapped_;
  }

  /// Physical storage width of one column. Mapped files are validated at
  /// open time to use exactly the policy's widths, so this is the same
  /// answer for both storage kinds.
  ColumnWidth column_width(AttrIndex attr) const {
    return columns_[attr].width();
  }

  /// Reserves capacity for `num_rows` total rows in every column. Bulk
  /// loaders (synth::Generate, the CSV readers) call this once up front so
  /// appending n rows does not reallocate every column log(n) times.
  void Reserve(size_t num_rows);

  /// Appends one tuple. Requires row.size() == num_attributes() and each code
  /// within its attribute's domain; returns InvalidArgument otherwise.
  Status AppendRow(const std::vector<ValueCode>& row);

  /// Appends a tuple without validation. For bulk generators that guarantee
  /// well-formed codes; invalid codes trip DPX_CHECKs downstream.
  void AppendRowUnchecked(const std::vector<ValueCode>& row);

  /// Cell accessor (width-dispatched; cold paths only — hot kernels should
  /// visit column() once and run a typed loop).
  ValueCode at(size_t row, AttrIndex attr) const { return column(attr)[row]; }

  /// Materializes one tuple (for clustering-function evaluation).
  std::vector<ValueCode> Row(size_t row) const;

  /// Materializes one tuple into `out` (resized to num_attributes()),
  /// reusing its capacity — the allocation-free variant per-row scan loops
  /// call with one scratch tuple per shard.
  void RowInto(size_t row, std::vector<ValueCode>* out) const;

  /// Tagged read-only span over one attribute's codes (π_A(D)). Kernels
  /// dispatch on the width once via VisitColumn (data/column.h); the span
  /// points into heap columns or straight into the mapped file — callers
  /// cannot tell the difference, which is what lets the per-ISA kernels run
  /// on mapped data unchanged.
  ColumnView column(AttrIndex attr) const {
    return mapped_ ? mapped_views_[attr] : columns_[attr].view();
  }

  /// The owning column object (raw-bytes access for snapshot harvest).
  /// Heap datasets only — mapped datasets are snapshotted by file
  /// reference, never by inlined bytes.
  const NarrowColumn& narrow_column(AttrIndex attr) const {
    DPX_CHECK(mapped_ == nullptr)
        << "narrow_column on a mapped dataset; snapshot by file reference";
    return columns_[attr];
  }

  /// One attribute's codes widened to ValueCode. O(n) copy — for cold paths
  /// that want a plain vector regardless of storage width.
  std::vector<ValueCode> ColumnCodes(AttrIndex attr) const;

  /// Exact histogram h_A(D) over dom(A).
  Histogram ComputeHistogram(AttrIndex attr) const;

  /// Exact histogram of the sub-bag given by `row_indices`.
  Histogram ComputeHistogram(AttrIndex attr,
                             const std::vector<uint32_t>& row_indices) const;

  /// Per-group histograms in one pass: result[g] is the histogram of rows with
  /// labels[row] == g. Requires labels.size() == num_rows() and every label
  /// < num_groups.
  std::vector<Histogram> ComputeGroupHistograms(
      AttrIndex attr, const std::vector<uint32_t>& labels,
      size_t num_groups) const;

  /// Per-group histograms of EVERY attribute in one fused sharded pass:
  /// result[attr][g] is the histogram of rows with labels[row] == g. Rows
  /// are sharded across the compute pool (ParallelFor); each shard fills a
  /// flat (attribute × group × value) integer count buffer in one
  /// cache-friendly sweep over all columns, and shards merge by exact
  /// integer addition — the output is bitwise-identical for every
  /// max_threads value (0 = compute-pool width). Returns InvalidArgument on
  /// a label >= num_groups instead of DPX_CHECK-aborting, since callers
  /// (StatsCache::Build) validate through this path.
  StatusOr<std::vector<std::vector<Histogram>>> ComputeAllGroupHistograms(
      const std::vector<uint32_t>& labels, size_t num_groups,
      size_t max_threads = 0) const;

  /// New dataset with only the listed rows (bag semantics: duplicates and
  /// reordering allowed). Column widths carry over.
  Dataset SelectRows(const std::vector<uint32_t>& row_indices) const;

  /// New dataset with only the listed attributes, schema projected to match.
  Dataset SelectAttributes(const std::vector<AttrIndex>& attrs) const;

  /// Bernoulli row sample: keeps each row independently with probability
  /// `fraction` (clamped to [0,1]).
  Dataset SampleRows(double fraction, Rng& rng) const;

 private:
  Schema schema_;
  WidthPolicy width_policy_ = WidthPolicy::kAdaptive;
  std::vector<NarrowColumn> columns_;  // [attr][row]; empty when mapped
  size_t num_rows_ = 0;
  // Mapped storage (Dataset::FromMapped): the file handle that keeps the
  // mmap alive plus one pre-built view per attribute, clamped to this
  // dataset's row count. Exactly one of (columns_ rows, mapped_) holds data.
  std::shared_ptr<const MappedColumnar> mapped_;
  std::vector<ColumnView> mapped_views_;  // [attr]
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_DATASET_H_
