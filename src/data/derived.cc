#include "data/derived.h"

#include <algorithm>

namespace dpclustx {

StatusOr<Dataset> WithProductAttribute(
    const Dataset& dataset, AttrIndex a, AttrIndex b,
    const ProductAttributeOptions& options) {
  return WithProductAttributes(dataset, {{a, b}}, options);
}

StatusOr<Dataset> WithProductAttributes(
    const Dataset& dataset,
    const std::vector<std::pair<AttrIndex, AttrIndex>>& pairs,
    const ProductAttributeOptions& options) {
  const Schema& schema = dataset.schema();
  std::vector<Attribute> attrs = schema.attributes();
  for (const auto& [a, b] : pairs) {
    if (a >= schema.num_attributes() || b >= schema.num_attributes()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    if (a == b) {
      return Status::InvalidArgument(
          "product of an attribute with itself is the attribute");
    }
    const Attribute& attr_a = schema.attribute(a);
    const Attribute& attr_b = schema.attribute(b);
    const size_t product = attr_a.domain_size() * attr_b.domain_size();
    if (product > options.max_domain) {
      return Status::InvalidArgument(
          "product domain " + std::to_string(product) + " exceeds limit " +
          std::to_string(options.max_domain) +
          " (large product domains make per-cell DP counts unusable)");
    }
    // Labels in row-major order over (code_a, code_b): derived code =
    // code_a · |dom(B)| + code_b.
    std::vector<std::string> labels;
    labels.reserve(product);
    for (size_t va = 0; va < attr_a.domain_size(); ++va) {
      for (size_t vb = 0; vb < attr_b.domain_size(); ++vb) {
        labels.push_back(attr_a.label(static_cast<ValueCode>(va)) +
                         options.label_separator +
                         attr_b.label(static_cast<ValueCode>(vb)));
      }
    }
    attrs.emplace_back(attr_a.name() + "x" + attr_b.name(),
                       std::move(labels));
  }

  Dataset out{Schema(std::move(attrs))};
  DPX_RETURN_IF_ERROR(out.schema().Validate());
  out.Reserve(dataset.num_rows());
  std::vector<ValueCode> row(out.num_attributes());
  std::vector<ValueCode> base;  // scratch tuple reused across rows
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    dataset.RowInto(r, &base);
    std::copy(base.begin(), base.end(), row.begin());
    for (size_t p = 0; p < pairs.size(); ++p) {
      const auto [a, b] = pairs[p];
      const size_t domain_b = schema.attribute(b).domain_size();
      row[dataset.num_attributes() + p] =
          static_cast<ValueCode>(base[a] * domain_b + base[b]);
    }
    out.AppendRowUnchecked(row);
  }
  return out;
}

}  // namespace dpclustx
