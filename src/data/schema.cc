#include "data/schema.h"

#include <unordered_set>

namespace dpclustx {

Attribute Attribute::WithAnonymousDomain(std::string name,
                                         size_t domain_size) {
  std::vector<std::string> labels;
  labels.reserve(domain_size);
  for (size_t i = 0; i < domain_size; ++i) {
    labels.push_back("v" + std::to_string(i));
  }
  return Attribute(std::move(name), std::move(labels));
}

StatusOr<ValueCode> Attribute::CodeOf(const std::string& label) const {
  for (size_t i = 0; i < value_labels_.size(); ++i) {
    if (value_labels_[i] == label) return static_cast<ValueCode>(i);
  }
  return Status::NotFound("no value '" + label + "' in domain of attribute '" +
                          name_ + "'");
}

StatusOr<AttrIndex> Schema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name() == name) return static_cast<AttrIndex>(i);
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Status Schema::Validate() const {
  if (attributes_.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  std::unordered_set<std::string> names;
  for (const Attribute& attr : attributes_) {
    if (!names.insert(attr.name()).second) {
      return Status::InvalidArgument("duplicate attribute name '" +
                                     attr.name() + "'");
    }
    if (attr.domain_size() == 0) {
      return Status::InvalidArgument("attribute '" + attr.name() +
                                     "' has an empty domain");
    }
    std::unordered_set<std::string> labels;
    for (const std::string& label : attr.value_labels()) {
      if (!labels.insert(label).second) {
        return Status::InvalidArgument("attribute '" + attr.name() +
                                       "' has duplicate value label '" +
                                       label + "'");
      }
    }
  }
  return Status::OK();
}

Schema Schema::Project(const std::vector<AttrIndex>& indices) const {
  std::vector<Attribute> projected;
  projected.reserve(indices.size());
  for (AttrIndex index : indices) projected.push_back(attributes_[index]);
  return Schema(std::move(projected));
}

}  // namespace dpclustx
