// Preprocessing for the UCI "Diabetes 130-US hospitals" dataset.
//
// The paper's appendix describes how the raw export is prepared before
// explanation: unique identifiers are dropped, numeric attributes are
// binned, `medical_specialty` is collapsed into broad groups, and each
// ICD-9 code in diag_1/diag_2/diag_3 is replaced by its diagnostic category
// ("values in the range 390–459 are mapped to Circulatory") following
// Strack et al., the paper that introduced the dataset. This module
// implements that pipeline so users holding the real CSV can reproduce the
// paper's setup exactly; the rest of this repository uses the synthetic
// substitute (DESIGN.md §1).

#ifndef DPCLUSTX_DATA_DIABETES_PREP_H_
#define DPCLUSTX_DATA_DIABETES_PREP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace dpclustx::diabetes {

/// Diagnostic category of one ICD-9 code string, per Strack et al. Table 2:
/// Circulatory (390–459, 785), Respiratory (460–519, 786), Digestive
/// (520–579, 787), Diabetes (250.xx), Injury (800–999), Musculoskeletal
/// (710–739), Genitourinary (580–629, 788), Neoplasms (140–239), and Other
/// (everything else, including E–V codes and missing values "?").
std::string Icd9Category(const std::string& code);

/// Fixed, data-independent domain of Icd9Category outputs.
const std::vector<std::string>& DiagnosisCategories();

/// Broad group of a raw `medical_specialty` value ("Surgery-Neuro" →
/// "Surgery"); missing ("?") maps to "Missing", unrecognized to "Other".
std::string MedicalSpecialtyGroup(const std::string& specialty);

/// Fixed domain of MedicalSpecialtyGroup outputs.
const std::vector<std::string>& SpecialtyGroups();

/// Transforms a parsed raw CSV (header row first) into a DPClustX dataset:
///  - drops `encounter_id` and `patient_nbr`,
///  - bins the numeric columns (num_lab_procedures, num_medications,
///    time_in_hospital, num_procedures, number_outpatient,
///    number_emergency, number_inpatient, number_diagnoses) on fixed edges,
///  - maps diag_1/diag_2/diag_3 through Icd9Category and
///    medical_specialty through MedicalSpecialtyGroup,
///  - keeps the remaining columns categorical with inferred domains.
/// Returns InvalidArgument on malformed input.
StatusOr<Dataset> Preprocess(
    const std::vector<std::vector<std::string>>& rows);

/// Reads `path` as CSV and runs Preprocess.
StatusOr<Dataset> PreprocessCsv(const std::string& path);

}  // namespace dpclustx::diabetes

#endif  // DPCLUSTX_DATA_DIABETES_PREP_H_
