#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace dpclustx::synth {

namespace {

// Draws a random probability vector of length `n` by normalizing Exp(1)
// draws (equivalent to Dirichlet(1, ..., 1)), then sharpens it by raising
// each coordinate to `concentration` and renormalizing. Larger concentration
// = peakier distribution.
std::vector<double> RandomDistribution(Rng& rng, size_t n,
                                       double concentration) {
  std::vector<double> probs(n);
  double total = 0.0;
  for (double& p : probs) {
    p = std::pow(-std::log(rng.UniformOpenDouble()), concentration);
    total += p;
  }
  for (double& p : probs) p /= total;
  return probs;
}

}  // namespace

StatusOr<Dataset> Generate(const SyntheticConfig& config) {
  if (config.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  if (config.num_attributes == 0) {
    return Status::InvalidArgument("num_attributes must be positive");
  }
  if (config.num_latent_groups == 0) {
    return Status::InvalidArgument("num_latent_groups must be positive");
  }
  if (config.min_domain < 2 || config.max_domain < config.min_domain) {
    return Status::InvalidArgument("need 2 <= min_domain <= max_domain");
  }
  if (config.informative_fraction < 0.0 ||
      config.informative_fraction > 1.0 || config.signal_strength < 0.0 ||
      config.signal_strength > 1.0) {
    return Status::InvalidArgument(
        "informative_fraction and signal_strength must lie in [0, 1]");
  }

  Rng rng(config.seed);

  // Schema: domain sizes drawn from [min_domain, max_domain].
  std::vector<Attribute> attrs;
  attrs.reserve(config.num_attributes);
  std::vector<size_t> domain_sizes(config.num_attributes);
  for (size_t a = 0; a < config.num_attributes; ++a) {
    domain_sizes[a] =
        config.min_domain +
        rng.UniformInt(config.max_domain - config.min_domain + 1);
    attrs.push_back(Attribute::WithAnonymousDomain(
        config.name_prefix + std::to_string(a), domain_sizes[a]));
  }
  Schema schema(std::move(attrs));
  DPX_RETURN_IF_ERROR(schema.Validate());

  // Latent group weights: Zipf-like skew so clusters have uneven sizes, as
  // real clusterings do.
  const size_t groups = config.num_latent_groups;
  std::vector<double> group_weights(groups);
  for (size_t g = 0; g < groups; ++g) {
    group_weights[g] =
        1.0 / std::pow(static_cast<double>(g + 1), config.group_skew);
  }

  // Choose which attributes are informative; give the first few of them
  // extra signal so each dataset has a handful of "headline" attributes
  // (like lab_proc in the Diabetes example).
  const auto num_informative = static_cast<size_t>(
      std::round(config.informative_fraction *
                 static_cast<double>(config.num_attributes)));
  std::vector<bool> informative(config.num_attributes, false);
  std::vector<size_t> order(config.num_attributes);
  for (size_t a = 0; a < order.size(); ++a) order[a] = a;
  // Fisher–Yates to pick a random informative subset.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.UniformInt(i)]);
  }
  for (size_t i = 0; i < num_informative; ++i) informative[order[i]] = true;

  // Per-attribute distributions: a background distribution shared by all
  // groups, plus per-group distributions for informative attributes.
  std::vector<std::vector<double>> background(config.num_attributes);
  std::vector<std::vector<std::vector<double>>> per_group(
      config.num_attributes);
  size_t informative_rank = 0;
  std::vector<double> attr_signal(config.num_attributes, 0.0);
  for (size_t a = 0; a < config.num_attributes; ++a) {
    background[a] = RandomDistribution(rng, domain_sizes[a], 1.0);
    if (!informative[a]) continue;
    // Headline attributes (the first quarter of the informative set) get
    // sharper group distributions and full signal strength.
    const bool headline = informative_rank < std::max<size_t>(
                                                 1, num_informative / 4);
    ++informative_rank;
    attr_signal[a] =
        headline ? config.signal_strength : 0.6 * config.signal_strength;
    const double concentration = headline ? 3.0 : 1.8;
    per_group[a].reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
      per_group[a].push_back(
          RandomDistribution(rng, domain_sizes[a], concentration));
    }
  }

  Dataset dataset(schema);
  dataset.Reserve(config.num_rows);
  std::vector<ValueCode> row(config.num_attributes);
  for (size_t r = 0; r < config.num_rows; ++r) {
    const size_t g = rng.Categorical(group_weights.data(), groups);
    for (size_t a = 0; a < config.num_attributes; ++a) {
      const bool from_group =
          informative[a] && rng.Bernoulli(attr_signal[a]);
      const std::vector<double>& dist =
          from_group ? per_group[a][g] : background[a];
      row[a] = static_cast<ValueCode>(
          rng.Categorical(dist.data(), dist.size()));
    }
    dataset.AppendRowUnchecked(row);
  }
  return dataset;
}

SyntheticConfig DiabetesLike(size_t num_rows, uint64_t seed) {
  SyntheticConfig config;
  config.num_rows = num_rows;
  config.num_attributes = 47;
  config.num_latent_groups = 5;
  config.min_domain = 2;
  config.max_domain = 39;
  config.informative_fraction = 0.40;
  config.signal_strength = 0.75;
  config.group_skew = 0.6;
  config.name_prefix = "diab_";
  config.seed = seed;
  return config;
}

SyntheticConfig CensusLike(size_t num_rows, uint64_t seed) {
  SyntheticConfig config;
  config.num_rows = num_rows;
  config.num_attributes = 68;
  config.num_latent_groups = 5;
  config.min_domain = 2;
  config.max_domain = 20;
  config.informative_fraction = 0.45;
  config.signal_strength = 0.85;  // Census runs are the paper's most stable
  config.group_skew = 0.5;
  config.name_prefix = "cens_";
  config.seed = seed;
  return config;
}

SyntheticConfig StackOverflowLike(size_t num_rows, uint64_t seed) {
  SyntheticConfig config;
  config.num_rows = num_rows;
  config.num_attributes = 60;
  config.num_latent_groups = 5;
  config.min_domain = 2;
  config.max_domain = 22;
  config.informative_fraction = 0.35;
  config.signal_strength = 0.70;
  config.group_skew = 0.7;
  config.name_prefix = "so_";
  config.seed = seed;
  return config;
}

StatusOr<NumericSynthetic> GenerateNumeric(
    const NumericSyntheticConfig& config) {
  if (config.num_rows == 0 || config.num_columns == 0 ||
      config.num_latent_groups == 0) {
    return Status::InvalidArgument(
        "num_rows, num_columns, num_latent_groups must be positive");
  }
  if (config.informative_fraction < 0.0 ||
      config.informative_fraction > 1.0) {
    return Status::InvalidArgument(
        "informative_fraction must lie in [0, 1]");
  }
  Rng rng(config.seed);

  // Group means: informative columns separate the groups by
  // `separation`·sigma; noise columns share one mean.
  const double sigma = 10.0;
  const auto num_informative = static_cast<size_t>(std::round(
      config.informative_fraction * static_cast<double>(config.num_columns)));
  std::vector<std::vector<double>> means(
      config.num_columns, std::vector<double>(config.num_latent_groups));
  for (size_t col = 0; col < config.num_columns; ++col) {
    const double base = rng.UniformRange(0.0, 100.0);
    for (size_t g = 0; g < config.num_latent_groups; ++g) {
      means[col][g] = col < num_informative
                          ? base + static_cast<double>(g) *
                                       config.separation * sigma
                          : base;
    }
  }

  NumericSynthetic out;
  out.columns.assign(config.num_columns,
                     std::vector<double>(config.num_rows));
  out.groups.resize(config.num_rows);
  for (size_t r = 0; r < config.num_rows; ++r) {
    const auto g = static_cast<uint32_t>(
        rng.UniformInt(config.num_latent_groups));
    out.groups[r] = g;
    for (size_t col = 0; col < config.num_columns; ++col) {
      out.columns[col][r] = rng.Gaussian(means[col][g], sigma);
    }
  }
  return out;
}

double CramersV(const Dataset& dataset, AttrIndex a, AttrIndex b) {
  const size_t rows = dataset.num_rows();
  if (rows == 0) return 0.0;
  const size_t da = dataset.schema().attribute(a).domain_size();
  const size_t db = dataset.schema().attribute(b).domain_size();
  // Contingency table and marginals.
  std::vector<double> table(da * db, 0.0);
  std::vector<double> row_sum(da, 0.0);
  std::vector<double> col_sum(db, 0.0);
  const ColumnView col_a = dataset.column(a);
  const ColumnView col_b = dataset.column(b);
  for (size_t r = 0; r < rows; ++r) {
    table[col_a[r] * db + col_b[r]] += 1.0;
    row_sum[col_a[r]] += 1.0;
    col_sum[col_b[r]] += 1.0;
  }
  const auto n = static_cast<double>(rows);
  double chi2 = 0.0;
  for (size_t i = 0; i < da; ++i) {
    if (row_sum[i] == 0.0) continue;
    for (size_t j = 0; j < db; ++j) {
      if (col_sum[j] == 0.0) continue;
      const double expected = row_sum[i] * col_sum[j] / n;
      const double diff = table[i * db + j] - expected;
      chi2 += diff * diff / expected;
    }
  }
  const size_t active_a =
      da - static_cast<size_t>(std::count(row_sum.begin(), row_sum.end(), 0.0));
  const size_t active_b =
      db - static_cast<size_t>(std::count(col_sum.begin(), col_sum.end(), 0.0));
  const size_t k = std::min(active_a, active_b);
  if (k < 2) return 0.0;
  return std::sqrt(chi2 / (n * static_cast<double>(k - 1)));
}

StatusOr<Dataset> AddCorrelatedTwins(const Dataset& dataset, double target_v,
                                     uint64_t seed) {
  if (target_v <= 0.0 || target_v >= 1.0) {
    return Status::InvalidArgument("target_v must lie in (0, 1)");
  }
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  Rng rng(seed);
  const Schema& schema = dataset.schema();
  const size_t orig_attrs = schema.num_attributes();

  // Build the extended schema: originals followed by twins.
  std::vector<Attribute> attrs = schema.attributes();
  for (size_t a = 0; a < orig_attrs; ++a) {
    attrs.emplace_back(schema.attribute(static_cast<AttrIndex>(a)).name() +
                           "_corr",
                       schema.attribute(static_cast<AttrIndex>(a))
                           .value_labels());
  }
  Dataset out{Schema(std::move(attrs))};

  // For each original attribute, find (by bisection on the re-randomization
  // fraction) a twin column whose Cramér's V to the original is close to the
  // target. Perturbed entries are redrawn from the column's own marginal so
  // the twin keeps the original's distribution shape.
  std::vector<std::vector<ValueCode>> twins(orig_attrs);
  for (size_t a = 0; a < orig_attrs; ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    const std::vector<ValueCode> col = dataset.ColumnCodes(attr);
    const Histogram marginal = dataset.ComputeHistogram(attr);
    const std::vector<double> probs = marginal.Normalized();

    auto make_twin = [&](double flip_fraction, Rng& twin_rng) {
      std::vector<ValueCode> twin = col;
      for (ValueCode& code : twin) {
        if (twin_rng.Bernoulli(flip_fraction)) {
          code = static_cast<ValueCode>(
              twin_rng.Categorical(probs.data(), probs.size()));
        }
      }
      return twin;
    };
    auto v_of = [&](const std::vector<ValueCode>& twin) {
      // Temporary two-column dataset for the V computation.
      std::vector<Attribute> pair_attrs = {
          schema.attribute(attr),
          Attribute(schema.attribute(attr).name() + "_t",
                    schema.attribute(attr).value_labels())};
      Dataset pair{Schema(std::move(pair_attrs))};
      std::vector<ValueCode> row(2);
      for (size_t r = 0; r < col.size(); ++r) {
        row[0] = col[r];
        row[1] = twin[r];
        pair.AppendRowUnchecked(row);
      }
      return CramersV(pair, 0, 1);
    };

    double lo = 0.0, hi = 1.0;
    std::vector<ValueCode> best = col;
    double best_gap = 1.0 - target_v;  // flip_fraction = 0 gives V = 1
    for (int iter = 0; iter < 12 && best_gap > 0.02; ++iter) {
      const double mid = 0.5 * (lo + hi);
      Rng twin_rng = rng.Fork();
      std::vector<ValueCode> candidate = make_twin(mid, twin_rng);
      const double v = v_of(candidate);
      const double gap = std::fabs(v - target_v);
      if (gap < best_gap) {
        best_gap = gap;
        best = std::move(candidate);
      }
      // More flipping lowers V.
      if (v > target_v) lo = mid;
      else hi = mid;
    }
    twins[a] = std::move(best);
  }

  std::vector<ValueCode> row(2 * orig_attrs);
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    for (size_t a = 0; a < orig_attrs; ++a) {
      row[a] = dataset.at(r, static_cast<AttrIndex>(a));
      row[orig_attrs + a] = twins[a][r];
    }
    out.AppendRowUnchecked(row);
  }
  return out;
}

}  // namespace dpclustx::synth
