// Adaptive narrow column storage for categorical codes.
//
// Every DPClustX hot path — histogram builds, the fused group-count sweep,
// embedding, Hamming assignment — is a bandwidth-bound scan over one code
// vector per attribute. Census-like domains are 2–39 values, yet a
// `ValueCode` is 4 bytes, so a uint32 column moves 4× the bytes the data
// needs. A NarrowColumn stores codes in the narrowest unsigned width that
// fits the attribute's domain (uint8/uint16/uint32); ColumnView is the
// tagged read-only span hot kernels dispatch on, once per column, via
// VisitColumn. Width is a pure function of the schema's domain size (never
// of the data), so the choice is data-independent and leaks nothing.
//
// Codes are exact integers in every width, so all downstream results
// (histograms, labels, explanations) are bitwise-identical across widths;
// tests/dataset_layout_test enforces this at the 8/16/32 boundaries.

#ifndef DPCLUSTX_DATA_COLUMN_H_
#define DPCLUSTX_DATA_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "data/schema.h"

namespace dpclustx {

/// Physical element width of one stored column.
enum class ColumnWidth : uint8_t { k8, k16, k32 };

inline size_t ColumnWidthBytes(ColumnWidth width) {
  switch (width) {
    case ColumnWidth::k8:
      return 1;
    case ColumnWidth::k16:
      return 2;
    case ColumnWidth::k32:
      return 4;
  }
  return 4;
}

/// Narrowest width whose code range [0, 2^bits) covers a domain of
/// `domain_size` values. Depends only on the schema, never on the data.
inline ColumnWidth NarrowestColumnWidth(size_t domain_size) {
  if (domain_size <= (size_t{1} << 8)) return ColumnWidth::k8;
  if (domain_size <= (size_t{1} << 16)) return ColumnWidth::k16;
  return ColumnWidth::k32;
}

/// How a Dataset picks column widths. kForce32 pins every column to the
/// legacy 4-byte layout; it exists so equivalence tests and benchmarks can
/// compare the narrow path against the pre-narrowing storage bit-for-bit.
enum class WidthPolicy : uint8_t { kAdaptive, kForce32 };

/// Read-only tagged span over one column's codes. Cheap to copy; does not
/// own the storage. Hot kernels should dispatch once per column via
/// VisitColumn and run a width-typed loop; operator[] re-dispatches per
/// element and is for cold paths only.
class ColumnView {
 public:
  ColumnView() : data_(nullptr), size_(0), width_(ColumnWidth::k32) {}
  ColumnView(const void* data, size_t size, ColumnWidth width)
      : data_(data), size_(size), width_(width) {}

  size_t size() const { return size_; }
  ColumnWidth width() const { return width_; }

  const uint8_t* u8() const {
    DPX_CHECK(width_ == ColumnWidth::k8);
    return static_cast<const uint8_t*>(data_);
  }
  const uint16_t* u16() const {
    DPX_CHECK(width_ == ColumnWidth::k16);
    return static_cast<const uint16_t*>(data_);
  }
  const uint32_t* u32() const {
    DPX_CHECK(width_ == ColumnWidth::k32);
    return static_cast<const uint32_t*>(data_);
  }

  /// Width-dispatched element read (cold paths; see class comment).
  ValueCode operator[](size_t row) const {
    switch (width_) {
      case ColumnWidth::k8:
        return static_cast<const uint8_t*>(data_)[row];
      case ColumnWidth::k16:
        return static_cast<const uint16_t*>(data_)[row];
      case ColumnWidth::k32:
        break;
    }
    return static_cast<const uint32_t*>(data_)[row];
  }

 private:
  const void* data_;
  size_t size_;
  ColumnWidth width_;
};

/// Calls fn with the column's typed base pointer (const uint8_t*/uint16_t*/
/// uint32_t*), so the compiler sees one contiguous, width-monomorphic loop
/// per instantiation. The canonical hot-kernel shape:
///
///   VisitColumn(view, [&](const auto* codes) {
///     for (size_t row = begin; row < end; ++row) Use(codes[row]);
///   });
template <typename Fn>
decltype(auto) VisitColumn(const ColumnView& view, Fn&& fn) {
  switch (view.width()) {
    case ColumnWidth::k8:
      return fn(view.u8());
    case ColumnWidth::k16:
      return fn(view.u16());
    case ColumnWidth::k32:
      break;
  }
  return fn(view.u32());
}

/// Owning code vector in one of the three physical widths. Exactly one of
/// the backing vectors is in use, chosen at construction; push_back and
/// operator[] dispatch on the tag. Appends of codes that do not fit the
/// width trip a DPX_CHECK (callers validate codes against the domain first,
/// and the width always covers the domain).
class NarrowColumn {
 public:
  NarrowColumn() = default;
  explicit NarrowColumn(ColumnWidth width) : width_(width) {}

  ColumnWidth width() const { return width_; }

  size_t size() const {
    switch (width_) {
      case ColumnWidth::k8:
        return v8_.size();
      case ColumnWidth::k16:
        return v16_.size();
      case ColumnWidth::k32:
        break;
    }
    return v32_.size();
  }

  void reserve(size_t n) {
    switch (width_) {
      case ColumnWidth::k8:
        v8_.reserve(n);
        return;
      case ColumnWidth::k16:
        v16_.reserve(n);
        return;
      case ColumnWidth::k32:
        v32_.reserve(n);
        return;
    }
  }

  void push_back(ValueCode code) {
    switch (width_) {
      case ColumnWidth::k8:
        DPX_CHECK_LE(code, 0xffu);
        v8_.push_back(static_cast<uint8_t>(code));
        return;
      case ColumnWidth::k16:
        DPX_CHECK_LE(code, 0xffffu);
        v16_.push_back(static_cast<uint16_t>(code));
        return;
      case ColumnWidth::k32:
        v32_.push_back(code);
        return;
    }
  }

  ValueCode operator[](size_t row) const {
    switch (width_) {
      case ColumnWidth::k8:
        return v8_[row];
      case ColumnWidth::k16:
        return v16_[row];
      case ColumnWidth::k32:
        break;
    }
    return v32_[row];
  }

  ColumnView view() const {
    switch (width_) {
      case ColumnWidth::k8:
        return ColumnView(v8_.data(), v8_.size(), width_);
      case ColumnWidth::k16:
        return ColumnView(v16_.data(), v16_.size(), width_);
      case ColumnWidth::k32:
        break;
    }
    return ColumnView(v32_.data(), v32_.size(), width_);
  }

  /// The raw backing bytes (size() * ColumnWidthBytes(width()), host byte
  /// order). Snapshot harvest copies this verbatim so save/load moves the
  /// column as one memcpy-shaped blob instead of n element appends.
  const void* raw_data() const {
    switch (width_) {
      case ColumnWidth::k8:
        return v8_.data();
      case ColumnWidth::k16:
        return v16_.data();
      case ColumnWidth::k32:
        break;
    }
    return v32_.data();
  }
  size_t raw_size_bytes() const { return size() * ColumnWidthBytes(width_); }

  /// Replaces this column's contents from raw bytes previously produced by
  /// raw_data() at the same width. `size_bytes` must be a multiple of the
  /// element width; codes are NOT domain-validated here (Dataset::FromColumns
  /// does that once per column against the schema).
  void AssignRaw(ColumnWidth width, const void* data, size_t size_bytes) {
    const size_t elem = ColumnWidthBytes(width);
    DPX_CHECK(size_bytes % elem == 0) << "raw column bytes not a multiple of "
                                      << elem;
    const size_t n = size_bytes / elem;
    width_ = width;
    v8_.clear();
    v16_.clear();
    v32_.clear();
    // memcpy, not typed assign: the source is typically a std::string
    // payload with no alignment guarantee for the wider widths.
    switch (width_) {
      case ColumnWidth::k8:
        v8_.resize(n);
        if (n != 0) std::memcpy(v8_.data(), data, size_bytes);
        return;
      case ColumnWidth::k16:
        v16_.resize(n);
        if (n != 0) std::memcpy(v16_.data(), data, size_bytes);
        return;
      case ColumnWidth::k32:
        v32_.resize(n);
        if (n != 0) std::memcpy(v32_.data(), data, size_bytes);
        return;
    }
  }

 private:
  ColumnWidth width_ = ColumnWidth::k32;
  std::vector<uint8_t> v8_;
  std::vector<uint16_t> v16_;
  std::vector<uint32_t> v32_;
};

}  // namespace dpclustx

#endif  // DPCLUSTX_DATA_COLUMN_H_
