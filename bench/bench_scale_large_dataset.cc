// Scale check toward the paper's Census size (2.46M rows): generates
// Census-like tables at increasing row counts and times the explanation
// pipeline's data-dependent part (StatsCache + both stages + histograms).
// The expected — and measured — behavior is linear in n with a small
// constant (Fig. 9d extended), demonstrating that the full-size PUMS table
// is comfortably in range.

#include <map>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "data/synthetic.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

struct Prepared {
  Dataset dataset;
  std::vector<ClusterId> labels;
};

const Prepared& CachedPrepared(size_t rows) {
  static auto* cache = new std::map<size_t, Prepared>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    Dataset dataset =
        std::move(*synth::Generate(synth::CensusLike(rows)));
    std::vector<ClusterId> labels = FitLabels(dataset, "k-means", 5, 1);
    it = cache->emplace(rows,
                        Prepared{std::move(dataset), std::move(labels)})
             .first;
  }
  return it->second;
}

void BM_ExplainAtScale(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  const Prepared& prepared = CachedPrepared(rows);
  DpClustXOptions options;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto explanation = ExplainDpClustXWithLabels(
        prepared.dataset, prepared.labels, 5, options);
    DPX_CHECK_OK(explanation.status());
    benchmark::DoNotOptimize(explanation->combination);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExplainAtScale)
    ->Arg(100000)
    ->Arg(250000)
    ->Arg(500000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
